/root/repo/target/debug/deps/fastann-d879760ba23140ef.d: src/bin/fastann.rs Cargo.toml

/root/repo/target/debug/deps/libfastann-d879760ba23140ef.rmeta: src/bin/fastann.rs Cargo.toml

src/bin/fastann.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
