/root/repo/target/debug/deps/fastann-1cf57ee89608d614.d: src/bin/fastann.rs Cargo.toml

/root/repo/target/debug/deps/libfastann-1cf57ee89608d614.rmeta: src/bin/fastann.rs Cargo.toml

src/bin/fastann.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
