//! The HNSW index: construction and search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use fastann_data::quant::{Sq8, Sq8Query};
use fastann_data::{Distance, Neighbor, TopK, VectorSet};
use parking_lot::RwLock;
use rayon::prelude::*;

use crate::config::HnswConfig;
use crate::graph::Graph;
use crate::rerank::rerank_exact;
use crate::scratch::SearchScratch;
use crate::select::select_neighbors_heuristic;

/// Per-search accounting. `ndist` is the number the distributed engine
/// charges to a worker's virtual clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distance evaluations performed (quantized and exact combined).
    pub ndist: u64,
    /// Subset of `ndist` evaluated in the quantized (SQ8 asymmetric)
    /// domain; zero on the exact path.
    pub ndist_quant: u64,
    /// Candidates re-ranked at full precision after a quantized
    /// traversal; zero on the exact path.
    pub rerank: u64,
    /// Graph nodes expanded (popped from the candidate heap).
    pub hops: u64,
    /// Candidates pushed onto the beams (entry seeds included; descent
    /// layers contribute when the entry beam is wider than one).
    pub heap_pushes: u64,
    /// Beam churn: pushes that landed while a beam was already full, each
    /// evicting the then-worst candidate. High churn relative to `ef`
    /// means the layer-0 beam kept improving late — a signal that a
    /// larger `ef` would still buy recall.
    pub ef_churn: u64,
    /// Diverse entry-set members injected into this query's descent beyond
    /// the primary entry point — how much of the multi-basin seeding
    /// ([`Hnsw::entry_set`]) the query actually consumed. Zero when the
    /// index has at most one entry (or on the tree/brute-force kinds).
    pub entry_seeds: u64,
}

/// A query lowered into one of the two distance domains a traversal can
/// run in. Traversal code ([`Hnsw::greedy_step`], [`Hnsw::search_layer`])
/// only ever sees this enum — the `quantized-traversal` lint forbids it
/// from touching `squared_l2` / `Distance::eval` directly, so the choice
/// of domain is confined to [`Hnsw::d`] and the search entry points.
enum QueryDist<'a> {
    /// Full-precision traversal with the index metric.
    Exact(&'a [f32]),
    /// SQ8 asymmetric traversal (squared-L2 domain) against `sq`'s grid.
    Quant { sq: &'a Sq8, prep: Sq8Query },
}

/// The outcome of the read-only planning half of one insertion: the
/// neighbour lists selected for each layer (top-down), plus the distance
/// evaluations the planning spent. Produced concurrently by
/// [`Hnsw::plan_insert`], consumed sequentially by [`Hnsw::apply_insert`].
struct InsertPlan {
    id: u32,
    /// `(layer, selected neighbours)` from the node's top layer down to 0.
    layers: Vec<(usize, Vec<u32>)>,
    ndist: u64,
}

/// A Hierarchical Navigable Small World approximate k-NN index over an owned
/// [`VectorSet`].
pub struct Hnsw {
    config: HnswConfig,
    dist: Distance,
    data: VectorSet,
    levels: Vec<u8>,
    graph: Graph,
    /// SQ8 quantizer trained on this partition's vectors at build time;
    /// `None` for empty indexes, unsupported metrics, or after a dynamic
    /// [`Hnsw::add`] of a point outside the trained grid, until
    /// [`Hnsw::train_quantizer`] refreshes the grid (in-grid adds append
    /// their code incrementally and keep quantized search on).
    quant: Option<Sq8>,
    /// `(entry node, top level)`; `None` for an empty index.
    entry: RwLock<Option<(u32, u8)>>,
    /// Diverse entry set: up to [`ENTRY_SET_CAP`] spread-out nodes that
    /// participate above layer 0, selected farthest-first (k-center) from
    /// the entry point. A pure function of the stored vectors, the level
    /// assignment and the entry point — see [`Hnsw::select_entry_set`] —
    /// so legacy serialized blobs recompute exactly the set a fresh build
    /// would carry. The first member is always the entry point itself;
    /// empty only for an empty index.
    entry_set: Vec<u32>,
    /// Distance evaluations spent during construction (the quantity the
    /// distributed engine charges to a builder's virtual clock).
    build_ndist: std::sync::atomic::AtomicU64,
    /// `tombstones[id]` marks a removed point: it stays in `data` and stays
    /// traversable as a graph waypoint until [`Hnsw::repair_tombstones`]
    /// detaches it, but it is filtered from every search result. All-`false`
    /// for a freshly built index.
    tombstones: Vec<bool>,
    /// Number of non-tombstoned points (`len() - #tombstones`).
    live: usize,
    /// Monotone counter bumped by every successful mutation ([`Hnsw::add`],
    /// [`Hnsw::remove`], [`Hnsw::repair_tombstones`]) — the cache-
    /// invalidation signal the serving layer keys result freshness on.
    mutation_epoch: u64,
}

/// Maximum layer index; levels are geometric so 30 is unreachable in
/// practice (p < 16^-30) but bounds the `u8` storage.
const MAX_LEVEL: u8 = 30;

/// Maximum diverse entry-set size. Sixteen spread-out seeds cover every
/// mode of the clustered workloads (10 clusters plus outliers) while the
/// per-query overhead stays at most sixteen extra distance evaluations.
pub(crate) const ENTRY_SET_CAP: usize = 16;

/// Deterministic per-node level assignment: `floor(-ln(U) * mult)` with `U`
/// derived from a splitmix64 hash of `(seed, id)`, so levels do not depend
/// on insertion order or thread interleaving.
fn assign_level(seed: u64, id: u32, mult: f64) -> u8 {
    let mut x = seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // splitmix64 finalizer
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let u = ((x >> 11) as f64 + 1.0) / ((1u64 << 53) as f64 + 1.0); // in (0,1]
    let lvl = (-u.ln() * mult).floor();
    (lvl as u64).min(MAX_LEVEL as u64) as u8
}

impl Hnsw {
    /// Builds the index over `data` sequentially (deterministic given the
    /// config seed).
    pub fn build(data: VectorSet, dist: Distance, config: HnswConfig) -> Self {
        let mut index = Self::empty_for(data, dist, config);
        let mut scratch = SearchScratch::with_capacity(index.len());
        let order = index.insertion_order();
        for id in order {
            index.insert(id, &mut scratch);
        }
        // Sequential insertion can orphan a node too: a later neighbour's
        // overflow prune may drop every reverse edge of an already-settled
        // node (observed on clustered data, where redundant same-cluster
        // nodes lose all their edges to better-placed peers).
        index.repair_layer0(&mut scratch);
        index.refresh_entry_set();
        #[cfg(debug_assertions)]
        if let Err(e) = index.validate() {
            panic!("sequential build produced an invalid graph: {e}");
        }
        index.train_quantizer();
        index
    }

    /// Nodes per batch in [`Hnsw::build_parallel`]. Fixed (not derived from
    /// the thread count) so the constructed graph is identical for every
    /// thread count, including 1.
    const PARALLEL_BATCH: usize = 64;

    /// Builds the index with batch-parallel construction — the analogue of
    /// the multi-threaded OpenMP construction in the paper.
    ///
    /// Insertion proceeds in fixed batches of [`Self::PARALLEL_BATCH`]
    /// nodes. For each batch, the expensive read-only part of insertion
    /// (greedy descent, `ef_construction` beam searches, neighbour
    /// selection) runs on the rayon pool against the frozen graph
    /// ([`Hnsw::plan_insert`]); the cheap link mutations are then applied
    /// sequentially in batch order ([`Hnsw::apply_insert`]). Because no
    /// thread ever mutates the graph concurrently, the result is
    /// deterministic, independent of the thread count, and upholds every
    /// [`Hnsw::validate`] invariant — at the cost of batch members not
    /// seeing each other as candidates, which perturbs link structure
    /// slightly versus [`Hnsw::build`] (search quality is equivalent; see
    /// the parity tests).
    ///
    /// Thread count follows `rayon::current_num_threads()`; wrap the call
    /// in `rayon::with_num_threads(t, ..)` to pin it.
    pub fn build_parallel(data: VectorSet, dist: Distance, config: HnswConfig) -> Self {
        let mut index = Self::empty_for(data, dist, config);
        let order = index.insertion_order();
        if order.is_empty() {
            return index;
        }
        // Seed the graph with the highest-level node so every planner has an
        // entry point.
        let mut scratch = SearchScratch::with_capacity(index.len());
        index.insert(order[0], &mut scratch);
        for batch in order[1..].chunks(Self::PARALLEL_BATCH) {
            let plans: Vec<InsertPlan> = batch
                .par_iter()
                .map_init(
                    || SearchScratch::with_capacity(index.len()),
                    |scratch, &id| index.plan_insert(id, scratch),
                )
                .collect();
            for plan in plans {
                index.apply_insert(plan, &mut scratch);
            }
        }
        // Planning against a frozen graph means batch peers do not see each
        // other: clustered peers all court the same pre-batch neighbours,
        // whose overflow prunes can drop every reverse edge of a redundant
        // newcomer and orphan it on layer 0.
        index.repair_layer0(&mut scratch);
        index.refresh_entry_set();
        #[cfg(debug_assertions)]
        if let Err(e) = index.validate() {
            panic!("parallel build produced an invalid graph: {e}");
        }
        // Quantizer training is pure per-dimension arithmetic over the
        // already-stored vectors: no distance evaluations, no dependence
        // on thread count, so `build_ndist` and bit-identity across
        // thread counts are unaffected.
        index.train_quantizer();
        index
    }

    /// Repairs base-layer connectivity deterministically: unlink each
    /// orphan and re-insert it with the fresh-state sequential path, until
    /// the base layer is connected (or the round budget runs out — the
    /// validator then reports any residue).
    fn repair_layer0(&self, scratch: &mut SearchScratch) {
        const MAX_REPAIR_ROUNDS: usize = 10;
        for _ in 0..MAX_REPAIR_ROUNDS {
            let orphans = self.layer0_orphans();
            if orphans.is_empty() {
                break;
            }
            for u in orphans {
                self.unlink(u);
                self.insert(u, scratch);
            }
        }
    }

    /// Layer-0 BFS from the entry point and every entry-set member;
    /// `seen[id]` is `true` for each reachable node. All-`false` for an
    /// empty index.
    fn layer0_reachable(&self) -> Vec<bool> {
        let n = self.len();
        let mut seen = vec![false; n];
        let Some((ep, _)) = self.entry_snapshot() else {
            return seen;
        };
        let mut queue = std::collections::VecDeque::new();
        for &e in std::iter::once(&ep).chain(&self.entry_set) {
            if !seen[e as usize] {
                seen[e as usize] = true;
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            self.graph.with_neighbors(u, 0, |ns| {
                for &nb in ns {
                    if !seen[nb as usize] {
                        seen[nb as usize] = true;
                        queue.push_back(nb);
                    }
                }
            });
        }
        seen
    }

    /// Live ids unreachable from every entry (the entry point plus the
    /// diverse entry set) on layer 0, ascending. Empty for an empty index.
    /// During construction the entry set is not selected yet, so this
    /// degenerates to single-entry reachability — the stronger invariant
    /// the repair loop restores. Tombstoned nodes are never orphans: a
    /// repair pass detaches them on purpose.
    fn layer0_orphans(&self) -> Vec<u32> {
        let seen = self.layer0_reachable();
        if self.is_empty() {
            return Vec::new();
        }
        (0..self.len() as u32)
            .filter(|&id| !seen[id as usize] && !self.tombstones[id as usize])
            .collect()
    }

    /// Symmetrically detaches node `u` from the graph (every `u -> v` and
    /// its reverse edge), leaving its layer lists empty so it can be
    /// re-inserted.
    fn unlink(&self, u: u32) {
        for layer in 0..=(self.levels[u as usize] as usize) {
            for nb in self.graph.neighbors(u, layer) {
                self.graph.remove_neighbor(nb, layer, u);
            }
            self.graph.set_neighbors(u, layer, Vec::new());
        }
    }

    fn empty_for(data: VectorSet, dist: Distance, config: HnswConfig) -> Self {
        let n = data.len();
        let levels: Vec<u8> = (0..n as u32)
            .map(|id| assign_level(config.seed, id, config.level_mult))
            .collect();
        let graph = Graph::for_levels(&levels, config.m, config.m_max0);
        Self {
            config,
            dist,
            data,
            levels,
            graph,
            quant: None,
            entry: RwLock::new(None),
            entry_set: Vec::new(),
            build_ndist: std::sync::atomic::AtomicU64::new(0),
            tombstones: vec![false; n],
            live: n,
            mutation_epoch: 0,
        }
    }

    /// Deterministic diverse entry set: farthest-first (k-center) selection
    /// over the nodes that participate above layer 0, seeded from the entry
    /// point, capped at [`ENTRY_SET_CAP`]. Ties on equal spread go to the
    /// smaller id; zero-spread candidates (exact duplicates of an already
    /// chosen seed) are never added. A pure function of the stored vectors,
    /// the level assignment and the entry point — legacy blobs with no
    /// persisted set recompute exactly what a fresh build selects.
    ///
    /// Selection distances run through `Distance::eval` directly (not the
    /// traversal's `QueryDist` dispatch): this is build-time geometry over
    /// stored points, like neighbour selection, not query traversal. Its
    /// `O(cap · n / 16)` evaluations are excluded from `build_ndist` so
    /// load-time recomputation and fresh builds account identically.
    fn select_entry_set(&self) -> Vec<u32> {
        let Some((ep, _)) = self.entry_snapshot() else {
            return Vec::new();
        };
        let mut cands: Vec<u32> = (0..self.len() as u32)
            .filter(|&id| {
                self.levels[id as usize] >= 1 && id != ep && !self.tombstones[id as usize]
            })
            .collect();
        let mut min_d: Vec<f32> = cands
            .iter()
            .map(|&c| {
                self.dist
                    .eval(self.data.get(ep as usize), self.data.get(c as usize))
            })
            .collect();
        let mut chosen = vec![ep];
        while chosen.len() < ENTRY_SET_CAP && !cands.is_empty() {
            let mut best = 0usize;
            for i in 1..cands.len() {
                if min_d[i] > min_d[best] || (min_d[i] == min_d[best] && cands[i] < cands[best]) {
                    best = i;
                }
            }
            if min_d[best] <= 0.0 {
                break; // only duplicates of chosen seeds remain
            }
            let c = cands.swap_remove(best);
            min_d.swap_remove(best);
            for (i, &other) in cands.iter().enumerate() {
                let d = self
                    .dist
                    .eval(self.data.get(c as usize), self.data.get(other as usize));
                if d < min_d[i] {
                    min_d[i] = d;
                }
            }
            chosen.push(c);
        }
        chosen
    }

    /// Recomputes the diverse entry set from the current graph state. Build
    /// paths call this after base-layer repair; the deserializer calls it
    /// for pre-v3 blobs that carry no persisted set.
    pub(crate) fn refresh_entry_set(&mut self) {
        self.entry_set = self.select_entry_set();
    }

    /// The diverse entry set: up to [`ENTRY_SET_CAP`] spread-out
    /// upper-layer nodes (entry point first) that seed every search's
    /// layer-0 beam from multiple basins.
    pub fn entry_set(&self) -> &[u32] {
        &self.entry_set
    }

    /// `true` while point `id` has not been tombstoned by [`Hnsw::remove`].
    pub fn is_live(&self, id: u32) -> bool {
        !self.tombstones[id as usize]
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Fraction of stored points that are tombstoned (`0.0` for an empty
    /// index) — the quantity compaction thresholds gate on.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.len() - self.live) as f64 / self.len() as f64
        }
    }

    /// Monotone mutation counter: bumped by every [`Hnsw::add`],
    /// [`Hnsw::remove`] and effective [`Hnsw::repair_tombstones`], so equal
    /// epochs imply an identical live set. Serialized since v4.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// The tombstone map, for serialization.
    pub(crate) fn tombstone_map(&self) -> &[bool] {
        &self.tombstones
    }

    /// Tombstones point `id`: the point disappears from all future search
    /// results immediately, but its node stays in the graph as a traversal
    /// waypoint until [`Hnsw::repair_tombstones`] re-points the in-edges and
    /// detaches it — the lazy half of LANNS-style delete handling. Returns
    /// `false` (and leaves the epoch untouched) when `id` was already
    /// tombstoned.
    ///
    /// If `id` is the entry point, the entry is re-elected deterministically
    /// to the smallest-id live node of maximal level, so descents keep
    /// starting from a live anchor. When the last live point is removed the
    /// entry is left in place and searches return empty.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn remove(&mut self, id: u32) -> bool {
        assert!((id as usize) < self.len(), "remove of out-of-range id {id}");
        if self.tombstones[id as usize] {
            return false;
        }
        self.tombstones[id as usize] = true;
        self.live -= 1;
        self.mutation_epoch += 1;
        let was_entry = self.entry_snapshot().is_some_and(|(ep, _)| ep == id);
        if was_entry {
            self.reelect_entry();
        }
        // Upper-layer membership (or entry re-election) can change the
        // k-center selection; pure layer-0 removals cannot.
        if was_entry || self.levels[id as usize] >= 1 {
            self.refresh_entry_set();
        }
        true
    }

    /// Re-points the entry to the smallest-id live node of maximal level.
    /// Keeps the current (tombstoned) entry when no live node exists, so a
    /// fully-tombstoned index stays structurally intact.
    fn reelect_entry(&mut self) {
        let mut best: Option<(u32, u8)> = None;
        for id in 0..self.len() as u32 {
            if self.tombstones[id as usize] {
                continue;
            }
            let lvl = self.levels[id as usize];
            if best.is_none_or(|(_, b)| lvl > b) {
                best = Some((id, lvl));
            }
        }
        if let Some(e) = best {
            *self.entry.write() = Some(e);
        }
    }

    /// Eager half of delete handling: re-points every live in-edge of every
    /// tombstoned node toward surviving neighbours (per-layer reselection
    /// over the union of the old neighbourhood and the tombstone's live
    /// neighbours), then detaches the tombstoned nodes entirely and
    /// re-inserts any live node the detachment orphaned. Tombstones stay
    /// marked — their rows still occupy storage until a compaction rebuild —
    /// but after repair they are pure dead weight: unreachable, zero-degree,
    /// and cost nothing per query.
    ///
    /// Runs strictly sequentially in ascending id order, so the outcome is a
    /// pure function of the pre-repair graph — bit-identical across thread
    /// counts. Returns the number of nodes detached (`0` leaves the epoch
    /// untouched).
    pub fn repair_tombstones(&mut self) -> usize {
        let dead: Vec<u32> = (0..self.len() as u32)
            .filter(|&id| self.tombstones[id as usize])
            .collect();
        // Only nodes that still carry edges need work; earlier repairs left
        // the rest already detached.
        let attached: Vec<u32> = dead
            .iter()
            .copied()
            .filter(|&t| {
                (0..=(self.levels[t as usize] as usize))
                    .any(|l| self.graph.with_neighbors(t, l, |ns| !ns.is_empty()))
            })
            .collect();
        if attached.is_empty() {
            return 0;
        }
        let mut scratch = SearchScratch::with_capacity(self.len());
        for &t in &attached {
            for layer in 0..=(self.levels[t as usize] as usize) {
                let mut t_nbrs = self.graph.neighbors(t, layer);
                t_nbrs.sort_unstable();
                for &u in &t_nbrs {
                    if self.tombstones[u as usize] {
                        continue;
                    }
                    self.repoint_through(u, t, &t_nbrs, layer, &mut scratch);
                }
            }
            self.unlink(t);
        }
        // Detaching waypoints can disconnect live nodes; restore live
        // reachability with the same unlink + re-insert loop the builds use.
        self.repair_layer0(&mut scratch);
        self.reelect_entry();
        self.refresh_entry_set();
        self.mutation_epoch += 1;
        attached.len()
    }

    /// Reselects live node `u`'s neighbourhood at `layer` over its current
    /// neighbours plus tombstoned node `t`'s live neighbours (`t_nbrs`), so
    /// the edge `u -> t` is replaced by edges "through" `t` to its
    /// survivors. Mirrors the insert-path link protocol: dropped edges lose
    /// their reverse too, added edges gain one via [`Hnsw::link_back`].
    fn repoint_through(
        &self,
        u: u32,
        t: u32,
        t_nbrs: &[u32],
        layer: usize,
        scratch: &mut SearchScratch,
    ) {
        let old = self.graph.neighbors(u, layer);
        let mut cand_ids: Vec<u32> = old
            .iter()
            .chain(t_nbrs)
            .copied()
            .filter(|&c| c != u && c != t && !self.tombstones[c as usize])
            .collect();
        cand_ids.sort_unstable();
        cand_ids.dedup();
        let uv = self.data.get(u as usize);
        let mut cands: Vec<Neighbor> = cand_ids
            .iter()
            .map(|&c| {
                scratch.ndist += 1;
                Neighbor::new(c, self.dist.eval(uv, self.data.get(c as usize)))
            })
            .collect();
        cands.sort_unstable();
        let selected = select_neighbors_heuristic(
            &self.data,
            uv,
            &cands,
            self.config.max_links(layer),
            self.dist,
            self.config.keep_pruned,
            &mut scratch.ndist,
        );
        for &l in &old {
            if l != t && !selected.contains(&l) {
                self.graph.remove_neighbor(l, layer, u);
            }
        }
        self.graph.set_neighbors(u, layer, selected.clone());
        for &s in &selected {
            if !old.contains(&s) {
                self.link_back(s, u, layer, scratch);
            }
        }
    }

    /// (Re)trains the SQ8 quantizer on the current vectors, enabling
    /// quantized-first search. A no-op for empty indexes and for metrics
    /// the asymmetric distance cannot rank for (only L2 / squared-L2 are
    /// order-compatible with the squared-domain traversal).
    ///
    /// Build paths call this automatically; after dynamic [`Hnsw::add`]s
    /// (which invalidate the grid) call it again to restore quantized
    /// search.
    pub fn train_quantizer(&mut self) {
        self.quant =
            if self.data.is_empty() || !matches!(self.dist, Distance::L2 | Distance::SquaredL2) {
                None
            } else {
                Some(Sq8::encode(&self.data))
            };
    }

    /// The trained quantizer, if quantized search is currently available.
    pub fn quantizer(&self) -> Option<&Sq8> {
        self.quant.as_ref()
    }

    /// Total distance evaluations spent constructing the index.
    pub fn build_ndist(&self) -> u64 {
        self.build_ndist.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Current `(entry node, top level)` pair, for serialization.
    pub(crate) fn entry_snapshot(&self) -> Option<(u32, u8)> {
        *self.entry.read()
    }

    /// Copy of node `id`'s neighbour list at `layer`, for serialization.
    pub(crate) fn links_of(&self, id: u32, layer: usize) -> Vec<u32> {
        self.graph.neighbors(id, layer)
    }

    /// Reassembles an index from deserialized parts. Callers must supply a
    /// structurally valid graph (the deserializer validates link ranges).
    /// An empty `entry_set` means "no persisted set" — the deserializer
    /// recomputes one for legacy blobs; validator fixtures that pass one
    /// explicitly exercise multi-entry reachability.
    #[allow(clippy::too_many_arguments)] // mirrors the serialized field list
    pub(crate) fn from_parts(
        config: HnswConfig,
        dist: Distance,
        data: VectorSet,
        levels: Vec<u8>,
        links: Vec<Vec<Vec<u32>>>,
        entry: Option<(u32, u8)>,
        entry_set: Vec<u32>,
        quant: Option<Sq8>,
    ) -> Self {
        assert_eq!(levels.len(), data.len());
        assert_eq!(links.len(), data.len());
        assert!(
            entry_set.iter().all(|&e| (e as usize) < data.len()),
            "entry-set member out of range"
        );
        if let Some(q) = &quant {
            assert_eq!(q.len(), data.len(), "quantizer row count mismatch");
            assert_eq!(q.dim(), data.dim(), "quantizer dimension mismatch");
        }
        let graph = Graph::for_levels(&levels, config.m, config.m_max0);
        for (id, per_layer) in links.into_iter().enumerate() {
            for (layer, l) in per_layer.into_iter().enumerate() {
                graph.set_neighbors(id as u32, layer, l);
            }
        }
        let n = levels.len();
        Self {
            config,
            dist,
            data,
            levels,
            graph,
            quant,
            entry: RwLock::new(entry),
            entry_set,
            build_ndist: std::sync::atomic::AtomicU64::new(0),
            tombstones: vec![false; n],
            live: n,
            mutation_epoch: 0,
        }
    }

    /// Attaches deserialized mutation state (v4 blobs): the tombstone map
    /// and the epoch counter. Pre-v4 blobs carry neither and keep the
    /// all-live defaults [`Hnsw::from_parts`] installs.
    pub(crate) fn with_mutation_state(mut self, tombstones: Vec<bool>, epoch: u64) -> Self {
        assert_eq!(
            tombstones.len(),
            self.len(),
            "tombstone map length mismatch"
        );
        self.live = tombstones.iter().filter(|&&t| !t).count();
        self.tombstones = tombstones;
        self.mutation_epoch = epoch;
        self
    }

    /// Highest-level node first, then natural order — gives the parallel
    /// build a stable entry point.
    fn insertion_order(&self) -> Vec<u32> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let top = (0..n).max_by_key(|&i| self.levels[i]).expect("non-empty") as u32;
        let mut order = Vec::with_capacity(n);
        order.push(top);
        order.extend((0..n as u32).filter(|&i| i != top));
        order
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// The metric this index was built with.
    pub fn distance(&self) -> Distance {
        self.dist
    }

    /// The construction configuration.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Borrow the indexed vectors.
    pub fn vectors(&self) -> &VectorSet {
        &self.data
    }

    /// Level of node `id` (for diagnostics and tests).
    pub fn level(&self, id: u32) -> u8 {
        self.levels[id as usize]
    }

    /// Top layer currently populated; `None` when empty.
    pub fn top_level(&self) -> Option<u8> {
        self.entry.read().map(|(_, l)| l)
    }

    /// Total directed edges in the graph (memory/diagnostics).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Approximate resident bytes of the index (vectors + links), used for
    /// the replication-factor memory accounting in the distributed engine.
    pub fn approx_bytes(&self) -> usize {
        self.data.as_flat().len() * 4 + self.edge_count() * 4 + self.levels.len()
    }

    /// The single distance hook every traversal goes through: evaluates
    /// the query against stored point `id` in whichever domain the query
    /// was lowered to, and charges the scratch counters. Quantized
    /// evaluations count toward both `ndist` (the virtual-clock quantity)
    /// and `ndist_quant` (the observability split).
    #[inline]
    fn d(&self, q: &QueryDist<'_>, id: u32, scratch: &mut SearchScratch) -> f32 {
        scratch.ndist += 1;
        match q {
            QueryDist::Exact(q) => self.dist.eval(q, self.data.get(id as usize)),
            QueryDist::Quant { sq, prep } => {
                scratch.ndist_quant += 1;
                sq.asym_l2(prep, id as usize)
            }
        }
    }

    /// The beam restricted to link-eligible candidates: tombstoned nodes
    /// may carry a beam as waypoints but a new node must never link to one
    /// (their edges vanish at repair, which would orphan the newcomer).
    /// Borrows the beam unchanged on the all-live fast path.
    fn live_candidates<'a>(&self, w: &'a [Neighbor]) -> std::borrow::Cow<'a, [Neighbor]> {
        if self.live == self.len() {
            std::borrow::Cow::Borrowed(w)
        } else {
            std::borrow::Cow::Owned(
                w.iter()
                    .copied()
                    .filter(|n| !self.tombstones[n.id as usize])
                    .collect(),
            )
        }
    }

    /// Deterministically widens a beam bound to compensate for tombstoned
    /// beam slots: `ef · n / live`, rounded up (integer arithmetic, so the
    /// widening is bit-identical everywhere). Identity on an all-live
    /// index; callers guard `live == 0` before searching.
    fn inflate_ef(&self, ef: usize) -> usize {
        if self.live == self.len() || self.live == 0 {
            ef
        } else {
            (ef * self.len()).div_ceil(self.live)
        }
    }

    /// Inserts node `id` (its vector is already in `self.data`).
    /// Construction always runs exact: link structure must not inherit
    /// quantization error.
    fn insert(&self, id: u32, scratch: &mut SearchScratch) {
        let level = self.levels[id as usize];
        let q = self.data.get(id as usize).to_vec();
        let qd = QueryDist::Exact(&q);
        scratch.begin(self.len());

        let entry_snapshot = *self.entry.read();
        let Some((ep, top)) = entry_snapshot else {
            *self.entry.write() = Some((id, level));
            return;
        };

        let ep_dist = self.d(&qd, ep, scratch);
        // Beam descent through layers above the node's level. Construction
        // descends from the single current entry (seeding not-yet-inserted
        // entry-set nodes would link them prematurely), but still carries
        // `entry_beam` candidates across layers so clustered inserts do not
        // get stranded in one basin.
        let mut eps = self.beam_layers(
            &qd,
            vec![Neighbor::new(ep, ep_dist)],
            top as usize,
            level as usize,
            self.config.entry_beam.max(1),
            scratch,
        );
        for lc in (0..=(level.min(top) as usize)).rev() {
            let w = self.search_layer(&qd, &eps, self.config.ef_construction, lc, scratch);
            let selected = select_neighbors_heuristic(
                &self.data,
                &q,
                &self.live_candidates(&w),
                self.config.m,
                self.dist,
                self.config.keep_pruned,
                &mut scratch.ndist,
            );
            // connect id <-> selected
            self.graph.set_neighbors(id, lc, selected.clone());
            for &s in &selected {
                self.link_back(s, id, lc, scratch);
            }
            eps = w;
        }

        if level > top {
            let mut entry = self.entry.write();
            match *entry {
                Some((_, cur_top)) if cur_top >= level => {}
                _ => *entry = Some((id, level)),
            }
        }
        self.build_ndist
            .fetch_add(scratch.ndist, std::sync::atomic::Ordering::Relaxed);
    }

    /// The read-only half of inserting `id`: greedy descent plus per-layer
    /// beam search and neighbour selection against the current graph. Safe
    /// to run concurrently with other planners (it takes only read locks);
    /// the writes happen later in [`Hnsw::apply_insert`].
    fn plan_insert(&self, id: u32, scratch: &mut SearchScratch) -> InsertPlan {
        let level = self.levels[id as usize];
        let q = self.data.get(id as usize).to_vec();
        let qd = QueryDist::Exact(&q);
        scratch.begin(self.len());

        let (ep, top) = self
            .entry_snapshot()
            .expect("plan_insert requires a seeded graph");
        let ep_dist = self.d(&qd, ep, scratch);
        let mut eps = self.beam_layers(
            &qd,
            vec![Neighbor::new(ep, ep_dist)],
            top as usize,
            level as usize,
            self.config.entry_beam.max(1),
            scratch,
        );
        let mut layers = Vec::with_capacity(level.min(top) as usize + 1);
        for lc in (0..=(level.min(top) as usize)).rev() {
            let w = self.search_layer(&qd, &eps, self.config.ef_construction, lc, scratch);
            let selected = select_neighbors_heuristic(
                &self.data,
                &q,
                &self.live_candidates(&w),
                self.config.m,
                self.dist,
                self.config.keep_pruned,
                &mut scratch.ndist,
            );
            layers.push((lc, selected));
            eps = w;
        }
        InsertPlan {
            id,
            layers,
            ndist: scratch.ndist(),
        }
    }

    /// The mutating half of inserting `id`: wires up the links a
    /// [`Hnsw::plan_insert`] selected and refreshes the entry point. Runs
    /// strictly sequentially (one plan at a time, in batch order), which is
    /// what keeps the parallel build deterministic and validator-clean.
    fn apply_insert(&self, plan: InsertPlan, scratch: &mut SearchScratch) {
        let InsertPlan { id, layers, ndist } = plan;
        scratch.begin(self.len());
        for (lc, selected) in layers {
            self.graph.set_neighbors(id, lc, selected.clone());
            for &s in &selected {
                self.link_back(s, id, lc, scratch);
            }
        }
        let level = self.levels[id as usize];
        {
            let mut entry = self.entry.write();
            match *entry {
                Some((_, cur_top)) if cur_top >= level => {}
                _ => *entry = Some((id, level)),
            }
        }
        self.build_ndist.fetch_add(
            ndist + scratch.ndist(),
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// Adds edge `from -> to` at `layer`, shrinking `from`'s neighbourhood
    /// with the selection heuristic if it overflows.
    ///
    /// Pruning is *symmetric*: every edge the reselection drops from
    /// `from`'s list also drops its reverse edge. Without that, overflow
    /// pruning leaves `l -> from` dangling whenever it discards
    /// `from -> l` — the asymmetry the graph validator
    /// ([`Hnsw::validate`]) was written to catch.
    fn link_back(&self, from: u32, to: u32, layer: usize, scratch: &mut SearchScratch) {
        let max = self.config.max_links(layer);
        let mut links = self.graph.neighbors(from, layer);
        if links.contains(&to) {
            return;
        }
        links.push(to);
        if links.len() > max {
            let fv = self.data.get(from as usize);
            let mut cands: Vec<Neighbor> = links
                .iter()
                .map(|&l| {
                    scratch.ndist += 1;
                    Neighbor::new(l, self.dist.eval(fv, self.data.get(l as usize)))
                })
                .collect();
            cands.sort_unstable();
            let selected = select_neighbors_heuristic(
                &self.data,
                fv,
                &cands,
                max,
                self.dist,
                self.config.keep_pruned,
                &mut scratch.ndist,
            );
            for &l in &links {
                if !selected.contains(&l) {
                    self.graph.remove_neighbor(l, layer, from);
                }
            }
            links = selected;
        }
        self.graph.set_neighbors(from, layer, links);
    }

    /// One greedy walk on `layer`: repeatedly move to the closest neighbour
    /// until no neighbour improves.
    ///
    /// Ties on equal distance move to the smaller id, so the outcome is a
    /// canonical `(distance, id)` minimum — independent of neighbour-list
    /// order — and the walk still terminates (each move strictly decreases
    /// the lexicographic `(distance, id)` pair). Without the id tie-break,
    /// duplicate-distance points leave the walk wherever the link order
    /// happens to put it first.
    fn greedy_step(
        &self,
        q: &QueryDist<'_>,
        mut ep: u32,
        mut ep_dist: f32,
        layer: usize,
        scratch: &mut SearchScratch,
    ) -> (u32, f32) {
        let mut nbuf: Vec<u32> = Vec::new();
        loop {
            nbuf.clear();
            self.graph
                .with_neighbors(ep, layer, |ns| nbuf.extend_from_slice(ns));
            let mut improved = false;
            for &nb in &nbuf {
                let d = self.d(q, nb, scratch);
                if d < ep_dist || (d == ep_dist && nb < ep) {
                    ep = nb;
                    ep_dist = d;
                    improved = true;
                }
            }
            if !improved {
                return (ep, ep_dist);
            }
        }
    }

    /// Carries a candidate beam from `top` down to `level + 1` (the layers
    /// a descent crosses without stopping): width-`beam` best-first search
    /// per layer, or the cheaper greedy walk when the beam is a single
    /// candidate wide. Returns the beam to seed the next stage with.
    fn beam_layers(
        &self,
        q: &QueryDist<'_>,
        mut eps: Vec<Neighbor>,
        top: usize,
        level: usize,
        beam: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Neighbor> {
        for lc in ((level + 1)..=top).rev() {
            eps = if beam == 1 && eps.len() == 1 {
                let (id, d) = self.greedy_step(q, eps[0].id, eps[0].dist, lc, scratch);
                vec![Neighbor::new(id, d)]
            } else {
                self.search_layer(q, &eps, beam, lc, scratch)
            };
        }
        eps
    }

    /// Multi-entry beam descent — the upper-layer half of a search. Starts
    /// from the entry point, folds each diverse entry-set member into the
    /// beam at the topmost layer it participates in, and carries the best
    /// `beam` candidates across layers. Every entry-set member participates
    /// at layer 0, so any member the descent never consumed is injected
    /// into the returned seed list — the layer-0 beam starts from every
    /// basin the entry set covers, which is what rescues recall on
    /// multi-modal data (DESIGN.md §13).
    ///
    /// Returns `(layer-0 seeds, descent hops, entry seeds consumed)`;
    /// empty seeds only for an empty index.
    fn descend(
        &self,
        q: &QueryDist<'_>,
        beam: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, u64, u64) {
        let Some((ep, top)) = self.entry_snapshot() else {
            return (Vec::new(), 0, 0);
        };
        let mut eps = vec![Neighbor::new(ep, self.d(q, ep, scratch))];
        let mut seeded = 0u64; // bitmask over entry_set indices
        let mut entry_seeds = 0u64;
        let mut hops = 0u64;
        let mut fold_in = |lc: usize, eps: &mut Vec<Neighbor>, scratch: &mut SearchScratch| {
            for (i, &e) in self.entry_set.iter().enumerate() {
                if seeded & (1 << i) == 0 && (self.levels[e as usize] as usize) >= lc {
                    seeded |= 1 << i;
                    if !eps.iter().any(|n| n.id == e) {
                        let d = self.d(q, e, scratch);
                        eps.push(Neighbor::new(e, d));
                        entry_seeds += 1;
                    }
                }
            }
        };
        for lc in (1..=(top as usize)).rev() {
            fold_in(lc, &mut eps, scratch);
            eps = if beam == 1 && eps.len() == 1 {
                let (id, d) = self.greedy_step(q, eps[0].id, eps[0].dist, lc, scratch);
                vec![Neighbor::new(id, d)]
            } else {
                self.search_layer(q, &eps, beam, lc, scratch)
            };
            hops += 1;
        }
        fold_in(0, &mut eps, scratch);
        (eps, hops, entry_seeds)
    }

    /// `ef`-bounded best-first search on one layer (HNSW Algorithm 2).
    /// Returns up to `ef` nearest candidates sorted ascending.
    fn search_layer(
        &self,
        q: &QueryDist<'_>,
        entry_points: &[Neighbor],
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Neighbor> {
        scratch.new_epoch(self.len());
        let mut candidates: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
        let mut results = TopK::new(ef);
        for &ep in entry_points {
            if scratch.mark(ep.id) {
                candidates.push(Reverse(ep));
                results.push(ep);
                scratch.heap_pushes += 1;
            }
        }
        let mut nbuf: Vec<u32> = Vec::new();
        while let Some(Reverse(c)) = candidates.pop() {
            if c.dist > results.prune_radius() {
                break;
            }
            nbuf.clear();
            self.graph
                .with_neighbors(c.id, layer, |ns| nbuf.extend_from_slice(ns));
            for &nb in &nbuf {
                if !scratch.mark(nb) {
                    continue;
                }
                let d = self.d(q, nb, scratch);
                if !results.is_full() || d < results.prune_radius() {
                    let n = Neighbor::new(nb, d);
                    candidates.push(Reverse(n));
                    if results.is_full() {
                        scratch.ef_churn += 1;
                    }
                    results.push(n);
                    scratch.heap_pushes += 1;
                }
            }
        }
        results.into_sorted()
    }

    /// Appends one vector to the index and links it into the graph —
    /// dynamic insertion for indexes that keep growing after the bulk
    /// build. Returns the new point's id.
    ///
    /// The level is drawn from the same deterministic per-id hash as the
    /// bulk build, so an index grown by `add` is distributed identically to
    /// one built at full size.
    ///
    /// # Panics
    /// Panics if `v.len() != dim()` (for a non-empty index).
    pub fn add(&mut self, v: &[f32]) -> u32 {
        if !self.data.is_empty() {
            assert_eq!(v.len(), self.dim(), "inserted vector has wrong dimension");
        }
        let id = self.data.len() as u32;
        let level = assign_level(self.config.seed, id, self.config.level_mult);
        self.data.push(v);
        self.levels.push(level);
        self.tombstones.push(false);
        self.live += 1;
        self.graph
            .push_node(level as usize, self.config.m, self.config.m_max0);
        let mut scratch = SearchScratch::with_capacity(self.len());
        self.insert(id, &mut scratch);
        // A new upper-layer node can change the k-center selection; pure
        // layer-0 nodes cannot (they are never candidates), so skip the
        // O(cap · n) rescan for the ~94% of adds that stay on layer 0.
        if level >= 1 || self.entry_set.is_empty() {
            self.refresh_entry_set();
        }
        // Incremental quantizer refresh: when the trained grid already
        // covers the new point, append its code to the codebook (same lo /
        // step, norms recomputed by `from_parts`) and quantized search stays
        // on. A point outside the training box would clamp — silently wrong
        // ranks — so the grid is dropped instead and searches fall back to
        // exact until the caller retrains.
        self.quant = match self.quant.take() {
            Some(sq) if Self::in_grid(&sq, v) => {
                let mut codes = sq.codes().to_vec();
                codes.extend_from_slice(&sq.encode_query(v));
                Some(Sq8::from_parts(
                    sq.dim(),
                    sq.lo().to_vec(),
                    sq.step().to_vec(),
                    codes,
                ))
            }
            _ => None,
        };
        self.mutation_epoch += 1;
        id
    }

    /// `true` when `v` lies inside the per-dimension box `sq` was trained
    /// on, i.e. encoding it loses no more than the grid's native rounding.
    fn in_grid(sq: &Sq8, v: &[f32]) -> bool {
        v.iter().enumerate().all(|(d, &x)| {
            let lo = sq.lo()[d];
            x >= lo && x <= lo + 255.0 * sq.step()[d]
        })
    }

    /// Validates the structural invariants of the layered graph:
    ///
    /// * the entry point's stored level matches its node level and is the
    ///   maximum over all nodes;
    /// * every node has exactly `level + 1` layer lists;
    /// * per-layer degrees respect [`HnswConfig::max_links`];
    /// * links are in range, non-self, duplicate-free, and only target
    ///   nodes that participate in the layer;
    /// * links are symmetric (`u -> v` implies `v -> u`);
    /// * the diverse entry set, when present, is in range, duplicate-free,
    ///   starts with the entry point, respects [`ENTRY_SET_CAP`], and every
    ///   other member participates above layer 0;
    /// * the tombstone map covers every row, agrees with the live counter,
    ///   and — while any live node remains — neither the entry point nor an
    ///   entry-set member is tombstoned;
    /// * every **live** node is reachable on layer 0 from at least one
    ///   entry (the entry point or an entry-set member); tombstoned nodes
    ///   may be reachable (pre-repair waypoints) or isolated (post-repair)
    ///   but must never be the only path to a live node.
    ///
    /// Every construction path — [`Hnsw::build`], [`Hnsw::build_parallel`],
    /// and [`Hnsw::add`] — must satisfy all of these (the builds check
    /// automatically in debug profiles). The parallel build upholds them by
    /// construction: graph mutation is confined to the sequential apply
    /// phase.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        let entry = *self.entry.read();
        let (ep, top) = match (n, entry) {
            (0, None) => return Ok(()),
            (0, Some(_)) => return Err("empty index has an entry point".into()),
            (_, None) => return Err("non-empty index has no entry point".into()),
            (_, Some(e)) => e,
        };
        if (ep as usize) >= n {
            return Err(format!("entry point {ep} out of range (n = {n})"));
        }
        if self.levels[ep as usize] != top {
            return Err(format!(
                "entry point {ep} stored at level {top} but its node level is {}",
                self.levels[ep as usize]
            ));
        }
        // Mutation-state consistency: the tombstone map tracks every row and
        // the live counter matches it.
        if self.tombstones.len() != n {
            return Err(format!(
                "tombstone map covers {} of {n} nodes",
                self.tombstones.len()
            ));
        }
        let live = self.tombstones.iter().filter(|&&t| !t).count();
        if live != self.live {
            return Err(format!(
                "live counter {} disagrees with tombstone map ({live} live)",
                self.live
            ));
        }
        if live > 0 && self.tombstones[ep as usize] {
            return Err(format!(
                "entry point {ep} is tombstoned while {live} live nodes remain"
            ));
        }
        // The entry level must be the maximum over live nodes: removals
        // re-elect the entry among survivors, so a higher-levelled tombstone
        // is legal but a higher-levelled live node means the entry is stale.
        // A fully-tombstoned index keeps whatever entry history left (every
        // search short-circuits to empty), so the check is vacuous there.
        if live > 0 {
            let max_level = self
                .levels
                .iter()
                .zip(&self.tombstones)
                .filter(|&(_, &t)| !t)
                .map(|(&l, _)| l)
                .max()
                .unwrap_or(0);
            if top != max_level {
                return Err(format!(
                    "entry-point level {top} is not the graph maximum {max_level}"
                ));
            }
        }
        for id in 0..n as u32 {
            let level = self.levels[id as usize] as usize;
            let stored = self.graph.nodes[id as usize].read().layers.len();
            if stored != level + 1 {
                return Err(format!(
                    "node {id} at level {level} stores {stored} layer lists"
                ));
            }
            for layer in 0..=level {
                let ns = self.graph.neighbors(id, layer);
                if ns.len() > self.config.max_links(layer) {
                    return Err(format!(
                        "node {id} layer {layer} degree {} exceeds bound {}",
                        ns.len(),
                        self.config.max_links(layer)
                    ));
                }
                let mut sorted = ns.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != ns.len() {
                    return Err(format!("node {id} layer {layer} has duplicate links"));
                }
                for &nb in &ns {
                    if nb == id {
                        return Err(format!("node {id} links to itself at layer {layer}"));
                    }
                    if (nb as usize) >= n {
                        return Err(format!(
                            "node {id} layer {layer} links to out-of-range {nb}"
                        ));
                    }
                    if (self.levels[nb as usize] as usize) < layer {
                        return Err(format!(
                            "node {id} layer {layer} links to {nb}, which only \
                             participates up to layer {}",
                            self.levels[nb as usize]
                        ));
                    }
                    let symmetric = self
                        .graph
                        .with_neighbors(nb, layer, |back| back.contains(&id));
                    if !symmetric {
                        return Err(format!(
                            "asymmetric link: {id} -> {nb} at layer {layer} has no reverse edge"
                        ));
                    }
                }
            }
        }
        // Diverse entry-set invariants (an empty set is legal: construction
        // validates before the set is selected, and validator fixtures may
        // omit it).
        if !self.entry_set.is_empty() {
            if self.entry_set.len() > ENTRY_SET_CAP {
                return Err(format!(
                    "entry set holds {} members, cap is {ENTRY_SET_CAP}",
                    self.entry_set.len()
                ));
            }
            if self.entry_set[0] != ep {
                return Err(format!(
                    "entry set starts with {} instead of the entry point {ep}",
                    self.entry_set[0]
                ));
            }
            let mut sorted = self.entry_set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != self.entry_set.len() {
                return Err("entry set has duplicate members".into());
            }
            for &e in &self.entry_set {
                if (e as usize) >= n {
                    return Err(format!("entry-set member {e} out of range (n = {n})"));
                }
                if e != ep && self.levels[e as usize] < 1 {
                    return Err(format!(
                        "entry-set member {e} does not participate above layer 0"
                    ));
                }
                if live > 0 && self.tombstones[e as usize] {
                    return Err(format!("entry-set member {e} is tombstoned"));
                }
            }
        }
        // Layer-0 reachability of every LIVE node from the entries (the
        // entry point plus every entry-set member — searches seed the
        // layer-0 beam from all of them, so a point is searchable iff some
        // entry reaches it). Tombstoned nodes may remain reachable as
        // waypoints before a repair pass and become isolated after one;
        // both states are legal — what must never happen is a live node
        // only reachable through edges a repair already removed.
        let seen = self.layer0_reachable();
        let unreachable = (0..n)
            .filter(|&id| !seen[id] && !self.tombstones[id])
            .count();
        if unreachable != 0 {
            return Err(format!(
                "{unreachable} of {live} live nodes unreachable from the {} entries on layer 0",
                1 + self.entry_set.len()
            ));
        }
        Ok(())
    }

    /// k-NN search with beam width `ef` (clamped up to `k`). Allocates a
    /// fresh scratch; use [`Hnsw::search_with_scratch`] in hot loops.
    pub fn search(&self, q: &[f32], k: usize, ef: usize) -> (Vec<Neighbor>, SearchStats) {
        let mut scratch = SearchScratch::with_capacity(self.len());

        self.search_with_scratch(q, k, ef, &mut scratch)
    }

    /// k-NN search reusing caller-provided scratch space. Always exact;
    /// [`Hnsw::search_quantized_with_scratch`] is the quantized-first
    /// variant. Descends with the index's configured `entry_beam`; use
    /// [`Hnsw::search_with_beam`] to override per query.
    pub fn search_with_scratch(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.search_with_beam(q, k, ef, 0, scratch)
    }

    /// Exact k-NN search with an explicit descent beam width. `entry_beam`
    /// of `0` inherits the index configuration; `1` degenerates to the
    /// classic single-seed greedy descent (still seeded at layer 0 from the
    /// full diverse entry set).
    pub fn search_with_beam(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        entry_beam: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        scratch.begin(self.len());
        if self.live == 0 {
            return (Vec::new(), SearchStats::default());
        }
        let beam = self.resolve_beam(entry_beam);
        let qd = QueryDist::Exact(q);
        let ef = self.inflate_ef(ef.max(k));
        let (seeds, hops, entry_seeds) = self.descend(&qd, beam, scratch);
        if seeds.is_empty() {
            return (Vec::new(), SearchStats::default());
        }
        let mut w = self.search_layer(&qd, &seeds, ef, 0, scratch);
        if self.live < self.len() {
            w.retain(|n| !self.tombstones[n.id as usize]);
        }
        let out: Vec<Neighbor> = w.into_iter().take(k).collect();
        (
            out,
            SearchStats {
                ndist: scratch.ndist(),
                ndist_quant: 0,
                rerank: 0,
                hops,
                heap_pushes: scratch.heap_pushes,
                ef_churn: scratch.ef_churn,
                entry_seeds,
            },
        )
    }

    /// `0` means "inherit the build-time config"; anything else is an
    /// explicit per-query override.
    #[inline]
    fn resolve_beam(&self, entry_beam: usize) -> usize {
        if entry_beam == 0 {
            self.config.entry_beam.max(1)
        } else {
            entry_beam
        }
    }

    /// Quantized-first k-NN search allocating fresh scratch; see
    /// [`Hnsw::search_quantized_with_scratch`].
    pub fn search_quantized(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        let mut scratch = SearchScratch::with_capacity(self.len());
        self.search_quantized_with_scratch(q, k, ef, rerank_factor, &mut scratch)
    }

    /// Quantized-first k-NN search (the AQR-HNSW recipe): traverse the
    /// graph with the SQ8 asymmetric distance at full beam width `ef`,
    /// take the first `rerank_factor * k` beam survivors as the candidate
    /// pool, and re-rank that pool with the exact metric before returning
    /// the best `k`.
    ///
    /// The traversal runs in the squared-L2 domain (no per-candidate
    /// square root) over one byte per dimension, so it is both
    /// bandwidth- and compute-cheaper than the exact walk; the exact
    /// stage touches only the pool. Falls back to
    /// [`Hnsw::search_with_scratch`] when no quantizer is available (empty
    /// index, non-L2 metric, or a stale grid after [`Hnsw::add`]) — the
    /// exact-metric fallback, so callers always get correct results.
    ///
    /// Determinism: quantized distances are bit-identical across thread
    /// counts (same chunked kernels, same reduction order), so results
    /// carry the same reproducibility contract as the exact path.
    ///
    /// # Panics
    /// Panics if `k == 0`, `rerank_factor == 0`, or the query dimension
    /// does not match the index.
    pub fn search_quantized_with_scratch(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        self.search_quantized_with_beam(q, k, ef, rerank_factor, 0, scratch)
    }

    /// Quantized-first k-NN search with an explicit descent beam width;
    /// `entry_beam` semantics match [`Hnsw::search_with_beam`].
    pub fn search_quantized_with_beam(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        rerank_factor: usize,
        entry_beam: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert!(k > 0, "k must be positive");
        assert!(rerank_factor > 0, "rerank_factor must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        let Some(sq) = self.quant.as_ref() else {
            return self.search_with_beam(q, k, ef, entry_beam, scratch);
        };
        scratch.begin(self.len());
        if self.live == 0 {
            return (Vec::new(), SearchStats::default());
        }
        let beam = self.resolve_beam(entry_beam);
        let qd = QueryDist::Quant {
            sq,
            prep: sq.prepare_query(q),
        };
        let ef = self.inflate_ef(ef.max(k));
        let (seeds, hops, entry_seeds) = self.descend(&qd, beam, scratch);
        if seeds.is_empty() {
            return (Vec::new(), SearchStats::default());
        }
        let mut w = self.search_layer(&qd, &seeds, ef, 0, scratch);
        if self.live < self.len() {
            w.retain(|n| !self.tombstones[n.id as usize]);
        }
        let pool = rerank_factor.saturating_mul(k).min(w.len());
        let out = rerank_exact(self.dist, &self.data, q, &w, pool, k, &mut scratch.ndist);
        (
            out,
            SearchStats {
                ndist: scratch.ndist(),
                ndist_quant: scratch.ndist_quant(),
                rerank: pool as u64,
                hops,
                heap_pushes: scratch.heap_pushes,
                ef_churn: scratch.ef_churn,
                entry_seeds,
            },
        )
    }
}

impl std::fmt::Debug for Hnsw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hnsw")
            .field("len", &self.len())
            .field("dim", &self.dim())
            .field("m", &self.config.m)
            .field("top_level", &self.top_level())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::{ground_truth, synth};

    fn small_index(n: usize, dim: usize, seed: u64) -> (VectorSet, Hnsw) {
        let data = synth::sift_like(n, dim, seed);
        let idx = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(8).seed(seed));
        (data, idx)
    }

    #[test]
    fn empty_index_searches_empty() {
        let idx = Hnsw::build(VectorSet::new(4), Distance::L2, HnswConfig::default());
        let (r, s) = idx.search(&[0.0; 4], 3, 10);
        assert!(r.is_empty());
        assert_eq!(s.ndist, 0);
        let (rq, sq) = idx.search_quantized(&[0.0; 4], 3, 10, 3);
        assert!(rq.is_empty());
        assert_eq!(sq.ndist, 0);
    }

    #[test]
    fn quantized_search_finds_self_with_exact_distance() {
        let (data, idx) = small_index(400, 16, 51);
        let q = data.get(11);
        let (hits, stats) = idx.search_quantized(q, 5, 64, 3);
        assert_eq!(hits[0].id, 11);
        // the re-rank stage scores survivors with the exact metric, so the
        // self-distance is exactly zero despite the quantized traversal
        assert_eq!(hits[0].dist, 0.0);
        assert!(stats.ndist_quant > 0, "traversal should run quantized");
        assert_eq!(stats.rerank, 15, "pool = rerank_factor * k");
        assert!(
            stats.ndist > stats.ndist_quant,
            "re-rank adds exact evaluations on top"
        );
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn quantized_recall_within_a_point_of_exact() {
        // fine-grained unit-norm data is where quantization error bites;
        // the re-rank pool must recover recall to within 0.01 of exact
        let data = synth::deep_like(2500, 32, 91);
        let queries = synth::queries_near(&data, 50, 0.02, 92);
        let idx = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(16).seed(91));
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let mut scratch = SearchScratch::with_capacity(idx.len());
        let exact: Vec<_> = (0..queries.len())
            .map(|i| {
                idx.search_with_scratch(queries.get(i), 10, 64, &mut scratch)
                    .0
            })
            .collect();
        let quant: Vec<_> = (0..queries.len())
            .map(|i| {
                idx.search_quantized_with_scratch(queries.get(i), 10, 64, 3, &mut scratch)
                    .0
            })
            .collect();
        let r_exact = ground_truth::recall_at_k(&exact, &gt, 10).mean;
        let r_quant = ground_truth::recall_at_k(&quant, &gt, 10).mean;
        assert!(
            r_quant >= r_exact - 0.01,
            "quantized recall {r_quant} dropped more than 0.01 below exact {r_exact}"
        );
    }

    #[test]
    fn quantized_search_spends_fewer_exact_evaluations() {
        let (data, idx) = small_index(1500, 32, 61);
        let q = data.get(7);
        let (_, se) = idx.search(q, 10, 64);
        let (_, sq) = idx.search_quantized(q, 10, 64, 3);
        let exact_evals = sq.ndist - sq.ndist_quant;
        assert_eq!(
            exact_evals, sq.rerank,
            "the only exact evaluations are the re-rank pool"
        );
        assert!(
            exact_evals < se.ndist / 2,
            "quantized path should do far fewer exact evals ({exact_evals} vs {})",
            se.ndist
        );
    }

    #[test]
    fn quantized_search_is_deterministic_across_calls() {
        let (data, idx) = small_index(800, 16, 71);
        let mut s1 = SearchScratch::with_capacity(idx.len());
        let mut s2 = SearchScratch::with_capacity(idx.len());
        for i in (0..800).step_by(97) {
            let q = data.get(i);
            let (a, sa) = idx.search_quantized_with_scratch(q, 5, 48, 3, &mut s1);
            let (b, sb) = idx.search_quantized_with_scratch(q, 5, 48, 3, &mut s2);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
            assert_eq!(sa, sb, "stats identical too");
        }
    }

    #[test]
    fn add_invalidates_quantizer_and_retrain_restores_it() {
        let (_, idx) = small_index(200, 8, 41);
        assert!(idx.quantizer().is_some());
        let mut idx = idx;
        idx.add(&[500.0; 8]); // outside the trained box
        assert!(idx.quantizer().is_none(), "add must invalidate the grid");
        // fallback still answers exactly
        let (hits, stats) = idx.search_quantized(&[500.0; 8], 1, 16, 3);
        assert_eq!(hits[0].id, 200);
        assert_eq!(stats.ndist_quant, 0, "stale grid must not be used");
        idx.train_quantizer();
        assert!(idx.quantizer().is_some());
        let (hits, stats) = idx.search_quantized(&[500.0; 8], 1, 16, 3);
        assert_eq!(hits[0].id, 200);
        assert!(stats.ndist_quant > 0, "retrained grid re-enables quantized");
    }

    #[test]
    fn cosine_index_has_no_quantizer_and_falls_back() {
        let data = synth::deep_like(300, 8, 23);
        let idx = Hnsw::build(
            data.clone(),
            Distance::Cosine,
            HnswConfig::with_m(8).seed(23),
        );
        assert!(idx.quantizer().is_none(), "cosine cannot rank in sq-L2");
        let (a, stats) = idx.search_quantized(data.get(5), 3, 32, 3);
        let (b, _) = idx.search(data.get(5), 3, 32);
        assert_eq!(a, b, "fallback must equal the exact path");
        assert_eq!(stats.ndist_quant, 0);
    }

    #[test]
    fn single_point_index() {
        let mut data = VectorSet::new(2);
        data.push(&[1.0, 2.0]);
        let idx = Hnsw::build(data, Distance::L2, HnswConfig::default());
        let (r, _) = idx.search(&[1.0, 2.0], 3, 10);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 0);
        assert_eq!(r[0].dist, 0.0);
    }

    #[test]
    fn finds_self_as_nearest() {
        let (data, idx) = small_index(500, 16, 3);
        for i in (0..500).step_by(37) {
            let (r, _) = idx.search(data.get(i), 1, 32);
            assert_eq!(r[0].id, i as u32, "point {i} should find itself");
        }
    }

    #[test]
    fn results_sorted_and_unique() {
        let (data, idx) = small_index(800, 16, 4);
        let (r, _) = idx.search(data.get(5), 10, 64);
        assert_eq!(r.len(), 10);
        for w in r.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<u32> = r.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn high_recall_on_small_set() {
        let data = synth::sift_like(2000, 16, 5);
        let queries = synth::queries_near(&data, 50, 0.02, 6);
        let idx = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(16).seed(5));
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let approx: Vec<_> = (0..queries.len())
            .map(|i| idx.search(queries.get(i), 10, 128).0)
            .collect();
        let rec = ground_truth::recall_at_k(&approx, &gt, 10);
        assert!(rec.mean > 0.9, "recall too low: {}", rec.mean);
    }

    #[test]
    fn higher_ef_never_lowers_mean_recall_much() {
        let data = synth::deep_like(1500, 24, 8);
        let queries = synth::queries_near(&data, 30, 0.02, 9);
        let idx = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(8).seed(8));
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let recall_for = |ef: usize| {
            let approx: Vec<_> = (0..queries.len())
                .map(|i| idx.search(queries.get(i), 10, ef).0)
                .collect();
            ground_truth::recall_at_k(&approx, &gt, 10).mean
        };
        let lo = recall_for(16);
        let hi = recall_for(256);
        assert!(hi >= lo - 0.02, "ef=256 recall {hi} worse than ef=16 {lo}");
        assert!(hi > 0.85, "recall at ef=256 too low: {hi}");
    }

    #[test]
    fn ndist_grows_with_ef() {
        let (data, idx) = small_index(2000, 16, 10);
        let (_, s_small) = idx.search(data.get(0), 10, 16);
        let (_, s_large) = idx.search(data.get(0), 10, 256);
        assert!(
            s_large.ndist > s_small.ndist,
            "ef=256 ({}) should cost more than ef=16 ({})",
            s_large.ndist,
            s_small.ndist
        );
    }

    #[test]
    fn link_degrees_respect_bounds() {
        let (_, idx) = small_index(1000, 8, 11);
        for id in 0..1000u32 {
            for layer in 0..=idx.level(id) as usize {
                idx.graph.with_neighbors(id, layer, |ns| {
                    assert!(
                        ns.len() <= idx.config.max_links(layer),
                        "node {id} layer {layer} degree {} > bound",
                        ns.len()
                    );
                });
            }
        }
    }

    #[test]
    fn level_distribution_is_geometric() {
        let n = 20_000;
        let mult = 1.0 / 16f64.ln();
        let levels: Vec<u8> = (0..n as u32).map(|i| assign_level(42, i, mult)).collect();
        let l0 = levels.iter().filter(|&&l| l == 0).count() as f64 / n as f64;
        // P(level = 0) = 1 - 1/16 = 0.9375
        assert!((l0 - 0.9375).abs() < 0.01, "layer-0 fraction {l0}");
        let l1 = levels.iter().filter(|&&l| l == 1).count() as f64 / n as f64;
        assert!((l1 - 0.0586).abs() < 0.01, "layer-1 fraction {l1}");
    }

    #[test]
    fn parallel_build_matches_sequential_quality() {
        let data = synth::sift_like(1500, 16, 12);
        let queries = synth::queries_near(&data, 30, 0.02, 13);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let cfg = HnswConfig::with_m(8).seed(12);
        let seq = Hnsw::build(data.clone(), Distance::L2, cfg);
        let par = Hnsw::build_parallel(data.clone(), Distance::L2, cfg);
        let rec = |idx: &Hnsw| {
            let approx: Vec<_> = (0..queries.len())
                .map(|i| idx.search(queries.get(i), 10, 96).0)
                .collect();
            ground_truth::recall_at_k(&approx, &gt, 10).mean
        };
        let rs = rec(&seq);
        let rp = rec(&par);
        assert!(
            rp > rs - 0.1,
            "parallel recall {rp} far below sequential {rs}"
        );
    }

    #[test]
    fn parallel_build_is_validator_clean_and_thread_count_independent() {
        // The batch-parallel build mutates the graph only in its sequential
        // apply phase, so the result must (a) pass the full validator even
        // in release builds and (b) be identical for every thread count.
        let data = synth::sift_like(900, 12, 40);
        let cfg = HnswConfig::with_m(8).seed(40);
        let one =
            rayon::with_num_threads(1, || Hnsw::build_parallel(data.clone(), Distance::L2, cfg));
        let four =
            rayon::with_num_threads(4, || Hnsw::build_parallel(data.clone(), Distance::L2, cfg));
        one.validate().expect("threads=1 parallel build is valid");
        four.validate().expect("threads=4 parallel build is valid");
        assert_eq!(one.edge_count(), four.edge_count());
        assert_eq!(one.entry_snapshot(), four.entry_snapshot());
        assert_eq!(one.build_ndist(), four.build_ndist());
        for id in 0..one.len() as u32 {
            for layer in 0..=one.level(id) as usize {
                assert_eq!(
                    one.links_of(id, layer),
                    four.links_of(id, layer),
                    "node {id} layer {layer} differs across thread counts"
                );
            }
        }
        for i in (0..900).step_by(97) {
            assert_eq!(
                one.search(data.get(i), 5, 48).0,
                four.search(data.get(i), 5, 48).0
            );
        }
    }

    #[test]
    fn parallel_build_recall_parity_with_sequential() {
        let data = synth::sift_like(1200, 16, 41);
        let queries = synth::queries_near(&data, 40, 0.02, 42);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let cfg = HnswConfig::with_m(8).seed(41);
        let seq = Hnsw::build(data.clone(), Distance::L2, cfg);
        let par = Hnsw::build_parallel(data.clone(), Distance::L2, cfg);
        par.validate().expect("parallel build is valid");
        let rec = |idx: &Hnsw| {
            let approx: Vec<_> = (0..queries.len())
                .map(|i| idx.search(queries.get(i), 10, 96).0)
                .collect();
            ground_truth::recall_at_k(&approx, &gt, 10).mean
        };
        let (rs, rp) = (rec(&seq), rec(&par));
        assert!(rp > 0.85, "parallel recall too low: {rp}");
        assert!(
            rp > rs - 0.05,
            "parallel recall {rp} far below sequential {rs}"
        );
    }

    #[test]
    fn parallel_build_empty_and_tiny_inputs() {
        let empty = Hnsw::build_parallel(VectorSet::new(4), Distance::L2, HnswConfig::default());
        assert!(empty.is_empty());
        empty.validate().expect("empty parallel build is valid");
        let mut data = VectorSet::new(2);
        data.push(&[0.5, 0.5]);
        let single = Hnsw::build_parallel(data, Distance::L2, HnswConfig::default());
        assert_eq!(single.len(), 1);
        single.validate().expect("1-point parallel build is valid");
        let (r, _) = single.search(&[0.5, 0.5], 1, 8);
        assert_eq!(r[0].id, 0);
    }

    #[test]
    fn graph_is_connected_at_layer0() {
        // BFS from entry must reach every node: the graph search can only
        // return reachable points.
        let (_, idx) = small_index(600, 8, 14);
        let (entry, _) = idx.entry.read().expect("non-empty");
        let n = idx.len();
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[entry as usize] = true;
        queue.push_back(entry);
        while let Some(u) = queue.pop_front() {
            for nb in idx.graph.neighbors(u, 0) {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    queue.push_back(nb);
                }
            }
        }
        let reached = seen.iter().filter(|&&s| s).count();
        assert!(
            reached as f64 >= n as f64 * 0.99,
            "only {reached}/{n} nodes reachable from entry"
        );
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let (_, idx) = small_index(5, 8, 15);
        let (r, _) = idx.search(idx.vectors().get(0), 20, 64);
        assert_eq!(r.len(), 5);
    }

    #[test]
    #[should_panic]
    fn wrong_dim_query_panics() {
        let (_, idx) = small_index(10, 8, 16);
        let _ = idx.search(&[0.0; 4], 1, 8);
    }

    #[test]
    fn approx_bytes_counts_vectors_and_edges() {
        let (_, idx) = small_index(100, 8, 17);
        let b = idx.approx_bytes();
        assert!(b >= 100 * 8 * 4, "must at least count vector storage");
    }

    #[test]
    fn deterministic_sequential_build() {
        let data = synth::sift_like(400, 8, 18);
        let cfg = HnswConfig::with_m(8).seed(18);
        let a = Hnsw::build(data.clone(), Distance::L2, cfg);
        let b = Hnsw::build(data.clone(), Distance::L2, cfg);
        let qa = a.search(data.get(3), 5, 32).0;
        let qb = b.search(data.get(3), 5, 32).0;
        assert_eq!(qa, qb);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn add_grows_index_incrementally() {
        let data = synth::sift_like(600, 12, 30);
        let mut idx = Hnsw::build(
            data.split_even(2)[0].clone(),
            Distance::L2,
            HnswConfig::with_m(8).seed(30),
        );
        assert_eq!(idx.len(), 300);
        let second = data.split_even(2)[1].clone();
        for row in second.iter() {
            idx.add(row);
        }
        assert_eq!(idx.len(), 600);
        // newly added points are findable
        for i in (300..600).step_by(51) {
            let (r, _) = idx.search(data.get(i), 1, 48);
            assert_eq!(r[0].dist, 0.0, "added point {i} not found");
        }
        // recall comparable to a bulk-built index over the same data
        let bulk = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(8).seed(30));
        let queries = synth::queries_near(&data, 20, 0.03, 31);
        let gt = ground_truth::brute_force(&data, &queries, 5, Distance::L2);
        let rec = |ix: &Hnsw| {
            let res: Vec<_> = (0..queries.len())
                .map(|i| ix.search(queries.get(i), 5, 64).0)
                .collect();
            ground_truth::recall_at_k(&res, &gt, 5).mean
        };
        let (grown, built) = (rec(&idx), rec(&bulk));
        assert!(
            grown > built - 0.15,
            "grown index recall {grown} far below bulk {built}"
        );
    }

    #[test]
    fn add_into_empty_index() {
        let mut idx = Hnsw::build(VectorSet::new(3), Distance::L2, HnswConfig::with_m(4));
        let id = idx.add(&[1.0, 2.0, 3.0]);
        assert_eq!(id, 0);
        idx.add(&[1.1, 2.0, 3.0]);
        let (r, _) = idx.search(&[1.0, 2.0, 3.0], 2, 8);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].id, 0);
    }

    #[test]
    #[should_panic]
    fn add_wrong_dim_panics() {
        let data = synth::sift_like(10, 4, 32);
        let mut idx = Hnsw::build(data, Distance::L2, HnswConfig::with_m(4));
        idx.add(&[0.0; 5]);
    }

    fn tiny_points(n: usize) -> VectorSet {
        let mut data = VectorSet::new(2);
        for i in 0..n {
            data.push(&[i as f32, (i * i) as f32 * 0.1]);
        }
        data
    }

    #[test]
    fn validator_accepts_sequential_and_grown_index() {
        let (_, idx) = small_index(700, 8, 33);
        idx.validate().expect("sequential build is valid");
        let mut idx = idx;
        for i in 0..40 {
            idx.add(&[i as f32; 8]);
        }
        idx.validate().expect("grown index is valid");
    }

    #[test]
    fn validator_accepts_empty_index() {
        let idx = Hnsw::build(VectorSet::new(4), Distance::L2, HnswConfig::default());
        idx.validate().expect("empty index is valid");
    }

    #[test]
    fn validator_rejects_asymmetric_link() {
        let idx = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            tiny_points(2),
            vec![0, 0],
            vec![vec![vec![1]], vec![vec![]]],
            Some((0, 0)),
            Vec::new(),
            None,
        );
        let err = idx.validate().expect_err("asymmetry must be caught");
        assert!(err.contains("asymmetric"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_degree_overflow() {
        // m = 2 -> layer-0 bound is m_max0 = 4; give node 0 five links
        let links = vec![
            vec![vec![1, 2, 3, 4, 5]],
            vec![vec![0]],
            vec![vec![0]],
            vec![vec![0]],
            vec![vec![0]],
            vec![vec![0]],
        ];
        let idx = Hnsw::from_parts(
            HnswConfig::with_m(2),
            Distance::L2,
            tiny_points(6),
            vec![0; 6],
            links,
            Some((0, 0)),
            Vec::new(),
            None,
        );
        let err = idx.validate().expect_err("degree overflow must be caught");
        assert!(err.contains("exceeds bound"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_unreachable_node() {
        let idx = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            tiny_points(3),
            vec![0, 0, 0],
            vec![vec![vec![1]], vec![vec![0]], vec![vec![]]],
            Some((0, 0)),
            Vec::new(),
            None,
        );
        let err = idx.validate().expect_err("island must be caught");
        assert!(err.contains("unreachable"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_stale_entry_level() {
        // node 1 sits at level 1 but the entry point claims level 0 is top
        let idx = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            tiny_points(2),
            vec![0, 1],
            vec![vec![vec![1]], vec![vec![0], vec![]]],
            Some((0, 0)),
            Vec::new(),
            None,
        );
        let err = idx.validate().expect_err("stale entry must be caught");
        assert!(
            err.contains("not the graph maximum"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn greedy_descent_tie_break_is_link_order_independent() {
        // 1-D fixture where two layer-1 nodes are exactly equidistant from
        // the query: the walk from the entry must settle on the smaller id
        // regardless of which neighbour the link list names first. Before
        // the id tie-break, the first-listed neighbour won, so the two
        // mirror fixtures below disagreed.
        let mut data = VectorSet::new(1);
        for v in [[10.0f32], [1.0], [-1.0], [1.5], [-1.5]] {
            data.push(&v);
        }
        let levels = vec![1, 1, 1, 0, 0];
        let fixture = |layer1_of_0: Vec<u32>| {
            Hnsw::from_parts(
                HnswConfig::with_m(4),
                Distance::L2,
                data.clone(),
                levels.clone(),
                vec![
                    vec![vec![1, 2], layer1_of_0],
                    vec![vec![0, 3], vec![0]],
                    vec![vec![0, 4], vec![0]],
                    vec![vec![1]],
                    vec![vec![2]],
                ],
                Some((0, 1)),
                Vec::new(),
                None,
            )
        };
        let a = fixture(vec![1, 2]);
        let b = fixture(vec![2, 1]);
        let mut scratch = SearchScratch::with_capacity(5);
        // beam = 1 exercises the greedy walk; ef = 1 keeps the layer-0
        // search confined to the basin the walk picked
        let (ra, _) = a.search_with_beam(&[0.0], 1, 1, 1, &mut scratch);
        let (rb, _) = b.search_with_beam(&[0.0], 1, 1, 1, &mut scratch);
        assert_eq!(ra[0].id, 1, "tie must resolve to the smaller id");
        assert_eq!(ra, rb, "descent outcome must not depend on link order");
    }

    #[test]
    fn duplicate_points_return_lowest_ids_deterministically() {
        // Nine identical vectors (within the m_max0 = 8 cap, so overflow
        // pruning never fires): every pairwise and query distance ties, so
        // the canonical (distance, id) order must surface ids 0..5.
        let mut data = VectorSet::new(4);
        for _ in 0..9 {
            data.push(&[3.0, 1.0, 4.0, 1.5]);
        }
        let idx = Hnsw::build(data, Distance::L2, HnswConfig::with_m(4).seed(2));
        idx.validate().expect("duplicate-point build is valid");
        let (r, _) = idx.search(&[3.0, 1.0, 4.0, 1.5], 5, 32);
        let ids: Vec<u32> = r.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(r.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn entry_set_is_diverse_and_deterministic() {
        // two well-separated blobs: the entry set must cover both
        let mut data = VectorSet::new(2);
        for i in 0..300 {
            let off = if i % 2 == 0 { 0.0 } else { 1000.0 };
            data.push(&[off + (i as f32) * 0.01, off]);
        }
        let cfg = HnswConfig::with_m(8).seed(5);
        let a = Hnsw::build(data.clone(), Distance::L2, cfg);
        let b = Hnsw::build(data.clone(), Distance::L2, cfg);
        assert_eq!(a.entry_set(), b.entry_set(), "selection is deterministic");
        assert!(a.entry_set().len() > 1);
        assert_eq!(
            a.entry_set()[0],
            a.entry_snapshot().expect("non-empty").0,
            "entry point leads the set"
        );
        let far = |id: u32| data.get(id as usize)[1] > 500.0;
        let near_ep = far(a.entry_set()[0]);
        assert!(
            a.entry_set().iter().any(|&e| far(e) != near_ep),
            "entry set must reach the opposite blob: {:?}",
            a.entry_set()
        );
        // every non-entry member participates above layer 0
        for &e in &a.entry_set()[1..] {
            assert!(a.level(e) >= 1, "member {e} is a pure layer-0 node");
        }
    }

    #[test]
    fn validator_accepts_multi_entry_reachability() {
        // Two layer-0 components; the second is reachable only through an
        // entry-set member. With the member supplied the graph is legal;
        // without it node 2/3 are unsearchable and must be rejected.
        let mut data = VectorSet::new(1);
        for v in [[0.0f32], [0.1], [100.0], [100.1]] {
            data.push(&v);
        }
        let levels = vec![1, 0, 1, 0];
        let links = vec![
            vec![vec![1], vec![2]],
            vec![vec![0]],
            vec![vec![3], vec![0]],
            vec![vec![2]],
        ];
        let with_set = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            data.clone(),
            levels.clone(),
            links.clone(),
            Some((0, 1)),
            vec![0, 2],
            None,
        );
        with_set
            .validate()
            .expect("second component is reachable via entry-set member 2");
        let without_set = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            data,
            levels,
            links,
            Some((0, 1)),
            Vec::new(),
            None,
        );
        let err = without_set
            .validate()
            .expect_err("single-entry reachability must fail");
        assert!(err.contains("unreachable"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_malformed_entry_sets() {
        let build = |entry_set: Vec<u32>| {
            Hnsw::from_parts(
                HnswConfig::with_m(4),
                Distance::L2,
                tiny_points(3),
                vec![1, 0, 0],
                vec![vec![vec![1, 2], vec![]], vec![vec![0, 2]], vec![vec![0, 1]]],
                Some((0, 1)),
                entry_set,
                None,
            )
        };
        let err = build(vec![1])
            .validate()
            .expect_err("must start with entry");
        assert!(err.contains("instead of the entry point"), "{err}");
        let err = build(vec![0, 0]).validate().expect_err("dup member");
        assert!(err.contains("duplicate members"), "{err}");
        let err = build(vec![0, 2]).validate().expect_err("layer-0 member");
        assert!(err.contains("participate above layer 0"), "{err}");
        build(vec![0]).validate().expect("entry-only set is legal");
    }

    #[test]
    fn wider_entry_beam_never_loses_self_hits() {
        let (data, idx) = small_index(600, 12, 44);
        let mut scratch = SearchScratch::with_capacity(idx.len());
        for i in (0..600).step_by(71) {
            let q = data.get(i);
            for beam in [1, 2, 8] {
                let (r, _) = idx.search_with_beam(q, 1, 24, beam, &mut scratch);
                assert_eq!(r[0].id, i as u32, "beam {beam} lost point {i}");
            }
        }
    }

    #[test]
    fn entry_seeds_reported_only_when_consumed() {
        let (data, idx) = small_index(900, 12, 45);
        assert!(idx.entry_set().len() > 1);
        let mut scratch = SearchScratch::with_capacity(idx.len());
        let (_, stats) = idx.search_with_scratch(data.get(3), 5, 32, &mut scratch);
        assert!(
            stats.entry_seeds > 0,
            "multi-member entry set should inject seeds"
        );
        assert!(stats.entry_seeds <= (idx.entry_set().len() - 1) as u64);
    }

    #[test]
    fn works_with_cosine_distance() {
        let data = synth::deep_like(500, 16, 19);
        let idx = Hnsw::build(
            data.clone(),
            Distance::Cosine,
            HnswConfig::with_m(8).seed(19),
        );
        let (r, _) = idx.search(data.get(7), 3, 32);
        assert_eq!(r[0].id, 7);
    }

    #[test]
    fn remove_filters_results_immediately() {
        let (data, idx) = small_index(800, 12, 90);
        let mut idx = idx;
        let removed: Vec<u32> = (0..800).step_by(5).map(|i| i as u32).collect();
        for &id in &removed {
            assert!(idx.remove(id), "first removal of {id} succeeds");
            assert!(!idx.remove(id), "second removal of {id} is a no-op");
        }
        assert_eq!(idx.live_len(), 800 - removed.len());
        assert!((idx.tombstone_ratio() - 0.2).abs() < 1e-9);
        let mut scratch = SearchScratch::with_capacity(idx.len());
        for i in (0..800).step_by(31) {
            let (r, _) = idx.search_with_scratch(data.get(i), 10, 64, &mut scratch);
            assert!(
                r.iter().all(|h| idx.is_live(h.id)),
                "query {i} surfaced a tombstoned id"
            );
            let (rq, _) = idx.search_quantized_with_scratch(data.get(i), 10, 64, 3, &mut scratch);
            assert!(
                rq.iter().all(|h| idx.is_live(h.id)),
                "quantized query {i} surfaced a tombstoned id"
            );
            if idx.is_live(i as u32) {
                assert_eq!(r[0].id, i as u32, "live point {i} must still find itself");
            }
        }
    }

    #[test]
    fn remove_of_entry_point_reelects_live_entry() {
        let (_, idx) = small_index(500, 8, 91);
        let mut idx = idx;
        let (ep, _) = idx.entry_snapshot().expect("non-empty");
        assert!(idx.remove(ep));
        let (new_ep, _) = idx.entry_snapshot().expect("still has an entry");
        assert_ne!(new_ep, ep);
        assert!(idx.is_live(new_ep), "re-elected entry must be live");
        idx.validate()
            .expect("entry re-election keeps the graph valid");
        assert_eq!(idx.entry_set()[0], new_ep, "entry set follows the entry");
    }

    #[test]
    fn remove_all_points_yields_empty_results() {
        let (data, idx) = small_index(60, 8, 92);
        let mut idx = idx;
        for id in 0..60 {
            idx.remove(id);
        }
        assert_eq!(idx.live_len(), 0);
        assert_eq!(idx.tombstone_ratio(), 1.0);
        idx.validate().expect("fully tombstoned index is valid");
        assert!(idx.search(data.get(0), 5, 32).0.is_empty());
        assert!(idx.search_quantized(data.get(0), 5, 32, 3).0.is_empty());
    }

    #[test]
    fn mutation_epoch_bumps_on_every_effective_mutation() {
        let (_, idx) = small_index(100, 8, 93);
        let mut idx = idx;
        assert_eq!(idx.mutation_epoch(), 0, "fresh build starts at epoch 0");
        idx.remove(7);
        assert_eq!(idx.mutation_epoch(), 1);
        idx.remove(7); // no-op
        assert_eq!(idx.mutation_epoch(), 1);
        idx.add(&[0.25; 8]);
        assert_eq!(idx.mutation_epoch(), 2);
        assert!(idx.repair_tombstones() > 0);
        assert_eq!(idx.mutation_epoch(), 3);
        assert_eq!(idx.repair_tombstones(), 0, "nothing left to detach");
        assert_eq!(idx.mutation_epoch(), 3, "no-op repair leaves the epoch");
    }

    #[test]
    fn add_in_grid_keeps_quantizer_incrementally() {
        let (data, idx) = small_index(300, 8, 94);
        let mut idx = idx;
        assert!(idx.quantizer().is_some());
        // a copy of a stored row is inside the trained box by construction
        let v = data.get(42).to_vec();
        let id = idx.add(&v);
        let sq = idx
            .quantizer()
            .expect("in-grid add keeps quantized search on");
        assert_eq!(sq.len(), idx.len(), "codebook grew with the index");
        let (hits, stats) = idx.search_quantized(&v, 2, 32, 4);
        assert!(stats.ndist_quant > 0, "traversal stays quantized");
        assert!(
            hits.iter().any(|h| h.id == id || h.id == 42),
            "appended point (or its duplicate) must be findable"
        );
    }

    #[test]
    fn repair_tombstones_detaches_dead_nodes_and_keeps_recall() {
        let data = synth::sift_like(1200, 12, 95);
        let mut idx = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(8).seed(95));
        let removed: Vec<u32> = (0..1200).step_by(5).map(|i| i as u32).collect();
        for &id in &removed {
            idx.remove(id);
        }
        idx.validate()
            .expect("pre-repair tombstoned graph is valid");
        let survivor_recall = |idx: &Hnsw| {
            let queries = synth::queries_near(&data, 30, 0.02, 96);
            let mut scratch = SearchScratch::with_capacity(idx.len());
            let mut total = 0.0;
            for qi in 0..queries.len() {
                let q = queries.get(qi);
                // survivor ground truth: top-10 live ids by exact distance
                let mut gt: Vec<Neighbor> = (0..1200u32)
                    .filter(|&id| idx.is_live(id))
                    .map(|id| Neighbor::new(id, Distance::L2.eval(q, data.get(id as usize))))
                    .collect();
                gt.sort_unstable();
                let gt: Vec<u32> = gt.iter().take(10).map(|n| n.id).collect();
                let (r, _) = idx.search_with_scratch(q, 10, 96, &mut scratch);
                total += r.iter().filter(|h| gt.contains(&h.id)).count() as f64 / 10.0;
            }
            total / queries.len() as f64
        };
        let pre = survivor_recall(&idx);
        assert!(pre >= 0.90, "pre-repair survivor recall too low: {pre}");
        let detached = idx.repair_tombstones();
        assert_eq!(detached, removed.len(), "every tombstone gets detached");
        idx.validate().expect("post-repair graph is valid");
        for &t in &removed {
            for layer in 0..=idx.level(t) as usize {
                assert!(
                    idx.links_of(t, layer).is_empty(),
                    "tombstone {t} still carries edges at layer {layer}"
                );
            }
        }
        let post = survivor_recall(&idx);
        assert!(post >= 0.90, "post-repair survivor recall too low: {post}");
    }

    #[test]
    fn validator_accepts_tombstones_pre_and_post_repair() {
        let (_, idx) = small_index(400, 8, 97);
        let mut idx = idx;
        for id in (0..400).step_by(7) {
            idx.remove(id);
        }
        idx.validate()
            .expect("lazy tombstones uphold every invariant");
        idx.repair_tombstones();
        idx.validate().expect("repaired graph upholds them too");
    }

    #[test]
    fn validator_rejects_tombstoned_entry_point() {
        let idx = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            tiny_points(3),
            vec![0, 0, 0],
            vec![vec![vec![1, 2]], vec![vec![0, 2]], vec![vec![0, 1]]],
            Some((0, 0)),
            Vec::new(),
            None,
        )
        .with_mutation_state(vec![true, false, false], 1);
        let err = idx.validate().expect_err("dead entry must be caught");
        assert!(err.contains("entry point 0 is tombstoned"), "{err}");
    }

    #[test]
    fn validator_rejects_live_orphan_but_tolerates_dead_one() {
        // node 2 is an island. Tombstoned it is legal post-repair residue;
        // live it is an unsearchable point and must be rejected.
        let fixture = |tombs: Vec<bool>| {
            Hnsw::from_parts(
                HnswConfig::with_m(4),
                Distance::L2,
                tiny_points(3),
                vec![0, 0, 0],
                vec![vec![vec![1]], vec![vec![0]], vec![vec![]]],
                Some((0, 0)),
                Vec::new(),
                None,
            )
            .with_mutation_state(tombs, 1)
        };
        fixture(vec![false, false, true])
            .validate()
            .expect("detached tombstone is legal");
        let err = fixture(vec![false, true, false])
            .validate()
            .expect_err("live island must be caught");
        assert!(err.contains("unreachable"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_tombstoned_entry_set_member() {
        let idx = Hnsw::from_parts(
            HnswConfig::with_m(4),
            Distance::L2,
            tiny_points(3),
            vec![1, 1, 0],
            vec![
                vec![vec![1, 2], vec![1]],
                vec![vec![0, 2], vec![0]],
                vec![vec![0, 1]],
            ],
            Some((0, 1)),
            vec![0, 1],
            None,
        )
        .with_mutation_state(vec![false, true, false], 1);
        let err = idx.validate().expect_err("dead member must be caught");
        assert!(err.contains("entry-set member 1 is tombstoned"), "{err}");
    }

    #[test]
    fn tombstoned_waypoints_still_route_searches() {
        // Two clusters bridged only through a node that gets tombstoned:
        // pre-repair the dead node keeps routing queries across the bridge.
        let (data, idx) = small_index(600, 12, 98);
        let mut idx = idx;
        let (ep, _) = idx.entry_snapshot().expect("non-empty");
        // tombstone the entry's entire layer-0 neighbourhood: every descent
        // now must pass through dead waypoints to leave the entry's basin
        let hood = idx.links_of(ep, 0);
        for &id in &hood {
            idx.remove(id);
        }
        idx.validate().expect("tombstoned neighbourhood is valid");
        let mut scratch = SearchScratch::with_capacity(idx.len());
        for i in (0..600).step_by(43) {
            if !idx.is_live(i as u32) {
                continue;
            }
            let (r, _) = idx.search_with_scratch(data.get(i), 1, 64, &mut scratch);
            assert_eq!(r[0].id, i as u32, "point {i} lost behind dead waypoints");
        }
    }
}
