/root/repo/target/debug/deps/fastann_bench-3bbff24a787ff73a.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libfastann_bench-3bbff24a787ff73a.rlib: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/libfastann_bench-3bbff24a787ff73a.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
