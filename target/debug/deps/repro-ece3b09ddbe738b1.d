/root/repo/target/debug/deps/repro-ece3b09ddbe738b1.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-ece3b09ddbe738b1: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
