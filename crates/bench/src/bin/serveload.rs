//! `serveload` — the load generator for the online serving runtime.
//! Emits one `BENCH_serve_<dataset>.json` per dataset with an open-loop
//! (seeded Poisson arrivals, two tenants, mixed deadlines) and a
//! closed-loop (fixed client population) leg, both driven entirely in
//! virtual time through [`fastann_serve::ServeRuntime`].
//!
//! ```text
//! serveload [--smoke] [--seed N] [--out DIR] [--metrics]
//!   --smoke    tiny synthetic dataset only (the CI smoke invocation)
//!   --seed     workload seed (default 42); same seed => byte-identical JSON
//!   --out      directory for the BENCH_serve_*.json files (default: .)
//!   --metrics  attach a fastann-obs registry to the runtime, embed its
//!              JSON snapshot in the BENCH file and write the Prometheus
//!              rendering next to it as METRICS_serve_<dataset>.prom
//! ```
//!
//! Every quantity in the report is virtual, so the file is a
//! reproducible artifact, not a host measurement: rerunning with the
//! same seed — at any thread count, on any machine — must produce the
//! same bytes, and `ci.sh` enforces exactly that with `cmp`.

use std::fmt::Write as _;

use fastann_core::{DistIndex, EngineConfig, Mutation, SearchOptions};
use fastann_data::quant::Sq8;
use fastann_data::{synth, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_obs::{Metrics, MetricsSnapshot};
use fastann_serve::{
    AdmissionPolicy, ClosedLoopSpec, ClosedRequest, Request, ServeConfig, ServeReport, ServeRuntime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Args {
    smoke: bool,
    seed: u64,
    out: String,
    metrics: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 42,
        out: ".".to_string(),
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed needs a value");
                args.seed = v.parse().expect("--seed must be a number");
            }
            "--out" => args.out = it.next().expect("--out needs a directory"),
            "--metrics" => args.metrics = true,
            other => {
                eprintln!("unknown argument {other:?} (try --smoke / --seed / --out / --metrics)");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Workload {
    name: &'static str,
    points: usize,
    dim: usize,
    open_requests: usize,
    open_rate_qps: f64,
    closed_clients: usize,
    closed_requests: usize,
}

const SMOKE: Workload = Workload {
    name: "SMOKE",
    points: 2_000,
    dim: 16,
    open_requests: 120,
    open_rate_qps: 20_000.0,
    closed_clients: 6,
    closed_requests: 60,
};

const SYNTHETIC: Workload = Workload {
    name: "synthetic",
    points: 20_000,
    dim: 32,
    open_requests: 2_000,
    open_rate_qps: 40_000.0,
    closed_clients: 16,
    closed_requests: 800,
};

const K: usize = 10;

/// Open-loop arrivals: a seeded Poisson process (exponential
/// inter-arrival gaps) over a pool of near-corpus queries, with ~25% of
/// the stream re-submitting an earlier query (cache food), two tenants,
/// and a 20 ms deadline on every fourth request.
fn open_workload(data: &VectorSet, w: &Workload, seed: u64) -> Vec<Request> {
    let pool = synth::queries_near(data, w.open_requests / 2 + 1, 0.02, seed ^ 0x9e37);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mean_gap_ns = 1e9 / w.open_rate_qps;
    let mut at = 0.0f64;
    let mut reqs = Vec::with_capacity(w.open_requests);
    for i in 0..w.open_requests {
        let u: f64 = rng.gen();
        at += -((1.0 - u).max(1e-12_f64)).ln() * mean_gap_ns;
        let reuse = rng.gen_bool(0.25) && i > 0;
        let qi = if reuse {
            rng.gen_range(0..(i / 2 + 1).min(pool.len()))
        } else {
            i % pool.len()
        };
        let mut r = Request::new(i as u64, at, pool.get(qi).to_vec(), K).tenant((i % 2) as u32);
        if i % 4 == 0 {
            r = r.deadline_ns(at + 2e7);
        }
        reqs.push(r);
    }
    reqs
}

fn emit(
    name: &str,
    out_dir: &str,
    open: &ServeReport,
    closed: &ServeReport,
    seed: u64,
    snap: Option<&MetricsSnapshot>,
) {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"dataset\": \"serve_{name}\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"k\": {K},");
    let _ = writeln!(s, "  \"open_loop\":");
    s.push_str(&open.to_json("  "));
    s.push_str(",\n");
    let _ = writeln!(s, "  \"closed_loop\":");
    s.push_str(&closed.to_json("  "));
    if let Some(snap) = snap {
        s.push_str(",\n");
        let _ = writeln!(s, "  \"metrics\":");
        s.push_str(&snap.to_json("  "));
    }
    s.push('\n');
    s.push_str("}\n");
    let path = format!("{out_dir}/BENCH_serve_{name}.json");
    std::fs::write(&path, s).expect("write BENCH_serve json");
    if let Some(snap) = snap {
        let prom = format!("{out_dir}/METRICS_serve_{name}.prom");
        std::fs::write(&prom, snap.to_prometheus()).expect("write METRICS_serve prom");
        println!("{prom}: {} series", snap.len());
    }
    println!(
        "{path}: open {:.0} qps (p99 {:.0} us, {:.1}% rejected, cache {:.0}% hit), \
         closed {:.0} qps over {} clients",
        open.throughput_qps,
        open.p99_ns / 1e3,
        open.rejection_rate() * 100.0,
        open.cache.hit_rate() * 100.0,
        closed.throughput_qps,
        closed.requests,
    );
}

fn run(w: &Workload, seed: u64, out_dir: &str, metrics: bool) {
    eprintln!(
        "serveload: {} ({} x {}, {} open + {} closed requests) ...",
        w.name, w.points, w.dim, w.open_requests, w.closed_requests
    );
    let data = synth::sift_like(w.points, w.dim, seed);
    let build = |s: u64| {
        DistIndex::build(
            &data,
            EngineConfig::new(8, 2)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(s))
                .with_seed(s),
        )
    };

    // open loop: Poisson arrivals against guarded admission
    let cfg = ServeConfig::new(SearchOptions::new(K))
        .with_batch(16, 150_000.0)
        .with_cache_capacity(256)
        .with_admission(AdmissionPolicy {
            tenant_rate_qps: w.open_rate_qps,
            tenant_burst: 32.0,
            max_queue_depth: 128,
        });
    let mut rt = ServeRuntime::new(build(seed), Sq8::encode(&data), cfg);
    // One registry spans both legs: the snapshot folds the serving-layer
    // series and the engine-side ones (router, HNSW, workers, merge) from
    // every dispatched batch, and is bit-identical at any thread count.
    let obs = metrics.then(Metrics::new);
    if let Some(m) = &obs {
        rt.set_metrics(m);
    }
    let open = rt.serve_open(open_workload(&data, w, seed)).report;

    // protocol sanity: the run must conserve requests and make progress
    assert_eq!(
        open.requests,
        open.completed + open.rejected_overloaded + open.rejected_deadline,
        "{}: open-loop outcomes must cover every request",
        w.name
    );
    assert!(
        open.throughput_qps > 0.0,
        "{}: open-loop throughput must be nonzero",
        w.name
    );

    // live-mutation leg: a deterministic churn slice (deletes + upserts)
    // through the runtime, so the metrics snapshot carries the mutation
    // series and the cache-epoch invalidation path runs end to end
    let dead: Vec<u32> = (0..w.points as u32).step_by(97).take(8).collect();
    let mut churn: Vec<Mutation> = dead
        .iter()
        .map(|&g| Mutation::Delete { global_id: g })
        .collect();
    let fresh_rows = synth::sift_like(4, w.dim, seed ^ 0x777);
    churn.extend(fresh_rows.iter().map(|v| Mutation::Upsert {
        global_id: None,
        vector: v.to_vec(),
    }));
    let mutated = rt.apply_mutations(churn);
    assert!(
        mutated
            .outcomes
            .iter()
            .all(fastann_core::MutationOutcome::effective),
        "{}: every churn mutation must apply",
        w.name
    );
    let probe = rt.serve_open(
        dead.iter()
            .enumerate()
            .map(|(i, &g)| Request::new(i as u64, 0.0, data.get(g as usize).to_vec(), K))
            .collect(),
    );
    for c in probe
        .outcomes
        .iter()
        .filter_map(fastann_serve::Outcome::completion)
    {
        assert!(
            c.results.iter().all(|n| !dead.contains(&n.id)),
            "{}: deleted id surfaced after churn",
            w.name
        );
    }

    // closed loop: a fixed client population, fresh runtime (and a
    // rebuilt index installed first, to exercise the epoch path)
    rt.install_index(build(seed ^ 0x5bd1));
    let pool = synth::queries_near(&data, w.closed_requests / 4 + 1, 0.02, seed ^ 0x51ed);
    let closed = rt
        .serve_closed(
            ClosedLoopSpec {
                clients: w.closed_clients,
                total_requests: w.closed_requests,
            },
            |id, client| ClosedRequest {
                query: pool.get(id as usize % pool.len()).to_vec(),
                k: K,
                tenant: (client % 2) as u32,
                deadline_rel_ns: f64::INFINITY,
            },
        )
        .report;
    assert_eq!(
        closed.requests, w.closed_requests as u64,
        "{}: closed loop must issue exactly the configured total",
        w.name
    );
    assert_eq!(
        closed.requests,
        closed.completed + closed.rejected_overloaded + closed.rejected_deadline,
        "{}: closed-loop outcomes must cover every request",
        w.name
    );
    assert!(
        closed.throughput_qps > 0.0,
        "{}: closed-loop throughput must be nonzero",
        w.name
    );

    let snap = obs.as_ref().map(Metrics::snapshot);
    emit(w.name, out_dir, &open, &closed, seed, snap.as_ref());
}

fn main() {
    let args = parse_args();
    if args.smoke {
        run(&SMOKE, args.seed, &args.out, args.metrics);
    } else {
        run(&SYNTHETIC, args.seed, &args.out, args.metrics);
    }
}
