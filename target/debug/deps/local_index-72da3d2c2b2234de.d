/root/repo/target/debug/deps/local_index-72da3d2c2b2234de.d: tests/local_index.rs

/root/repo/target/debug/deps/local_index-72da3d2c2b2234de: tests/local_index.rs

tests/local_index.rs:
