//! The adaptive replication controller: metrics-driven raises and decays
//! of per-partition replica counts.
//!
//! The controller closes the loop the engine's [`fastann_core::ReplicaMap`]
//! opens: it watches the `fastann_worker_service_ns{partition}` histogram
//! the engine already records, folds the per-partition service-time deltas
//! into a sliding *virtual-time* window, and when one partition's share of
//! the window exceeds the hot threshold it raises that partition's replica
//! count (bounded by the routing policy's `max` and by per-node memory
//! accounting via [`fastann_core::DistIndex::node_memory_bytes_for`]).
//! Partitions whose share falls below the cold threshold decay back toward
//! the policy base. Every input is virtual-time or counted-work arithmetic
//! read from a deterministic [`MetricsSnapshot`] — never wall clock — so
//! runs replay bit-identically at any `FASTANN_THREADS` setting.
//!
//! Raises and decays bump the map's generation (the epoch idiom): each
//! dispatched batch takes a snapshot of the map, so in-flight dispatch
//! stays consistent while later batches observe the new layout.

use std::collections::VecDeque;

use fastann_core::{DistIndex, ReplicaMap, RoutingPolicy};
use fastann_obs::MetricsSnapshot;

/// Tuning knobs of the [`ReplicaController`].
///
/// `#[non_exhaustive]`: construct with [`ControllerPolicy::new`] (or
/// `default()`) and refine with the `with_*` setters.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct ControllerPolicy {
    /// Sliding window length (virtual ns) over which per-partition
    /// service-time shares are computed.
    pub window_ns: f64,
    /// A partition whose share of the window's total service time exceeds
    /// this is *hot*: the controller raises its replica count (one step
    /// per observation).
    pub hot_share: f64,
    /// A raised partition whose share falls below this is *cold*: the
    /// controller decays it one step back toward the policy base.
    pub cold_share: f64,
    /// Per-node memory budget (bytes) a raise may not push any node past,
    /// checked with [`DistIndex::node_memory_bytes_for`];
    /// `usize::MAX` disables the bound.
    pub node_memory_budget_bytes: usize,
}

impl Default for ControllerPolicy {
    /// 5 ms window, hot above a 35 % share, cold below 5 %, no memory
    /// bound.
    fn default() -> Self {
        Self::new()
    }
}

impl ControllerPolicy {
    /// The default knobs (see [`ControllerPolicy::default`]).
    pub fn new() -> Self {
        Self {
            window_ns: 5e6,
            hot_share: 0.35,
            cold_share: 0.05,
            node_memory_budget_bytes: usize::MAX,
        }
    }

    /// Sets the sliding-window length (builder style).
    pub fn with_window_ns(mut self, window_ns: f64) -> Self {
        assert!(window_ns > 0.0, "window must be positive");
        self.window_ns = window_ns;
        self
    }

    /// Sets the hot/cold share thresholds (builder style).
    pub fn with_shares(mut self, hot: f64, cold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hot) && (0.0..=1.0).contains(&cold) && cold < hot,
            "need 0 <= cold < hot <= 1"
        );
        self.hot_share = hot;
        self.cold_share = cold;
        self
    }

    /// Sets the per-node memory budget in bytes (builder style).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.node_memory_budget_bytes = bytes;
        self
    }
}

/// What one [`ReplicaController::observe`] call changed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerAction {
    /// Partition whose replica count was raised by one, if any.
    pub raised: Option<usize>,
    /// Partition whose replica count was decayed by one, if any.
    pub decayed: Option<usize>,
}

/// The sliding-window replica controller. Owns the live [`ReplicaMap`];
/// the serving runtime snapshots it per dispatched batch and calls
/// [`ReplicaController::observe`] after each batch completes.
#[derive(Clone, Debug)]
pub struct ReplicaController {
    policy: ControllerPolicy,
    base: usize,
    max: usize,
    map: ReplicaMap,
    /// `(observed_at_ns, per-partition service-ns delta)` entries, oldest
    /// first; entries older than `window_ns` are dropped on observe.
    window: VecDeque<(f64, Vec<f64>)>,
    /// Last cumulative `fastann_worker_service_ns{partition}` sums, for
    /// delta computation.
    last_service: Vec<f64>,
    raises: u64,
    decays: u64,
}

impl ReplicaController {
    /// A controller for `n_partitions` partitions under the (adaptive)
    /// `routing` policy.
    ///
    /// # Panics
    /// Panics when `routing` is not adaptive ([`RoutingPolicy::is_adaptive`]).
    pub fn new(n_partitions: usize, routing: RoutingPolicy, policy: ControllerPolicy) -> Self {
        assert!(
            routing.is_adaptive(),
            "a replica controller needs an adaptive routing policy"
        );
        let base = routing.base_replicas();
        Self {
            policy,
            base,
            max: routing.max_replicas(),
            map: ReplicaMap::uniform(n_partitions, base),
            window: VecDeque::new(),
            last_service: vec![0.0; n_partitions],
            raises: 0,
            decays: 0,
        }
    }

    /// The live replica map (snapshot with `.clone()` before dispatch).
    pub fn map(&self) -> &ReplicaMap {
        &self.map
    }

    /// Total raises so far.
    pub fn raises(&self) -> u64 {
        self.raises
    }

    /// Total decays so far.
    pub fn decays(&self) -> u64 {
        self.decays
    }

    /// Grows the map (and delta baselines) to cover `n_partitions` —
    /// dynamic splits create partitions mid-run; new ones start at base.
    pub fn ensure_cover(&mut self, n_partitions: usize) {
        self.map.ensure_len(n_partitions, self.base);
        if self.last_service.len() < n_partitions {
            self.last_service.resize(n_partitions, 0.0);
        }
    }

    /// Folds one batch's metrics into the sliding window and applies at
    /// most one raise and one decay. `now_ns` is the batch's virtual
    /// completion time; `snap` is the registry snapshot *after* the batch
    /// (cumulative sums — the controller takes deltas internally).
    pub fn observe(
        &mut self,
        now_ns: f64,
        snap: &MetricsSnapshot,
        index: &DistIndex,
    ) -> ControllerAction {
        self.ensure_cover(index.n_partitions());
        let n = self.last_service.len();

        // per-partition service-time deltas since the previous observation
        let mut delta = vec![0.0f64; n];
        for (p, d) in delta.iter_mut().enumerate() {
            let label = p.to_string();
            let sum = snap
                .histogram("fastann_worker_service_ns", &[("partition", &label)])
                .map(|(_count, s)| s)
                .unwrap_or(0.0);
            let last = self.last_service[p];
            // counter-reset semantics: a sum below the baseline means the
            // registry was swapped — treat the whole new sum as the delta
            *d = if sum >= last { sum - last } else { sum };
            self.last_service[p] = sum;
        }
        self.window.push_back((now_ns, delta));
        while let Some((at, _)) = self.window.front() {
            if *at < now_ns - self.policy.window_ns {
                self.window.pop_front();
            } else {
                break;
            }
        }

        // shares over the window
        let mut totals = vec![0.0f64; n];
        for (_, d) in &self.window {
            for (t, v) in totals.iter_mut().zip(d.iter()) {
                *t += v;
            }
        }
        let total_all: f64 = totals.iter().sum();
        let mut action = ControllerAction::default();
        if total_all <= 0.0 {
            return action;
        }

        // raise the hottest eligible partition (ties: lowest id)
        let hottest = (0..n).max_by(|&a, &b| totals[a].total_cmp(&totals[b]));
        if let Some(h) = hottest {
            let share = totals[h] / total_all;
            if share > self.policy.hot_share && self.map.count(h) < self.max {
                let mut cand = self.map.counts().to_vec();
                cand[h] += 1;
                let fits = self.index_memory_fits(index, &cand);
                if fits && self.map.set_count(h, cand[h]) {
                    self.raises += 1;
                    action.raised = Some(h);
                }
            }
        }

        // decay the coldest raised partition (ties: lowest id), never the
        // one just raised
        let coldest = (0..n)
            .filter(|&p| self.map.count(p) > self.base && action.raised != Some(p))
            .min_by(|&a, &b| totals[a].total_cmp(&totals[b]));
        if let Some(c) = coldest {
            let share = totals[c] / total_all;
            if share < self.policy.cold_share && self.map.set_count(c, self.map.count(c) - 1) {
                self.decays += 1;
                action.decayed = Some(c);
            }
        }
        action
    }

    /// `true` when every node stays within the memory budget under `cand`.
    fn index_memory_fits(&self, index: &DistIndex, cand: &[usize]) -> bool {
        if self.policy.node_memory_budget_bytes == usize::MAX {
            return true;
        }
        index
            .node_memory_bytes_for(cand)
            .iter()
            .all(|&b| b <= self.policy.node_memory_budget_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_core::EngineConfig;
    use fastann_data::synth;
    use fastann_obs::{buckets, Metrics};

    fn po2(base: usize, max: usize) -> RoutingPolicy {
        RoutingPolicy::PowerOfTwo { base, max }
    }

    fn small_index() -> DistIndex {
        let data = synth::sift_like(600, 8, 3);
        DistIndex::build(&data, EngineConfig::new(4, 2).with_seed(3))
    }

    fn record(m: &Metrics, part: usize, ns: f64) {
        let label = part.to_string();
        m.observe(
            "fastann_worker_service_ns",
            &[("partition", &label)],
            ns,
            buckets::NS,
        );
    }

    #[test]
    #[should_panic]
    fn static_policy_rejected() {
        let _ = ReplicaController::new(4, RoutingPolicy::Static(2), ControllerPolicy::new());
    }

    #[test]
    fn hot_partition_is_raised_then_decays_when_cold() {
        let index = small_index();
        let m = Metrics::new();
        let mut c = ReplicaController::new(4, po2(1, 3), ControllerPolicy::new());
        // partition 2 takes 90% of the service time
        record(&m, 2, 9_000.0);
        record(&m, 0, 1_000.0);
        let act = c.observe(1e6, &m.snapshot(), &index);
        assert_eq!(act.raised, Some(2));
        assert_eq!(c.map().count(2), 2);
        assert_eq!(c.map().generation(), 1);
        assert_eq!(c.raises(), 1);

        // traffic moves entirely to partition 0; after the window slides
        // past the hot samples, partition 2 decays
        record(&m, 0, 50_000.0);
        let act = c.observe(1e6 + 2.0 * c.policy.window_ns, &m.snapshot(), &index);
        assert_eq!(act.decayed, Some(2));
        assert_eq!(c.map().count(2), 1);
        assert_eq!(c.decays(), 1);
    }

    #[test]
    fn raise_is_capped_at_policy_max() {
        let index = small_index();
        let m = Metrics::new();
        let mut c = ReplicaController::new(4, po2(1, 2), ControllerPolicy::new());
        record(&m, 1, 10_000.0);
        let a1 = c.observe(1e5, &m.snapshot(), &index);
        assert_eq!(a1.raised, Some(1));
        record(&m, 1, 10_000.0);
        let a2 = c.observe(2e5, &m.snapshot(), &index);
        assert_eq!(a2.raised, None, "already at max=2");
        assert_eq!(c.map().count(1), 2);
    }

    #[test]
    fn memory_budget_blocks_a_raise() {
        // one core per node: a raise spills the partition's shard onto a
        // fresh node, so the budget has something to veto
        let data = synth::sift_like(600, 8, 3);
        let index = DistIndex::build(&data, EngineConfig::new(4, 1).with_seed(3));
        let bytes_now = index.node_memory_bytes(1).into_iter().max().unwrap_or(0);
        let m = Metrics::new();
        // budget exactly at the r=1 footprint: any raise would exceed it
        let mut c = ReplicaController::new(
            4,
            po2(1, 3),
            ControllerPolicy::new().with_memory_budget(bytes_now),
        );
        record(&m, 0, 10_000.0);
        let act = c.observe(1e5, &m.snapshot(), &index);
        assert_eq!(act.raised, None, "budget must veto the raise");
        assert_eq!(c.map().count(0), 1);
        assert_eq!(c.map().generation(), 0);
    }

    #[test]
    fn observe_without_traffic_is_inert() {
        let index = small_index();
        let m = Metrics::new();
        let mut c = ReplicaController::new(4, po2(1, 3), ControllerPolicy::new());
        let act = c.observe(1e5, &m.snapshot(), &index);
        assert_eq!(act, ControllerAction::default());
        assert_eq!(c.map().generation(), 0);
    }

    #[test]
    fn ensure_cover_grows_for_splits() {
        let mut c = ReplicaController::new(2, po2(1, 3), ControllerPolicy::new());
        c.ensure_cover(5);
        assert_eq!(c.map().len(), 5);
        assert_eq!(c.map().count(4), 1);
    }
}
