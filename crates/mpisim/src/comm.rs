//! Sub-communicators and MPI-style collectives.
//!
//! A [`Comm`] names an ordered group of global ranks. Collectives are
//! implemented over the point-to-point layer so their virtual-time costs
//! emerge from the network model: broadcast uses a binomial tree
//! (`O(log P)` rounds), gather is rooted and linear (the root pays a
//! receive overhead per member — exactly the master-side bottleneck the
//! paper's one-sided optimisation removes), and `alltoallv` exchanges
//! `P-1` point-to-point messages per member as in the paper's data shuffle.
//!
//! **SPMD discipline:** every member of a communicator must call the same
//! collectives in the same order (the usual MPI contract). Tags used by
//! collectives have bit 63 set; user point-to-point tags must stay below
//! `1 << 63`.
//!
//! **Fault injection:** collective traffic is exempt from the cluster's
//! [`crate::FaultPlan`] — the bit-63 flag doubles as the exemption marker
//! in [`crate::FaultPlan::fate`]. Collectives are the simulator's
//! coordination substrate; a faulted barrier would deadlock the harness
//! rather than exercise the program under test (see `fault.rs` for the
//! fault model's scope).

use std::cell::Cell;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use crate::rank::Rank;
use crate::wire;

/// Reduction operator for the numeric collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of all contributions.
    Sum,
    /// Maximum contribution.
    Max,
    /// Minimum contribution.
    Min,
}

impl ReduceOp {
    fn fold_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    fn fold_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

use crate::rank::COLL_FLAG;

const OP_BCAST: u8 = 1;
const OP_GATHER: u8 = 2;
const OP_ALLTOALLV: u8 = 3;
const OP_BARRIER_UP: u8 = 4;
const OP_BARRIER_DOWN: u8 = 5;

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 31)
}

/// An ordered group of global ranks supporting collective operations.
///
/// Cheap to clone; each rank holds its own copy (the collective sequence
/// number advances locally but identically on every member, keeping tags
/// aligned).
#[derive(Clone, Debug)]
pub struct Comm {
    id: u64,
    group: Arc<Vec<usize>>,
    seq: Cell<u64>,
}

impl Comm {
    /// The communicator spanning ranks `0..size`.
    pub fn world(size: usize) -> Self {
        Self {
            id: 0,
            group: Arc::new((0..size).collect()),
            seq: Cell::new(0),
        }
    }

    /// A communicator over an explicit list of global ranks (must be the
    /// same list, in the same order, on every member).
    pub fn from_ranks(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "empty communicator");
        let mut id = 0x636f_6d6d; // "comm"
        for &r in &ranks {
            id = mix(id, r as u64);
        }
        Self {
            id,
            group: Arc::new(ranks),
            seq: Cell::new(0),
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Global ranks of the members, in index order.
    pub fn ranks(&self) -> &[usize] {
        &self.group
    }

    /// Member index of the calling rank.
    ///
    /// # Panics
    /// Panics if the rank is not a member.
    pub fn my_index(&self, rank: &Rank) -> usize {
        self.group
            .iter()
            .position(|&r| r == rank.rank())
            .unwrap_or_else(|| panic!("rank {} is not in this communicator", rank.rank()))
    }

    /// `true` when the calling rank belongs to the group.
    pub fn contains(&self, rank: &Rank) -> bool {
        self.group.contains(&rank.rank())
    }

    /// Derives the sub-communicator over member indices `lo..hi`. Every
    /// member of the parent must call `subset` at the same program point
    /// (it advances the parent's collective sequence); members outside
    /// `lo..hi` may drop the returned communicator.
    pub fn subset(&self, lo: usize, hi: usize) -> Comm {
        assert!(lo < hi && hi <= self.size(), "bad subset bounds {lo}..{hi}");
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        let id = mix(mix(self.id, seq), ((lo as u64) << 32) | hi as u64);
        Comm {
            id,
            group: Arc::new(self.group[lo..hi].to_vec()),
            seq: Cell::new(0),
        }
    }

    fn next_tag(&self, op: u8) -> u64 {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        COLL_FLAG | ((self.id & 0xFF_FFFF) << 36) | ((seq & 0xFFF_FFFF) << 8) | op as u64
    }

    /// Barrier: gather-to-0 then broadcast. All members leave with clocks at
    /// least the latest member's arrival time.
    pub fn barrier(&self, rank: &mut Rank) {
        let up = self.next_tag(OP_BARRIER_UP);
        let down = self.next_tag(OP_BARRIER_DOWN);
        let me = self.my_index(rank);
        if me == 0 {
            for i in 1..self.size() {
                let _ = rank.recv(Some(self.group[i]), Some(up));
            }
            for i in 1..self.size() {
                rank.send_bytes(self.group[i], down, Bytes::new());
            }
        } else {
            rank.send_bytes(self.group[0], up, Bytes::new());
            let _ = rank.recv(Some(self.group[0]), Some(down));
        }
    }

    /// Binomial-tree broadcast from member index `root`. The root passes
    /// `Some(data)`; everyone returns the payload.
    pub fn bcast(&self, rank: &mut Rank, root: usize, data: Option<Bytes>) -> Bytes {
        assert!(root < self.size(), "bcast root out of range");
        let tag = self.next_tag(OP_BCAST);
        let size = self.size();
        let me = self.my_index(rank);
        let rel = (me + size - root) % size;
        let mut data = if rel == 0 {
            Some(data.expect("bcast root must supply data"))
        } else {
            data // ignored on non-roots
        };
        let mut mask = 1usize;
        if rel != 0 {
            while mask < size {
                if rel & mask != 0 {
                    let src = self.group[(rel - mask + root) % size];
                    data = Some(rank.recv(Some(src), Some(tag)).payload);
                    break;
                }
                mask <<= 1;
            }
        } else {
            while mask < size {
                mask <<= 1;
            }
        }
        let payload = data.expect("bcast data present after receive phase");
        let mut m = mask >> 1;
        while m > 0 {
            if rel & m == 0 && rel + m < size {
                let dst = self.group[(rel + m + root) % size];
                rank.send_bytes(dst, tag, payload.clone());
            }
            m >>= 1;
        }
        payload
    }

    /// Rooted gather: member `root` returns all contributions indexed by
    /// member; others return `None`.
    pub fn gather(&self, rank: &mut Rank, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        assert!(root < self.size(), "gather root out of range");
        let tag = self.next_tag(OP_GATHER);
        let me = self.my_index(rank);
        if me == root {
            let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
            out[me] = data;
            for (i, slot) in out.iter_mut().enumerate() {
                if i == root {
                    continue;
                }
                *slot = rank.recv(Some(self.group[i]), Some(tag)).payload;
            }
            Some(out)
        } else {
            rank.send_bytes(self.group[root], tag, data);
            None
        }
    }

    /// All-gather: every member returns every contribution (gather to 0,
    /// concatenate with length prefixes, broadcast, split).
    pub fn all_gather(&self, rank: &mut Rank, data: Bytes) -> Vec<Bytes> {
        let gathered = self.gather(rank, 0, data);
        let packed = if self.my_index(rank) == 0 {
            let parts = gathered.expect("root has gather result");
            let mut buf = BytesMut::new();
            wire::put_u32(&mut buf, parts.len() as u32);
            for p in &parts {
                wire::put_bytes(&mut buf, p);
            }
            Some(buf.freeze())
        } else {
            None
        };
        let packed = self.bcast(rank, 0, packed);
        let mut cur = packed;
        let n = wire::get_u32(&mut cur) as usize;
        (0..n).map(|_| wire::get_bytes(&mut cur)).collect()
    }

    /// Rooted reduction of one `f64` per member.
    pub fn reduce_f64(&self, rank: &mut Rank, root: usize, v: f64, op: ReduceOp) -> Option<f64> {
        let mut buf = BytesMut::with_capacity(8);
        wire::put_f64(&mut buf, v);
        let parts = self.gather(rank, root, buf.freeze())?;
        let mut acc = None;
        for mut p in parts {
            let x = wire::get_f64(&mut p);
            acc = Some(match acc {
                None => x,
                Some(a) => op.fold_f64(a, x),
            });
        }
        acc
    }

    /// All-reduce of one `f64` per member.
    pub fn allreduce_f64(&self, rank: &mut Rank, v: f64, op: ReduceOp) -> f64 {
        let r = self.reduce_f64(rank, 0, v, op);
        let packed = r.map(|x| {
            let mut b = BytesMut::with_capacity(8);
            wire::put_f64(&mut b, x);
            b.freeze()
        });
        let mut out = self.bcast(rank, 0, packed);
        wire::get_f64(&mut out)
    }

    /// All-reduce of one `u64` per member.
    pub fn allreduce_u64(&self, rank: &mut Rank, v: u64, op: ReduceOp) -> u64 {
        let mut buf = BytesMut::with_capacity(8);
        wire::put_u64(&mut buf, v);
        let parts = self.gather(rank, 0, buf.freeze());
        let packed = parts.map(|ps| {
            let mut acc: Option<u64> = None;
            for mut p in ps {
                let x = wire::get_u64(&mut p);
                acc = Some(match acc {
                    None => x,
                    Some(a) => op.fold_u64(a, x),
                });
            }
            let mut b = BytesMut::with_capacity(8);
            wire::put_u64(&mut b, acc.expect("non-empty communicator"));
            b.freeze()
        });
        let mut out = self.bcast(rank, 0, packed);
        wire::get_u64(&mut out)
    }

    /// Personalised all-to-all (`MPI_Alltoallv`): `data[j]` is delivered to
    /// member `j`; returns what every member sent to the caller. This is
    /// the primitive the paper's distributed VP-tree construction uses to
    /// shuffle points between process halves.
    pub fn alltoallv(&self, rank: &mut Rank, data: Vec<Bytes>) -> Vec<Bytes> {
        assert_eq!(
            data.len(),
            self.size(),
            "alltoallv needs one buffer per member"
        );
        let tag = self.next_tag(OP_ALLTOALLV);
        let me = self.my_index(rank);
        let mut out: Vec<Bytes> = vec![Bytes::new(); self.size()];
        for (j, payload) in data.into_iter().enumerate() {
            if j == me {
                out[j] = payload;
            } else {
                rank.send_bytes(self.group[j], tag, payload);
            }
        }
        for (j, slot) in out.iter_mut().enumerate() {
            if j != me {
                *slot = rank.recv(Some(self.group[j]), Some(tag)).payload;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, SimConfig};

    #[test]
    fn bcast_delivers_to_all() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let out = Cluster::new(SimConfig::new(n)).run(|rank| {
                let comm = rank.world();
                let data = if rank.rank() == 0 {
                    Some(Bytes::from_static(b"payload"))
                } else {
                    None
                };
                let got = comm.bcast(rank, 0, data);
                got.to_vec()
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(v.as_slice(), b"payload", "n={n} rank {i}");
            }
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        let out = Cluster::new(SimConfig::new(6)).run(|rank| {
            let comm = rank.world();
            let data = if comm.my_index(rank) == 4 {
                Some(Bytes::from_static(b"r4"))
            } else {
                None
            };
            comm.bcast(rank, 4, data).to_vec()
        });
        assert!(out.iter().all(|v| v.as_slice() == b"r4"));
    }

    #[test]
    fn gather_collects_in_member_order() {
        let out = Cluster::new(SimConfig::new(5)).run(|rank| {
            let comm = rank.world();
            let mine = Bytes::from(vec![rank.rank() as u8]);
            comm.gather(rank, 2, mine)
        });
        for (i, o) in out.iter().enumerate() {
            if i == 2 {
                let parts = o.as_ref().expect("root gets data");
                let vals: Vec<u8> = parts.iter().map(|b| b[0]).collect();
                assert_eq!(vals, vec![0, 1, 2, 3, 4]);
            } else {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn all_gather_everyone_sees_everything() {
        let out = Cluster::new(SimConfig::new(4)).run(|rank| {
            let comm = rank.world();
            let mine = Bytes::from(vec![rank.rank() as u8 + 10]);
            let all = comm.all_gather(rank, mine);
            all.iter().map(|b| b[0]).collect::<Vec<u8>>()
        });
        for o in out {
            assert_eq!(o, vec![10, 11, 12, 13]);
        }
    }

    #[test]
    fn reductions() {
        let out = Cluster::new(SimConfig::new(4)).run(|rank| {
            let comm = rank.world();
            let s = comm.allreduce_f64(rank, rank.rank() as f64, ReduceOp::Sum);
            let mx = comm.allreduce_f64(rank, rank.rank() as f64, ReduceOp::Max);
            let mn = comm.allreduce_u64(rank, rank.rank() as u64 + 5, ReduceOp::Min);
            (s, mx, mn)
        });
        for (s, mx, mn) in out {
            assert_eq!(s, 6.0);
            assert_eq!(mx, 3.0);
            assert_eq!(mn, 5);
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let out = Cluster::new(SimConfig::new(3)).run(|rank| {
            let comm = rank.world();
            let me = rank.rank() as u8;
            // member i sends [i, j] to member j
            let data: Vec<Bytes> = (0..3u8).map(|j| Bytes::from(vec![me, j])).collect();
            let recv = comm.alltoallv(rank, data);
            recv.iter().map(|b| (b[0], b[1])).collect::<Vec<_>>()
        });
        for (j, row) in out.iter().enumerate() {
            for (i, &(src, dst)) in row.iter().enumerate() {
                assert_eq!(src as usize, i, "payload source");
                assert_eq!(dst as usize, j, "payload destination");
            }
        }
    }

    #[test]
    fn barrier_synchronises_clocks() {
        let out = Cluster::new(SimConfig::new(4)).run(|rank| {
            let comm = rank.world();
            if rank.rank() == 3 {
                rank.charge(1_000_000.0); // slow rank
            }
            comm.barrier(rank);
            rank.now()
        });
        for &t in &out {
            assert!(
                t >= 1_000_000.0,
                "clock {t} not synchronised past slowest rank"
            );
        }
    }

    #[test]
    fn subset_halves_work_independently() {
        let out = Cluster::new(SimConfig::new(8)).run(|rank| {
            let world = rank.world();
            let me = world.my_index(rank);
            let half = if me < 4 {
                world.subset(0, 4)
            } else {
                world.subset(4, 8)
            };
            // NB: both halves call subset once; the two calls above are the
            // same program point per SPMD member.

            half.allreduce_u64(rank, rank.rank() as u64, ReduceOp::Sum)
        });
        assert_eq!(out[0], 1 + 2 + 3);
        assert_eq!(out[7], 4 + 5 + 6 + 7);
    }

    #[test]
    fn recursive_halving_to_singletons() {
        let out = Cluster::new(SimConfig::new(8)).run(|rank| {
            let mut comm = rank.world();
            let mut depth = 0;
            while comm.size() > 1 {
                let me = comm.my_index(rank);
                let mid = comm.size() / 2;
                comm = if me < mid {
                    comm.subset(0, mid)
                } else {
                    comm.subset(mid, comm.size())
                };
                depth += 1;
            }
            depth
        });
        assert!(out.iter().all(|&d| d == 3));
    }

    #[test]
    fn single_member_collectives_are_noop() {
        let out = Cluster::new(SimConfig::new(1)).run(|rank| {
            let comm = rank.world();
            comm.barrier(rank);
            let b = comm.bcast(rank, 0, Some(Bytes::from_static(b"x")));
            let g = comm
                .gather(rank, 0, Bytes::from_static(b"y"))
                .expect("root rank receives the gather");
            let s = comm.allreduce_f64(rank, 2.5, ReduceOp::Sum);
            (b.to_vec(), g.len(), s)
        });
        assert_eq!(out[0].0, b"x".to_vec());
        assert_eq!(out[0].1, 1);
        assert_eq!(out[0].2, 2.5);
    }

    #[test]
    #[should_panic]
    fn nonmember_index_panics() {
        Cluster::new(SimConfig::new(4)).run(|rank| {
            let world = rank.world();
            let sub = world.subset(0, 2);
            // ranks 2,3 are not members; asking for their index must panic
            // (members 0,1 succeed, so the panic provably comes from 2,3)
            let _ = sub.my_index(rank);
        });
    }
}
