//! Synthetic dataset generators.
//!
//! Two families, mirroring the paper's Table I:
//!
//! * [`mdcgen`] — a from-scratch re-implementation of the MDCGen-style
//!   multidimensional cluster generator (Iglesias et al., J. Classification
//!   2019) that the paper used for SYN_1M and SYN_10M: `k` clusters with
//!   Gaussian or uniform intra-cluster distributions, outlier injection, and
//!   query sets drawn from a single cluster with a compactness factor.
//! * [`descriptors`] — image-descriptor-shaped generators standing in for
//!   the real corpora: [`sift_like`] (ANN_SIFT1B), [`deep_like`] (DEEP1B)
//!   and [`gist_like`] (ANN_GIST1M). The real files are billion-scale
//!   downloads; these preserve dimensionality, value range and cluster
//!   structure, which is what the partitioning and search behaviour depend
//!   on.
//!
//! All generators are deterministic given a seed.

/// Image-descriptor-shaped generators (SIFT / DEEP / GIST stand-ins).
pub mod descriptors;
/// MDCGen-style multidimensional cluster generator.
pub mod mdcgen;

pub use descriptors::{deep_like, gist_like, queries_near, sift_like};
pub use mdcgen::{MdcConfig, MdcDataset, Spread};

use rand::rngs::SmallRng;
use rand::Rng;

/// Draws one standard normal sample using the Box–Muller transform.
///
/// We deliberately avoid a `rand_distr` dependency: two lines of Box–Muller
/// keep the dependency set to the approved list.
#[inline]
pub(crate) fn normal(rng: &mut SmallRng) -> f32 {
    // Avoid ln(0); u1 in (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Fills `out` with i.i.d. normal samples with the given mean and standard
/// deviation.
pub(crate) fn fill_normal(rng: &mut SmallRng, out: &mut [f32], mean: f32, std: f32) {
    for x in out.iter_mut() {
        *x = mean + std * normal(rng);
    }
}

/// Fills `out` with i.i.d. uniform samples in `[lo, hi)`.
pub(crate) fn fill_uniform(rng: &mut SmallRng, out: &mut [f32], lo: f32, hi: f32) {
    for x in out.iter_mut() {
        *x = rng.gen_range(lo..hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0f32; 1000];
        fill_uniform(&mut rng, &mut buf, -2.0, 3.0);
        assert!(buf.iter().all(|&x| (-2.0..3.0).contains(&x)));
        // spread actually covers the range
        let min = buf.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = buf.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(min < -1.0 && max > 2.0);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = sift_like(100, 16, 5);
        let b = sift_like(100, 16, 5);
        assert_eq!(a, b);
        let c = sift_like(100, 16, 6);
        assert_ne!(a, c);
    }
}
