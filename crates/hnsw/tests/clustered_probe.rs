//! Ad-hoc probe of exact vs quantized search quality on clustered data.
//! Run with `cargo test -p fastann-hnsw --release --test clustered_probe -- --ignored --nocapture`.

use fastann_data::synth::mdcgen;
use fastann_data::{ground_truth, Distance};
use fastann_hnsw::{Hnsw, HnswConfig, SearchScratch};

#[test]
#[ignore]
fn exact_vs_quantized_on_mdcgen() {
    let n = 32_000;
    let ds = mdcgen::generate(&mdcgen::MdcConfig {
        n_points: n,
        dim: 512,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: mdcgen::Spread::Mixed,
        seed: 0x517,
    });
    let queries = ds.queries_from_cluster(100, 3, 0.01, 0x518);
    let data = ds.points;
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);

    let index = Hnsw::build(
        data.clone(),
        Distance::L2,
        HnswConfig::with_m(16).ef_construction(100).seed(7),
    );
    let mut scratch = SearchScratch::with_capacity(index.len());
    let mut ex = Vec::new();
    let mut qu = Vec::new();
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        ex.push(index.search_with_scratch(q, 10, 64, &mut scratch).0);
        qu.push(
            index
                .search_quantized_with_scratch(q, 10, 64, 3, &mut scratch)
                .0,
        );
    }
    let rex = ground_truth::recall_at_k(&ex, &gt, 10).mean;
    let rqu = ground_truth::recall_at_k(&qu, &gt, 10).mean;
    let mean = |rs: &Vec<Vec<fastann_data::Neighbor>>| {
        rs.iter()
            .flat_map(|r| r.iter().map(|n| n.dist as f64))
            .sum::<f64>()
            / (rs.len() * 10) as f64
    };
    println!(
        "exact recall {rex:.3} (mean dist {:.5}), quantized recall {rqu:.3} (mean dist {:.5}), gt mean {:.5}",
        mean(&ex),
        mean(&qu),
        mean(&gt.iter().map(|r| r.to_vec()).collect())
    );
    println!(
        "q0 exact ids  {:?}",
        ex[0].iter().map(|n| n.id).collect::<Vec<_>>()
    );
    println!(
        "q0 exact dist {:?}",
        ex[0].iter().map(|n| n.dist).collect::<Vec<_>>()
    );
    println!(
        "q0 quant ids  {:?}",
        qu[0].iter().map(|n| n.id).collect::<Vec<_>>()
    );
    println!(
        "q0 quant dist {:?}",
        qu[0].iter().map(|n| n.dist).collect::<Vec<_>>()
    );
    println!(
        "q0 gt ids     {:?}",
        gt[0].iter().map(|n| n.id).collect::<Vec<_>>()
    );
    println!(
        "q0 gt dist    {:?}",
        gt[0].iter().map(|n| n.dist).collect::<Vec<_>>()
    );
}
