//! The workspace must lint clean against its own rules — this is the
//! same check `ci.sh` runs via `fastann-check lint`, kept as a test so
//! `cargo test` alone catches regressions.

use std::path::PathBuf;

use fastann_check::lint;

#[test]
fn workspace_lint_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint::run(&root).expect("lint pass runs");
    assert!(
        report.files_scanned > 20,
        "workspace scan found too few files"
    );
    assert!(
        report.is_clean(),
        "workspace lint violations:\n{}",
        report.render()
    );
    assert!(
        report.unused_allowlist.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allowlist
    );
}
