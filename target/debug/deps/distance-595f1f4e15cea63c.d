/root/repo/target/debug/deps/distance-595f1f4e15cea63c.d: crates/bench/benches/distance.rs Cargo.toml

/root/repo/target/debug/deps/libdistance-595f1f4e15cea63c.rmeta: crates/bench/benches/distance.rs Cargo.toml

crates/bench/benches/distance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
