//! Virtual-clock event source: the deterministic discrete-event substrate
//! online runtimes (e.g. `fastann-serve`) are driven by.
//!
//! The cluster simulator advances per-rank clocks implicitly through
//! message timestamps; a *serving* runtime instead needs an explicit
//! event loop — request arrivals, batch timers — ordered by virtual time.
//! [`EventQueue`] provides that ordering with a deterministic tie-break
//! (insertion sequence), and [`VClock`] is the monotonic read side: time
//! only moves forward, no matter what timestamps events carry.
//!
//! Determinism contract: popping order depends only on the sequence of
//! `push` calls and their timestamps — never on heap internals, hash
//! state, or host scheduling — so a simulation replayed from the same
//! inputs pops the same events in the same order.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A monotonic virtual clock in nanoseconds (`f64`, like the rank clocks).
#[derive(Clone, Copy, Debug, Default)]
pub struct VClock {
    now: f64,
}

impl VClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances to `t` if `t` is later than the current time (monotonic:
    /// an event carrying an older timestamp never rewinds the clock).
    /// Returns the clock value after the advance.
    #[inline]
    pub fn advance_to(&mut self, t: f64) -> f64 {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

/// One scheduled event: ordered by `(at, seq)`, payload excluded.
struct Ev<T> {
    at: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Ev<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at.to_bits() == other.at.to_bits() && self.seq == other.seq
    }
}

impl<T> Eq for Ev<T> {}

impl<T> Ord for Ev<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at
            .total_cmp(&other.at)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl<T> PartialOrd for Ev<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic virtual-time event queue.
///
/// Events pop in ascending timestamp order; events sharing a timestamp pop
/// in insertion order (first pushed, first popped). Timestamps are ordered
/// with `f64::total_cmp`, so even NaN timestamps (sorted last) cannot make
/// two replays disagree.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Ev<T>>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at virtual time `at` (nanoseconds).
    pub fn push(&mut self, at: f64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Ev { at, seq, payload }));
    }

    /// Removes and returns the earliest event as `(at, payload)`; `None`
    /// when the queue is empty.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|Reverse(ev)| (ev.at, ev.payload))
    }

    /// Timestamp of the earliest event without removing it.
    pub fn peek_at(&self) -> Option<f64> {
        self.heap.peek().map(|Reverse(ev)| ev.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30.0, "c");
        q.push(10.0, "a");
        q.push(20.0, "b");
        assert_eq!(q.peek_at(), Some(10.0));
        assert_eq!(q.pop(), Some((10.0, "a")));
        assert_eq!(q.pop(), Some((20.0, "b")));
        assert_eq!(q.pop(), Some((30.0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.push(7.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_stay_deterministic() {
        // pushing while popping (the serving loop schedules timers and
        // follow-up arrivals mid-drain) keeps the (time, seq) order
        let mut q = EventQueue::new();
        q.push(1.0, 1u32);
        q.push(5.0, 5);
        assert_eq!(q.pop(), Some((1.0, 1)));
        q.push(3.0, 3);
        q.push(5.0, 50); // later insertion, same time as the earlier 5
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), Some((5.0, 5)));
        assert_eq!(q.pop(), Some((5.0, 50)));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = VClock::new();
        assert_eq!(c.now(), 0.0);
        assert_eq!(c.advance_to(10.0), 10.0);
        assert_eq!(c.advance_to(5.0), 10.0, "never rewinds");
        assert_eq!(c.advance_to(10.0), 10.0);
        assert_eq!(c.advance_to(11.5), 11.5);
        assert_eq!(c.now(), 11.5);
    }

    #[test]
    fn nan_timestamps_sort_last_not_nondeterministically() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, "nan");
        q.push(1e18, "huge");
        assert_eq!(q.pop().map(|(_, p)| p), Some("huge"));
        assert_eq!(q.pop().map(|(_, p)| p), Some("nan"));
    }
}
