/root/repo/target/debug/deps/baselines-979c710c55a0f822.d: tests/baselines.rs

/root/repo/target/debug/deps/baselines-979c710c55a0f822: tests/baselines.rs

tests/baselines.rs:
