//! Per-rank execution context: virtual clock, point-to-point messaging,
//! compute charging, and accounting.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::cluster::Shared;
use crate::comm::Comm;
use crate::fault::Fate;
use crate::vthreads::SchedPerturb;

/// A message delivered to a rank's mailbox.
#[derive(Clone, Debug)]
pub struct Msg {
    /// Global rank of the sender.
    pub src: usize,
    /// User tag (bit 63 is reserved for collectives).
    pub tag: u64,
    /// Payload bytes.
    pub payload: Bytes,
    /// Sender virtual time at which the send was posted (ns).
    pub sent_at: f64,
    /// Virtual time at which the message reaches the receiver (ns).
    pub arrival: f64,
}

/// One rank's mailbox.
#[derive(Default)]
pub(crate) struct Mailbox {
    pub(crate) queue: Mutex<VecDeque<Msg>>,
    pub(crate) cv: Condvar,
}

/// Accounting for one rank's virtual activity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankStats {
    /// Modelled compute time charged (ns).
    pub compute_ns: f64,
    /// Time spent blocked on message arrivals (receiver clock advanced to
    /// meet arrivals), ns.
    pub wait_ns: f64,
    /// CPU overhead of posting sends, ns.
    pub send_cpu_ns: f64,
    /// CPU overhead of completing receives, ns.
    pub recv_cpu_ns: f64,
    /// CPU overhead of origin-side RMA operations, ns.
    pub rma_cpu_ns: f64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// One-sided operations issued.
    pub rma_ops: u64,
    /// Sends suppressed by fault injection (dropped rules or a crashed
    /// sender). Counted within `msgs_sent`.
    pub msgs_dropped: u64,
    /// Sends duplicated by fault injection.
    pub msgs_duplicated: u64,
    /// Virtual time lost to injected stalls, ns.
    pub stall_ns: f64,
}

impl RankStats {
    /// Total accounted virtual time (compute + communication overheads +
    /// waits).
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.wait_ns + self.send_cpu_ns + self.recv_cpu_ns + self.rma_cpu_ns
    }
}

/// The execution context handed to each simulated rank.
pub struct Rank {
    pub(crate) rank: usize,
    pub(crate) shared: Arc<Shared>,
    pub(crate) clock: f64,
    pub(crate) stats: RankStats,
    /// Crash point from the fault plan, cached for cheap checks.
    crash_at: Option<f64>,
    /// Pending one-shot stall `(at_ns, dur_ns)`; taken when it fires.
    stall: Option<(f64, f64)>,
}

impl Rank {
    pub(crate) fn new(rank: usize, shared: Arc<Shared>) -> Self {
        let crash_at = shared.cfg.fault.crashed_at(rank);
        let stall = shared.cfg.fault.stall_of(rank);
        Self {
            rank,
            shared,
            clock: 0.0,
            stats: RankStats::default(),
            crash_at,
            stall,
        }
    }

    /// This rank's global id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.cfg.n_ranks
    }

    /// Current virtual time (ns since cluster start).
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Accounting so far.
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// The communicator spanning all ranks.
    pub fn world(&self) -> Comm {
        Comm::world(self.size())
    }

    /// The cluster's schedule perturbation (identity unless a race-detector
    /// run installed one via [`crate::SimConfig`]). Simulated code models
    /// its own intra-node scheduling choices — e.g. a worker's
    /// [`crate::VThreadPool`] — off this value so the race detector can
    /// shake those too.
    #[inline]
    pub fn sched_perturb(&self) -> SchedPerturb {
        self.shared.cfg.sched
    }

    /// `true` once this rank's virtual clock has reached the crash point
    /// of the cluster's [`crate::FaultPlan`] (always `false` without one).
    /// Simulated code polls this to stop doing work; the send layer
    /// additionally suppresses everything a crashed rank posts.
    #[inline]
    pub fn is_crashed(&self) -> bool {
        self.crash_at.is_some_and(|t| self.clock >= t)
    }

    /// Advances the clock to `t_ns` (no-op when already past), recording
    /// the gap as communication wait — virtual-time timeouts are built on
    /// this.
    pub fn wait_until(&mut self, t_ns: f64) {
        if t_ns > self.clock {
            self.stats.wait_ns += t_ns - self.clock;
            self.clock = t_ns;
        }
        self.apply_stall();
    }

    /// Fires the plan's one-shot stall once the clock crosses its
    /// threshold.
    #[inline]
    fn apply_stall(&mut self) {
        if let Some((at, dur)) = self.stall {
            if self.clock >= at {
                self.stall = None;
                self.clock += dur;
                self.stats.stall_ns += dur;
            }
        }
    }

    /// Charges `ns` of modelled compute time.
    #[inline]
    pub fn charge(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0, "negative compute charge");
        self.clock += ns;
        self.stats.compute_ns += ns;
        self.apply_stall();
    }

    /// Charges `n` distance evaluations between `dim`-dimensional vectors,
    /// priced by the cluster's [`crate::CostModel`].
    #[inline]
    pub fn charge_dists(&mut self, n: u64, dim: usize) {
        self.charge(self.shared.cfg.cost.dists_ns(n, dim));
    }

    /// Posts a non-blocking send (models `MPI_Isend` with a buffered
    /// payload): the sender pays only the posting overhead; the message
    /// arrives at `now + α + bytes·β`.
    pub fn send_bytes(&mut self, dst: usize, tag: u64, payload: Bytes) {
        assert!(dst < self.size(), "send to unknown rank {dst}");
        let cfg = &self.shared.cfg;
        let bytes = payload.len();
        self.clock += cfg.net.send_overhead_ns;
        self.stats.send_cpu_ns += cfg.net.send_overhead_ns;
        let seq = self.stats.msgs_sent;
        let arrival = self.clock
            + cfg
                .net
                .xfer_jittered_ns(&cfg.topology, self.rank, dst, bytes, seq);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let sent_at = self.clock;
        self.deliver(dst, tag, payload, sent_at, arrival, seq);
    }

    /// Posts a send on behalf of a *virtual worker thread* that finishes at
    /// virtual time `not_before` (see [`crate::VThreadPool`]): the message
    /// leaves at `max(not_before, 0)` regardless of this rank's progress
    /// clock, modelling a compute thread that posts its own result. The
    /// rank's clock is not advanced; the posting overhead is attributed to
    /// the virtual thread (added to the departure time).
    pub fn send_bytes_at(&mut self, dst: usize, tag: u64, payload: Bytes, not_before: f64) {
        assert!(dst < self.size(), "send to unknown rank {dst}");
        let cfg = &self.shared.cfg;
        let bytes = payload.len();
        let depart = not_before.max(0.0) + cfg.net.send_overhead_ns;
        let seq = self.stats.msgs_sent;
        let arrival = depart
            + cfg
                .net
                .xfer_jittered_ns(&cfg.topology, self.rank, dst, bytes, seq);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.send_cpu_ns += cfg.net.send_overhead_ns;
        self.deliver(dst, tag, payload, depart, arrival, seq);
    }

    /// Enqueues a posted message, applying the cluster's fault plan: a
    /// vacuous plan takes the plain path; otherwise the message may be
    /// suppressed (crashed sender), dropped, delayed, or duplicated — all
    /// decided by a deterministic hash, never by wall-clock state.
    fn deliver(
        &mut self,
        dst: usize,
        tag: u64,
        payload: Bytes,
        sent_at: f64,
        arrival: f64,
        seq: u64,
    ) {
        let fault = &self.shared.cfg.fault;
        let ledger = &self.shared.ledger;
        ledger.sent.fetch_add(1, Ordering::Relaxed);
        let mut arrival = arrival;
        let mut copies = 1usize;
        if !fault.is_vacuous() {
            if fault.send_suppressed(self.rank, sent_at, tag) {
                self.stats.msgs_dropped += 1;
                ledger.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            match fault.fate(self.rank, dst, tag, seq) {
                Fate::Deliver => {}
                Fate::Drop => {
                    self.stats.msgs_dropped += 1;
                    ledger.dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Fate::Delay(extra) => arrival += extra,
                Fate::Duplicate => {
                    copies = 2;
                    self.stats.msgs_duplicated += 1;
                    ledger.duplicated.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        ledger.delivered.fetch_add(copies as u64, Ordering::Relaxed);
        let mb = &self.shared.mailboxes[dst];
        {
            let mut q = mb.queue.lock();
            for _ in 0..copies {
                q.push_back(Msg {
                    src: self.rank,
                    tag,
                    payload: payload.clone(),
                    sent_at,
                    arrival,
                });
            }
        }
        mb.cv.notify_all();
    }

    /// Blocking receive of the first message matching `src`/`tag`
    /// (`None` = wildcard). The receiver's clock advances to the message's
    /// arrival when it arrives "in the future"; the gap is recorded as
    /// communication wait.
    ///
    /// # Panics
    /// Panics after the cluster's watchdog timeout — a deadlocked simulated
    /// program fails loudly instead of hanging the host.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u64>) -> Msg {
        self.maybe_stall_realtime();
        let msg = self.wait_message(src, tag);
        self.complete_recv(msg)
    }

    /// Non-blocking probe-and-receive (models an `MPI_Test` loop that found
    /// a message): returns the first matching queued message, if any.
    pub fn try_recv(&mut self, src: Option<usize>, tag: Option<u64>) -> Option<Msg> {
        self.maybe_stall_realtime();
        let salt = self.match_salt();
        let perturb = self.shared.cfg.sched;
        let msg = {
            let mut q = self.shared.mailboxes[self.rank].queue.lock();
            take_match(&mut q, src, tag, &perturb, salt)
        }?;
        Some(self.complete_recv(msg))
    }

    /// Race-detector hook: an OS-level sleep biased by the perturbation
    /// seed. Changes which messages are physically enqueued when the
    /// mailbox is next inspected; virtual clocks never see it.
    #[inline]
    fn maybe_stall_realtime(&self) {
        let perturb = self.shared.cfg.sched;
        if let Some(us) = perturb.stall_micros(self.match_salt() ^ (self.rank as u64) << 32) {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Salt for the perturbed-matching hash: distinct per rank and per
    /// completed receive, so reruns with one seed are still deterministic
    /// with respect to the rank's own progress.
    #[inline]
    fn match_salt(&self) -> u64 {
        (self.rank as u64) << 32 ^ self.stats.msgs_recv
    }

    fn complete_recv(&mut self, msg: Msg) -> Msg {
        let cfg = &self.shared.cfg;
        if msg.arrival > self.clock {
            self.stats.wait_ns += msg.arrival - self.clock;
            self.clock = msg.arrival;
        }
        self.clock += cfg.net.recv_overhead_ns;
        self.stats.recv_cpu_ns += cfg.net.recv_overhead_ns;
        self.stats.msgs_recv += 1;
        self.shared.ledger.received.fetch_add(1, Ordering::Relaxed);
        self.apply_stall();
        msg
    }

    fn wait_message(&self, src: Option<usize>, tag: Option<u64>) -> Msg {
        let perturb = self.shared.cfg.sched;
        let salt = self.match_salt();
        let mb = &self.shared.mailboxes[self.rank];
        let mut q = mb.queue.lock();
        loop {
            if let Some(m) = take_match(&mut q, src, tag, &perturb, salt) {
                return m;
            }
            let timeout = self.shared.cfg.recv_timeout;
            if mb.cv.wait_for(&mut q, timeout).timed_out() {
                panic!(
                    "rank {} timed out after {:?} waiting for src={:?} tag={:?} \
                     (queued: {} unmatched messages) — simulated program deadlock",
                    self.rank,
                    timeout,
                    src,
                    tag,
                    q.len()
                );
            }
        }
    }

    /// Registers a shared object and returns its key (used by RMA windows
    /// to hand `Arc`s across rank threads).
    pub(crate) fn registry_put(&self, value: Box<dyn std::any::Any + Send + Sync>) -> u64 {
        self.shared.registry_put(value)
    }

    pub(crate) fn registry_get(&self, key: u64) -> Arc<dyn std::any::Any + Send + Sync> {
        self.shared.registry_get(key)
    }
}

/// Bit 63 marks collective-internal traffic. A wildcard-tag receive never
/// matches it — mirroring MPI, where collectives use a separate matching
/// context and cannot be intercepted by `MPI_Recv(ANY_TAG)`.
pub(crate) const COLL_FLAG: u64 = 1 << 63;

/// Removes and returns the queued message a `recv(src, tag)` matches.
///
/// Baseline semantics: the first matching message in arrival order. Under
/// an active [`SchedPerturb`] a *wildcard-source* receive instead picks a
/// seeded-random candidate among the per-sender heads — the first matching
/// message of each distinct sender. Per-sender order is never violated
/// (MPI's non-overtaking guarantee), but the cross-sender choice models the
/// legal `MPI_ANY_SOURCE` nondeterminism a real cluster exhibits. Programs
/// whose observable state depends on that choice are racy; the race
/// detector exists to find exactly them.
fn take_match(
    q: &mut VecDeque<Msg>,
    src: Option<usize>,
    tag: Option<u64>,
    perturb: &SchedPerturb,
    salt: u64,
) -> Option<Msg> {
    let matches = |m: &Msg| {
        src.is_none_or(|s| m.src == s) && tag.map_or(m.tag & COLL_FLAG == 0, |t| m.tag == t)
    };
    if src.is_none() && perturb.is_active() {
        // candidate set: first matching message per distinct sender
        let mut heads: Vec<usize> = Vec::new();
        let mut seen_srcs: Vec<usize> = Vec::new();
        for (pos, m) in q.iter().enumerate() {
            if matches(m) && !seen_srcs.contains(&m.src) {
                seen_srcs.push(m.src);
                heads.push(pos);
            }
        }
        if heads.is_empty() {
            return None;
        }
        return q.remove(heads[perturb.pick(salt, heads.len())]);
    }
    let pos = q.iter().position(matches)?;
    q.remove(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, SimConfig};

    #[test]
    fn send_recv_advances_clocks() {
        let out = Cluster::new(SimConfig::new(2)).run(|rank| {
            if rank.rank() == 0 {
                rank.charge(1000.0);
                rank.send_bytes(1, 7, Bytes::from_static(b"hello"));
                rank.now()
            } else {
                let m = rank.recv(Some(0), Some(7));
                assert_eq!(&m.payload[..], b"hello");
                assert!(
                    m.arrival > 1000.0,
                    "arrival {} must include compute+net",
                    m.arrival
                );
                assert!(rank.now() >= m.arrival);
                rank.now()
            }
        });
        assert!(out[1] > out[0], "receiver finishes after sender posted");
    }

    #[test]
    fn wildcard_recv_matches_any() {
        let out = Cluster::new(SimConfig::new(3)).run(|rank| match rank.rank() {
            0 => {
                rank.send_bytes(2, 1, Bytes::from_static(b"a"));
                0
            }
            1 => {
                rank.send_bytes(2, 2, Bytes::from_static(b"b"));
                0
            }
            _ => {
                let m1 = rank.recv(None, None);
                let m2 = rank.recv(None, None);
                let mut srcs = [m1.src, m2.src];
                srcs.sort_unstable();
                assert_eq!(srcs, [0, 1]);
                (m1.payload.len() + m2.payload.len()) as i32
            }
        });
        assert_eq!(out[2], 2);
    }

    #[test]
    fn tag_filtering_defers_other_tags() {
        Cluster::new(SimConfig::new(2)).run(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 5, Bytes::from_static(b"five"));
                rank.send_bytes(1, 6, Bytes::from_static(b"six"));
            } else {
                // ask for tag 6 first even though 5 arrives first
                let m6 = rank.recv(Some(0), Some(6));
                assert_eq!(&m6.payload[..], b"six");
                let m5 = rank.recv(Some(0), Some(5));
                assert_eq!(&m5.payload[..], b"five");
            }
        });
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        Cluster::new(SimConfig::new(2)).run(|rank| {
            if rank.rank() == 1 {
                // nothing sent yet with tag 9 from rank 0 — simulate one
                // failed probe, then a successful blocking receive
                let probe = rank.try_recv(Some(0), Some(9));
                let _ = probe; // may be None or Some depending on scheduling
            } else {
                rank.send_bytes(1, 9, Bytes::new());
            }
        });
    }

    #[test]
    fn charge_dists_uses_cost_model() {
        let cfg = SimConfig::new(1);
        let per = cfg.cost.dist_ns(128);
        let out = Cluster::new(cfg).run(|rank| {
            rank.charge_dists(100, 128);
            rank.now()
        });
        assert!((out[0] - 100.0 * per).abs() < 1e-6);
    }

    #[test]
    fn stats_track_messages() {
        let out = Cluster::new(SimConfig::new(2)).run(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 1, Bytes::from_static(b"xyz"));
                rank.stats()
            } else {
                let _ = rank.recv(None, None);
                rank.stats()
            }
        });
        assert_eq!(out[0].msgs_sent, 1);
        assert_eq!(out[0].bytes_sent, 3);
        assert_eq!(out[1].msgs_recv, 1);
        assert!(out[1].wait_ns >= 0.0);
    }

    #[test]
    fn wildcard_recv_never_steals_collective_traffic() {
        // Regression test: a rank still in its point-to-point serve loop
        // must not intercept collective-internal messages (e.g. another
        // rank's gather contribution) with a wildcard receive — the bug
        // class that deadlocked the multiple-owner engine.
        use crate::comm::ReduceOp;
        Cluster::new(SimConfig::new(3)).run(|rank| {
            let world = rank.world();
            if rank.rank() == 0 {
                // ranks 1 and 2 enter the allreduce immediately; their
                // contributions land in rank 0's mailbox while it is still
                // doing wildcard point-to-point receives.
                let m = rank.recv(None, None); // must match ONLY the user msg
                assert_eq!(m.tag, 42, "wildcard matched a collective message");
            }
            if rank.rank() == 1 {
                rank.send_bytes(0, 42, Bytes::from_static(b"user"));
            }
            let s = world.allreduce_f64(rank, 1.0, ReduceOp::Sum);
            assert_eq!(s, 3.0);
        });
    }

    #[test]
    fn explicit_tag_recv_matches_collective_flagged_messages() {
        // Collectives themselves must still find their traffic (exact-tag
        // matching bypasses the wildcard guard) — exercised implicitly by
        // every collective test, asserted directly here via a barrier after
        // queued user messages.
        Cluster::new(SimConfig::new(2)).run(|rank| {
            let world = rank.world();
            if rank.rank() == 0 {
                rank.send_bytes(1, 7, Bytes::new());
            }
            world.barrier(rank); // must complete despite the queued user msg
            if rank.rank() == 1 {
                let m = rank.recv(Some(0), Some(7));
                assert_eq!(m.tag, 7);
            }
        });
    }

    #[test]
    #[should_panic]
    fn send_to_unknown_rank_panics() {
        Cluster::new(SimConfig::new(1)).run(|rank| {
            rank.send_bytes(5, 0, Bytes::new());
        });
    }
}
