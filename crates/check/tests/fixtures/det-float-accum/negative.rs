fn total(xs: &[f32]) -> f32 {
    // the sanctioned idiom: parallel map into per-chunk parts, then a
    // sequential fold in chunk order
    let parts: Vec<f32> = xs.par_iter().map(|x| x * x).collect();
    parts.iter().fold(0.0, |a, b| a + b)
}

fn seq_sum(xs: &[f32]) -> f32 {
    xs.iter().sum()
}
