//! Full-precision re-ranking stage of the quantized-first search pipeline.
//!
//! Quantized traversal ranks candidates with the SQ8 asymmetric distance,
//! whose per-candidate error is bounded by the grid resolution but not
//! zero: the final ordering of a survivor pool must therefore be settled
//! at full precision. This module is the *only* place in the crate where
//! search-time exact distances are computed — the `quantized-traversal`
//! lint in `fastann-check` machine-enforces that `greedy_step` /
//! `search_layer` never touch `squared_l2` or `Distance::eval`, and this
//! file carries the allowlist entry for the exact stage.

use fastann_data::kernels;
use fastann_data::{Distance, Neighbor, TopK, VectorSet};

/// Re-ranks the first `pool` candidates of a quantized traversal with the
/// exact metric and returns the best `k`, sorted ascending. Every exact
/// evaluation is charged to `ndist` (the same virtual-clock quantity the
/// traversal charges), so quantized and exact searches stay comparable in
/// the engine's cost model.
///
/// For [`Distance::L2`] the comparison runs in the squared domain and the
/// square root is applied only to the `k` survivors — monotonicity makes
/// the ordering identical, and it keeps the exact stage at one kernel
/// pass per candidate. Other metrics fall through to [`Distance::eval`]
/// (the exact-metric fallback).
pub(crate) fn rerank_exact(
    dist: Distance,
    data: &VectorSet,
    q: &[f32],
    candidates: &[Neighbor],
    pool: usize,
    k: usize,
    ndist: &mut u64,
) -> Vec<Neighbor> {
    let pool = pool.min(candidates.len());
    let mut top = TopK::new(k);
    match dist {
        Distance::L2 | Distance::SquaredL2 => {
            for c in &candidates[..pool] {
                *ndist += 1;
                let d = kernels::squared_l2(q, data.get(c.id as usize));
                top.push(Neighbor::new(c.id, d));
            }
            let mut out = top.into_sorted();
            if dist == Distance::L2 {
                for n in &mut out {
                    n.dist = n.dist.sqrt();
                }
            }
            out
        }
        _ => {
            for c in &candidates[..pool] {
                *ndist += 1;
                let d = dist.eval(q, data.get(c.id as usize));
                top.push(Neighbor::new(c.id, d));
            }
            top.into_sorted()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;

    #[test]
    fn reranked_order_matches_exact_distances() {
        let data = synth::deep_like(100, 16, 3);
        let q = data.get(0).to_vec();
        // a shuffled candidate pool with deliberately wrong (quantized-ish)
        // distances: rerank must ignore them and re-score exactly
        let cands: Vec<Neighbor> = (0..40u32)
            .map(|i| Neighbor::new(i, (40 - i) as f32))
            .collect();
        let mut ndist = 0;
        let out = rerank_exact(Distance::L2, &data, &q, &cands, 40, 5, &mut ndist);
        assert_eq!(ndist, 40);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].id, 0, "self should re-rank to the front");
        for w in out.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // distances are the exact metric, not the pool's fake scores
        let want = Distance::L2.eval(&q, data.get(out[1].id as usize));
        assert_eq!(out[1].dist.to_bits(), want.to_bits());
    }

    #[test]
    fn pool_smaller_than_requested_is_fine() {
        let data = synth::sift_like(10, 8, 4);
        let q = data.get(1).to_vec();
        let cands = [Neighbor::new(1, 0.5), Neighbor::new(2, 0.7)];
        let mut ndist = 0;
        let out = rerank_exact(Distance::SquaredL2, &data, &q, &cands, 30, 5, &mut ndist);
        assert_eq!(out.len(), 2);
        assert_eq!(ndist, 2);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[0].dist, 0.0);
    }

    #[test]
    fn non_l2_metrics_use_the_exact_fallback() {
        let data = synth::sift_like(20, 8, 5);
        let q = data.get(0).to_vec();
        let cands: Vec<Neighbor> = (0..20u32).map(|i| Neighbor::new(i, 0.0)).collect();
        let mut ndist = 0;
        let out = rerank_exact(Distance::L1, &data, &q, &cands, 20, 3, &mut ndist);
        let want = Distance::L1.eval(&q, data.get(out[2].id as usize));
        assert_eq!(out[2].dist.to_bits(), want.to_bits());
    }
}
