//! The legacy *textual* line lint — kept verbatim as the reference
//! implementation for the parity regression.
//!
//! This was the original `fastann-check` pass: eight rules enforced by
//! substring matching over trimmed lines, no lexer. It has known blind
//! spots (needles inside string literals and comments on code lines,
//! multi-line signatures and calls) that the token engine
//! ([`crate::lint`]) closes; `tests/parity.rs` proves that on the
//! current workspace both passes still reach the same verdicts, which
//! is the regression guarantee for the port. Do not extend this module:
//! new rules go on the token engine.

use crate::lint::{
    Violation, RULE_DOC, RULE_PANIC, RULE_QUANT, RULE_RECV, RULE_SEARCH_BATCH, RULE_SPAWN,
    RULE_TAG, RULE_UNWRAP,
};
use std::io;
use std::path::Path;

// The needles are spliced at compile time so that scanning this very
// file does not self-flag the patterns as violations (the textual pass
// cannot tell a string literal from code).
const UNWRAP_PAT: &str = concat!(".unw", "rap()");
const PANIC_PATS: [&str; 4] = [
    concat!("pan", "ic!("),
    concat!("unreach", "able!("),
    concat!("tod", "o!("),
    concat!("unimplem", "ented!("),
];
const RECV_PATS: [&str; 2] = [concat!(".re", "cv("), concat!(".try_", "recv(")];
const SEND_PATS: [&str; 2] = [concat!(".send_", "bytes("), concat!(".send_", "bytes_at(")];
const TAG_CONST_PAT: &str = concat!("const ", "TAG_");
const SPAWN_PATS: [&str; 3] = [
    concat!("thread::", "spawn("),
    concat!(".spawn_", "scoped("),
    concat!("thread::", "Builder::new("),
];
const SEARCH_BATCH_PAT: &str = concat!("pub fn search", "_batch");
const DEPRECATED_PAT: &str = concat!("#[depre", "cated");
const SQL2_PAT: &str = concat!("squared", "_l2(");
const EVAL_PAT: &str = concat!(".ev", "al(");
const TRAVERSAL_FNS: [&str; 2] = [
    concat!("fn greedy", "_step"),
    concat!("fn search", "_layer"),
];

/// Raw textual findings over the whole workspace (no allowlist), for
/// the parity regression against the token engine.
pub fn raw_findings(root: &Path) -> io::Result<Vec<Violation>> {
    let files = crate::lint::workspace_files(root)?;
    let tag_table = crate::lint::parse_tag_table(&root.join("crates/core/src/tags.rs"))?;
    let mut all = Vec::new();
    for path in &files {
        let rel = crate::lint::rel_path(root, path);
        let content = std::fs::read_to_string(path)?;
        lint_file(&rel, &content, &tag_table, &mut all);
    }
    Ok(all)
}

/// Lints one file with the legacy textual rules; appends findings to
/// `out`.
pub fn lint_file(rel: &str, content: &str, tag_table: &[(String, u64)], out: &mut Vec<Violation>) {
    let is_mpisim = rel.starts_with("crates/mpisim/");
    let is_tags_file = rel == "crates/core/src/tags.rs";
    let is_hnsw = rel.starts_with("crates/hnsw/src");
    let wants_docs = rel.starts_with("crates/core/src")
        || rel.starts_with("crates/mpisim/src")
        || rel.starts_with("crates/serve/src")
        || rel.starts_with("crates/obs/src")
        || rel.starts_with("crates/data/src")
        || rel.starts_with("crates/hnsw/src")
        || rel.starts_with("crates/vptree/src")
        || rel.starts_with("crates/kdtree/src");

    let lines: Vec<&str> = content.lines().collect();
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut pending_cfg_test = false;
    // quantized-traversal: brace-counted span of an HNSW traversal fn
    // (the multi-line signature has not opened a brace yet, so the span
    // only ends once an opening brace has been seen and depth returns
    // to zero).
    let mut in_traversal = false;
    let mut trav_depth: i64 = 0;
    let mut trav_opened = false;

    for (i, raw) in lines.iter().enumerate() {
        let line_no = i + 1;
        let t = raw.trim();
        let opens = raw.matches('{').count() as i64;
        let closes = raw.matches('}').count() as i64;

        if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if t.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if t.starts_with("#[") {
                continue; // further attributes on the same item
            }
            pending_cfg_test = false;
            if t.starts_with("mod ") || t.starts_with("pub mod ") {
                in_test = true;
                test_depth = opens - closes;
                if test_depth <= 0 {
                    in_test = false;
                }
                continue;
            }
        }

        let is_comment = t.starts_with("//");

        // quantized-traversal: inside greedy_step / search_layer every
        // distance goes through QueryDist dispatch, so a direct metric
        // eval there reintroduces a second distance domain into the beam.
        if in_traversal {
            if !is_comment && t.contains(EVAL_PAT) {
                out.push(violation(rel, line_no, RULE_QUANT, t));
            }
            if opens > 0 {
                trav_opened = true;
            }
            trav_depth += opens - closes;
            if trav_opened && trav_depth <= 0 {
                in_traversal = false;
            }
        } else if is_hnsw && !is_comment && TRAVERSAL_FNS.iter().any(|p| t.contains(p)) {
            in_traversal = true;
            trav_opened = opens > 0;
            trav_depth = opens - closes;
            if trav_opened && trav_depth <= 0 {
                in_traversal = false;
            }
        }

        // quantized-traversal: the raw exact kernel may not be called
        // anywhere in the HNSW crate — the re-rank stage is the one
        // sanctioned consumer and carries the allowlist entry.
        if is_hnsw && !is_comment && t.contains(SQL2_PAT) {
            out.push(violation(rel, line_no, RULE_QUANT, t));
        }

        if !is_comment {
            // no-unwrap
            if t.contains(UNWRAP_PAT) {
                out.push(violation(rel, line_no, RULE_UNWRAP, t));
            }

            // no-panic (the simulator's own internals legitimately panic:
            // a simulated-rank panic is the simulated fault model)
            if !is_mpisim && PANIC_PATS.iter().any(|p| t.contains(p)) {
                out.push(violation(rel, line_no, RULE_PANIC, t));
            }

            // no-thread-spawn: all real parallelism goes through the
            // vendored rayon pool (deterministic, order-preserving) — the
            // only legitimate direct spawner is the cluster simulator's
            // rank scheduler. The vendored pool itself lives under
            // `vendor/`, which the file walk already skips.
            if !is_mpisim && SPAWN_PATS.iter().any(|p| t.contains(p)) {
                out.push(violation(rel, line_no, RULE_SPAWN, t));
            }

            // search-batch-variant: the five legacy entry points survive
            // only as `#[deprecated]` shims over the SearchRequest
            // builder; a new public variant of the family must not
            // appear. A shim is recognized by its deprecation attribute
            // on one of the five preceding lines.
            if t.contains(SEARCH_BATCH_PAT) {
                let shim = lines[i.saturating_sub(5)..i]
                    .iter()
                    .any(|l| l.trim_start().starts_with(DEPRECATED_PAT));
                if !shim {
                    out.push(violation(rel, line_no, RULE_SEARCH_BATCH, t));
                }
            }

            // wildcard-recv
            if !is_mpisim {
                for pat in RECV_PATS {
                    if let Some(pos) = t.find(pat) {
                        let args = call_args(&t[pos + pat.len()..]);
                        if args.contains("None") {
                            out.push(violation(rel, line_no, RULE_RECV, t));
                            break;
                        }
                    }
                }
            }

            // tag-registry, part 1: declarations must match the table
            if !is_mpisim && !is_tags_file {
                if let Some(pos) = t.find(TAG_CONST_PAT) {
                    let name_start = pos + TAG_CONST_PAT.len() - 4; // keep "TAG_"
                    let rest = &t[name_start..];
                    if let Some(colon) = rest.find(':') {
                        let name = rest[..colon].trim();
                        let value = rest
                            .split('=')
                            .nth(1)
                            .and_then(|v| v.trim().trim_end_matches(';').parse::<u64>().ok());
                        if let Some(value) = value {
                            let registered =
                                tag_table.iter().any(|(n, v)| n == name && *v == value);
                            if !registered {
                                out.push(Violation {
                                    file: rel.to_string(),
                                    line: line_no,
                                    rule: RULE_TAG,
                                    text: format!(
                                        "{name} = {value} is not registered in core/src/tags.rs TAG_TABLE"
                                    ),
                                });
                            }
                        }
                    }
                }

                // tag-registry, part 2: sent tags must be symbolic
                for pat in SEND_PATS {
                    if let Some(pos) = t.find(pat) {
                        let joined = lines[i..lines.len().min(i + 3)].join(" ");
                        let jpos = joined.find(pat).map(|p| p + pat.len()).unwrap_or(0);
                        let args: Vec<&str> = joined[jpos..].splitn(3, ',').collect();
                        let tag_ok = args
                            .get(1)
                            .map(|a| a.contains("TAG_") || a.to_lowercase().contains("tag"))
                            .unwrap_or(false);
                        if !tag_ok {
                            out.push(Violation {
                                file: rel.to_string(),
                                line: line_no,
                                rule: RULE_TAG,
                                text: format!(
                                    "tag argument is not a TAG_* identifier: {}",
                                    &t[pos..]
                                ),
                            });
                        }
                        break;
                    }
                }
            }
        }

        // missing-doc
        if wants_docs && !is_comment && is_pub_item(t) {
            let mut j = i;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let prev = lines[j].trim();
                if prev.starts_with("///") {
                    documented = true;
                    break;
                }
                // walk through attributes (including wrapped ones)
                if prev.starts_with("#[") || prev.starts_with("#![") || prev.ends_with(")]") {
                    continue;
                }
                break;
            }
            if !documented {
                out.push(Violation {
                    file: rel.to_string(),
                    line: line_no,
                    rule: RULE_DOC,
                    text: format!("undocumented public item: {}", first_words(t, 6)),
                });
            }
        }
    }
}

fn violation(rel: &str, line: usize, rule: &'static str, text: &str) -> Violation {
    Violation {
        file: rel.to_string(),
        line,
        rule,
        text: text.to_string(),
    }
}

/// The argument span of a call: `rest` starts just past the opening
/// parenthesis; the span ends at the matching close (or end of line for
/// calls that wrap).
fn call_args(rest: &str) -> &str {
    let mut depth = 1usize;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return &rest[..i];
                }
            }
            _ => {}
        }
    }
    rest
}

/// Is this line the head of a `pub` item that needs a doc comment?
/// `pub(crate)` and `pub use` are exempt.
fn is_pub_item(t: &str) -> bool {
    const HEADS: [&str; 10] = [
        "pub fn ",
        "pub async fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub mod ",
        "pub union ",
    ];
    HEADS.iter().any(|h| t.starts_with(h))
}

fn first_words(t: &str, n: usize) -> String {
    t.split_whitespace().take(n).collect::<Vec<_>>().join(" ")
}
