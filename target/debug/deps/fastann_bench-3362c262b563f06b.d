/root/repo/target/debug/deps/fastann_bench-3362c262b563f06b.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_bench-3362c262b563f06b.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
