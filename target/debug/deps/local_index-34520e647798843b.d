/root/repo/target/debug/deps/local_index-34520e647798843b.d: tests/local_index.rs Cargo.toml

/root/repo/target/debug/deps/liblocal_index-34520e647798843b.rmeta: tests/local_index.rs Cargo.toml

tests/local_index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
