//! Virtual-time plumbing: the only clock in a contract crate is the
//! simulator's.

fn measure(clock: &VirtualClock) -> u64 {
    // Instant::now() is banned here; the simulated clock is authoritative
    let start = clock.now_ns();
    work();
    clock.now_ns() - start
}

fn label() -> &'static str {
    "SystemTime::now() as a string is not a call"
}
