/root/repo/target/debug/deps/fastann_mpisim-48247b7e0a33d9bc.d: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs

/root/repo/target/debug/deps/libfastann_mpisim-48247b7e0a33d9bc.rlib: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs

/root/repo/target/debug/deps/libfastann_mpisim-48247b7e0a33d9bc.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/cluster.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/cost.rs:
crates/mpisim/src/fault.rs:
crates/mpisim/src/net.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/rma.rs:
crates/mpisim/src/trace.rs:
crates/mpisim/src/vthreads.rs:
crates/mpisim/src/wire.rs:
