//! `missing-doc`: every `pub` item of the registered crates carries a
//! doc comment.
//!
//! Registered: core, mpisim, serve, obs, data, hnsw, and (since the
//! token engine) vptree and kdtree. `pub(crate)` and `pub use` are
//! exempt; attributes between the doc and the item are skipped by
//! walking the real token stream, so wrapped multi-line attributes
//! cannot hide a doc comment the way they could from the line lint.

use crate::engine::FileCtx;
use crate::lint::{Violation, RULE_DOC};

/// Crate source prefixes whose public items must be documented.
pub const DOC_CRATES: [&str; 8] = [
    "crates/core/src",
    "crates/mpisim/src",
    "crates/serve/src",
    "crates/obs/src",
    "crates/data/src",
    "crates/hnsw/src",
    "crates/vptree/src",
    "crates/kdtree/src",
];

/// Item-head keywords that demand a doc comment after `pub`.
const HEADS: [&str; 10] = [
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union", "async",
];

/// Runs the rule over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !DOC_CRATES.iter().any(|p| ctx.rel.starts_with(p)) {
        return;
    }
    for ci in 0..ctx.n() {
        if ctx.in_test(ci) || !ctx.is_ident(ci, "pub") || !ctx.starts_line(ci) {
            continue;
        }
        // pub(crate) / pub(super) are exempt, pub use is not an item head
        if ctx.is_punct(ci + 1, "(") {
            continue;
        }
        let is_head = match ctx.ident(ci + 1) {
            Some("async") => ctx.is_ident(ci + 2, "fn"),
            Some(h) => HEADS.contains(&h),
            None => false,
        };
        if !is_head {
            continue;
        }
        let documented = ctx.walk_back_attrs(ci, |_, _| {});
        if !documented {
            let line = ctx.line(ci);
            ctx.flag_msg(
                out,
                ci,
                RULE_DOC,
                format!(
                    "undocumented public item: {}",
                    first_words(ctx.snippet(line), 6)
                ),
            );
        }
    }
}

fn first_words(t: &str, n: usize) -> String {
    t.split_whitespace().take(n).collect::<Vec<_>>().join(" ")
}
