//! MDCGen-style multidimensional cluster generator.
//!
//! Re-implements the generator used for the paper's SYN_1M and SYN_10M
//! datasets (Iglesias, Zseby, Ferreira, Zimek — "MDCGen: Multidimensional
//! Dataset Generator for Clustering", Journal of Classification 2019) to the
//! extent the paper exercises it: `k` clusters placed uniformly in a unit
//! hyper-box, per-cluster Gaussian or uniform spreads, a configurable number
//! of outliers drawn uniformly from the whole domain, and query sets drawn
//! from a single cluster with a *compactness factor* (the paper uses 0.01).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{fill_normal, fill_uniform};
use crate::vector::VectorSet;

/// Intra-cluster point distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Spread {
    /// Isotropic Gaussian around the cluster centre.
    Gaussian,
    /// Uniform in a hyper-box around the cluster centre.
    Uniform,
    /// Alternate Gaussian / uniform per cluster — the paper's SYN datasets
    /// "use Gaussian and uniform distributions to generate points in 10
    /// clusters".
    Mixed,
}

/// Configuration for [`generate`]. Defaults mirror the paper's SYN setup:
/// 10 clusters, mixed spreads, compactness 0.1 of the domain per cluster.
#[derive(Clone, Debug)]
pub struct MdcConfig {
    /// Total number of clustered points (outliers are additional).
    pub n_points: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of clusters.
    pub n_clusters: usize,
    /// Number of outliers, uniform over the whole `[0,1]^dim` domain.
    /// The paper sets 5000 for SYN_1M and 50000 for SYN_10M.
    pub n_outliers: usize,
    /// Cluster scale as a fraction of the domain side (std for Gaussian,
    /// half-width for uniform).
    pub compactness: f32,
    /// Intra-cluster distribution.
    pub spread: Spread,
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for MdcConfig {
    fn default() -> Self {
        Self {
            n_points: 10_000,
            dim: 32,
            n_clusters: 10,
            n_outliers: 0,
            compactness: 0.1,
            spread: Spread::Mixed,
            seed: 0,
        }
    }
}

/// A generated dataset: points (clustered then outliers), per-point labels
/// (`-1` for outliers), and the cluster centres.
#[derive(Clone, Debug)]
pub struct MdcDataset {
    /// All generated points; rows `0..n_points` are clustered, the rest are
    /// outliers.
    pub points: VectorSet,
    /// Cluster label per row; `-1` marks an outlier.
    pub labels: Vec<i32>,
    /// Centre of each cluster.
    pub centers: VectorSet,
    /// The configuration that produced this dataset.
    pub config: MdcConfig,
}

impl MdcDataset {
    /// Draws a query set from a single cluster with the given compactness
    /// factor, the way the paper generates its SYN query workloads
    /// ("uniform distribution in a single cluster with a compactness factor
    /// of 0.01").
    pub fn queries_from_cluster(
        &self,
        n: usize,
        cluster: usize,
        compactness: f32,
        seed: u64,
    ) -> VectorSet {
        assert!(cluster < self.centers.len(), "cluster index out of range");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let dim = self.points.dim();
        let center = self.centers.get(cluster);
        let half = compactness;
        let mut out = VectorSet::with_capacity(dim, n);
        let mut row = vec![0f32; dim];
        for _ in 0..n {
            for (d, x) in row.iter_mut().enumerate() {
                *x = center[d] + rng.gen_range(-half..half);
            }
            out.push(&row);
        }
        out
    }

    /// Convenience: queries spread over *all* clusters (round-robin), for
    /// workloads without the single-cluster skew.
    pub fn queries_all_clusters(&self, n: usize, compactness: f32, seed: u64) -> VectorSet {
        let dim = self.points.dim();
        let mut out = VectorSet::with_capacity(dim, n);
        let k = self.centers.len();
        for i in 0..n {
            let q = self.queries_from_cluster(1, i % k, compactness, seed.wrapping_add(i as u64));
            out.push(q.get(0));
        }
        out
    }
}

/// Generates a clustered dataset per `cfg`. Cluster sizes are near-equal
/// (the first `n_points % n_clusters` clusters get one extra point).
///
/// # Panics
/// Panics if `n_clusters == 0` or `dim == 0`.
pub fn generate(cfg: &MdcConfig) -> MdcDataset {
    assert!(cfg.n_clusters > 0, "need at least one cluster");
    assert!(cfg.dim > 0, "dimension must be positive");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let dim = cfg.dim;

    // Cluster centres: uniform in the inner 80% of the domain so clusters
    // do not straddle the boundary.
    let mut centers = VectorSet::with_capacity(dim, cfg.n_clusters);
    let mut row = vec![0f32; dim];
    for _ in 0..cfg.n_clusters {
        fill_uniform(&mut rng, &mut row, 0.1, 0.9);
        centers.push(&row);
    }

    let total = cfg.n_points + cfg.n_outliers;
    let mut points = VectorSet::with_capacity(dim, total);
    let mut labels = Vec::with_capacity(total);

    let base = cfg.n_points / cfg.n_clusters;
    let extra = cfg.n_points % cfg.n_clusters;
    for c in 0..cfg.n_clusters {
        let sz = base + usize::from(c < extra);
        let spread = match cfg.spread {
            Spread::Gaussian => Spread::Gaussian,
            Spread::Uniform => Spread::Uniform,
            Spread::Mixed => {
                if c % 2 == 0 {
                    Spread::Gaussian
                } else {
                    Spread::Uniform
                }
            }
        };
        let center = centers.get(c).to_vec();
        for _ in 0..sz {
            match spread {
                Spread::Gaussian => fill_normal(&mut rng, &mut row, 0.0, cfg.compactness),
                Spread::Uniform => {
                    fill_uniform(&mut rng, &mut row, -cfg.compactness, cfg.compactness)
                }
                Spread::Mixed => unreachable!("resolved above"),
            }
            for (d, x) in row.iter_mut().enumerate() {
                *x += center[d];
            }
            points.push(&row);
            labels.push(c as i32);
        }
    }

    for _ in 0..cfg.n_outliers {
        fill_uniform(&mut rng, &mut row, 0.0, 1.0);
        points.push(&row);
        labels.push(-1);
    }

    MdcDataset {
        points,
        labels,
        centers,
        config: cfg.clone(),
    }
}

/// The paper's SYN_1M analogue at a configurable scale: `n` points in `dim`
/// dimensions, 10 clusters, mixed spreads, 0.5% outliers.
pub fn syn_like(n: usize, dim: usize, seed: u64) -> MdcDataset {
    generate(&MdcConfig {
        n_points: n,
        dim,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: Spread::Mixed,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Distance;

    #[test]
    fn sizes_and_labels() {
        let ds = generate(&MdcConfig {
            n_points: 103,
            dim: 8,
            n_clusters: 10,
            n_outliers: 7,
            ..Default::default()
        });
        assert_eq!(ds.points.len(), 110);
        assert_eq!(ds.labels.len(), 110);
        assert_eq!(ds.centers.len(), 10);
        assert_eq!(ds.labels.iter().filter(|&&l| l == -1).count(), 7);
        // first cluster gets the extra 3 points: 11,11,11,10,...
        assert_eq!(ds.labels.iter().filter(|&&l| l == 0).count(), 11);
        assert_eq!(ds.labels.iter().filter(|&&l| l == 9).count(), 10);
    }

    #[test]
    fn clustered_points_near_their_center() {
        let ds = generate(&MdcConfig {
            n_points: 500,
            dim: 16,
            n_clusters: 5,
            compactness: 0.02,
            spread: Spread::Gaussian,
            seed: 11,
            n_outliers: 0,
        });
        // every point should be far closer to its own centre than the domain diagonal
        for (i, row) in ds.points.iter().enumerate() {
            let c = ds.labels[i] as usize;
            let d = Distance::L2.eval(row, ds.centers.get(c));
            assert!(d < 0.02 * 6.0 * (16f32).sqrt(), "point {i} too far: {d}");
        }
    }

    #[test]
    fn uniform_spread_is_bounded() {
        let ds = generate(&MdcConfig {
            n_points: 300,
            dim: 4,
            n_clusters: 3,
            compactness: 0.05,
            spread: Spread::Uniform,
            seed: 3,
            n_outliers: 0,
        });
        for (i, row) in ds.points.iter().enumerate() {
            let c = ds.labels[i] as usize;
            let center = ds.centers.get(c);
            for d in 0..4 {
                assert!((row[d] - center[d]).abs() <= 0.05 + 1e-6);
            }
        }
    }

    #[test]
    fn outliers_span_domain() {
        let ds = generate(&MdcConfig {
            n_points: 10,
            dim: 2,
            n_clusters: 1,
            n_outliers: 2000,
            compactness: 0.01,
            spread: Spread::Gaussian,
            seed: 4,
        });
        let outliers: Vec<&[f32]> = ds
            .points
            .iter()
            .zip(&ds.labels)
            .filter(|(_, &l)| l == -1)
            .map(|(p, _)| p)
            .collect();
        let min = outliers.iter().map(|p| p[0]).fold(f32::INFINITY, f32::min);
        let max = outliers
            .iter()
            .map(|p| p[0])
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            min < 0.1 && max > 0.9,
            "outliers do not span domain: {min}..{max}"
        );
    }

    #[test]
    fn queries_land_inside_cluster_box() {
        let ds = syn_like(1000, 8, 21);
        let q = ds.queries_from_cluster(50, 2, 0.01, 99);
        assert_eq!(q.len(), 50);
        let center = ds.centers.get(2);
        for row in q.iter() {
            for d in 0..8 {
                assert!((row[d] - center[d]).abs() < 0.01 + 1e-6);
            }
        }
    }

    #[test]
    fn queries_all_clusters_round_robin() {
        let ds = syn_like(1000, 4, 2);
        let q = ds.queries_all_clusters(20, 0.01, 5);
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&MdcConfig {
            seed: 42,
            ..Default::default()
        });
        let b = generate(&MdcConfig {
            seed: 42,
            ..Default::default()
        });
        assert_eq!(a.points, b.points);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    #[should_panic]
    fn zero_clusters_panics() {
        let _ = generate(&MdcConfig {
            n_clusters: 0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic]
    fn query_bad_cluster_panics() {
        let ds = syn_like(100, 4, 1);
        let _ = ds.queries_from_cluster(1, 10, 0.01, 0);
    }
}
