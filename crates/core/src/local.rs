//! Pluggable per-partition indexes.
//!
//! The paper's Section VI: "Our approach is extensible in that any algorithm
//! can be used for local indexing and searching instead of HNSW." This
//! module is that extension point: a partition can be served by
//!
//! * [`LocalIndexKind::Hnsw`] — the paper's choice (approximate, fast in
//!   high dimension),
//! * [`LocalIndexKind::VpExact`] — an exact vantage-point tree, making the
//!   whole distributed engine exact *within the routed partitions*,
//! * [`LocalIndexKind::BruteForce`] — exhaustive scan, the calibration
//!   baseline.
//!
//! All variants report their distance-evaluation counts so the virtual-time
//! accounting stays uniform.

use fastann_data::{ground_truth, Distance, Neighbor, VectorSet};
use fastann_hnsw::{Hnsw, HnswConfig, SearchScratch};
use fastann_vptree::{VpTree, VpTreeConfig};
use rayon::prelude::*;

/// Which index structure serves a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalIndexKind {
    /// HNSW graph (approximate) — the paper's system.
    Hnsw,
    /// Exact VP tree.
    VpExact,
    /// Exhaustive scan.
    BruteForce,
}

/// A built per-partition index.
// one LocalIndex per partition, always behind Arc<Partition> — the variant
// size spread has no aggregate cost worth boxing the hot Hnsw variant for
#[allow(clippy::large_enum_variant)]
pub enum LocalIndex {
    /// HNSW graph.
    Hnsw(Hnsw),
    /// Exact VP tree.
    VpTree(VpTree),
    /// Plain vectors, scanned exhaustively.
    Brute { data: VectorSet, metric: Distance },
}

impl LocalIndex {
    /// Builds the index of the requested kind over `rows`.
    pub fn build(
        kind: LocalIndexKind,
        rows: VectorSet,
        metric: Distance,
        hnsw: HnswConfig,
        seed: u64,
    ) -> LocalIndex {
        match kind {
            LocalIndexKind::Hnsw => {
                let mut cfg = hnsw;
                cfg.seed = seed;
                LocalIndex::Hnsw(Hnsw::build(rows, metric, cfg))
            }
            LocalIndexKind::VpExact => LocalIndex::VpTree(VpTree::build(
                rows,
                metric,
                VpTreeConfig {
                    seed,
                    ..VpTreeConfig::default()
                },
            )),
            LocalIndexKind::BruteForce => LocalIndex::Brute { data: rows, metric },
        }
    }

    /// k-NN over the partition; returns local row ids and the number of
    /// distance evaluations performed (for virtual-time charging).
    pub fn search(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, u64) {
        let (r, s) = self.search_detailed(q, k, ef, scratch);
        (r, s.ndist)
    }

    /// [`LocalIndex::search`] with full per-search accounting. For
    /// non-HNSW kinds only `ndist` is meaningful (a tree walk has no beam,
    /// so `hops`, `heap_pushes` and `ef_churn` stay zero).
    pub fn search_detailed(
        &self,
        q: &[f32],
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, fastann_hnsw::SearchStats) {
        match self {
            LocalIndex::Hnsw(h) => h.search_with_scratch(q, k, ef, scratch),
            other => {
                let mut opts = crate::SearchOptions::new(k);
                opts.ef = ef;
                opts.quantized = false;
                other.search_detailed_opts(q, &opts, scratch)
            }
        }
    }

    /// [`LocalIndex::search_detailed`] with the per-request knobs from
    /// [`crate::SearchOptions`] threaded through: `opts.k`/`opts.ef` bound
    /// the answer, `opts.quantized` routes an HNSW partition to its SQ8
    /// traversal + exact re-rank pipeline (`opts.rerank_factor` wide,
    /// falling back to exact when the partition has no trained quantizer),
    /// and `opts.entry_beam` overrides the descent beam width (`0`
    /// inherits the index config). Tree and brute-force kinds are always
    /// exact and single-entry — they are the ground-truth baselines, so
    /// quantizing them would defeat their purpose.
    pub fn search_detailed_opts(
        &self,
        q: &[f32],
        opts: &crate::SearchOptions,
        scratch: &mut SearchScratch,
    ) -> (Vec<Neighbor>, fastann_hnsw::SearchStats) {
        let (k, ef) = (opts.k, opts.ef);
        match self {
            LocalIndex::Hnsw(h) if opts.quantized => {
                h.search_quantized_with_beam(q, k, ef, opts.rerank_factor, opts.entry_beam, scratch)
            }
            LocalIndex::Hnsw(h) => h.search_with_beam(q, k, ef, opts.entry_beam, scratch),
            LocalIndex::VpTree(t) => {
                let (r, s) = t.knn(q, k);
                (
                    r,
                    fastann_hnsw::SearchStats {
                        ndist: s.ndist,
                        ..Default::default()
                    },
                )
            }
            LocalIndex::Brute { data, metric } => {
                let r = ground_truth::brute_force_one(data, q, k, *metric);
                (
                    r,
                    fastann_hnsw::SearchStats {
                        ndist: data.len() as u64,
                        ..Default::default()
                    },
                )
            }
        }
    }

    /// Answers a batch of queries using up to `threads` real OS threads —
    /// the paper's worker-side OpenMP model, where one MPI rank fans its
    /// queued queries out across the node's cores.
    ///
    /// Output element `i` is exactly what `search(&queries[i], ..)` returns
    /// (results **and** per-query distance counts): every query's search is
    /// independent and reads an immutable index, and the pool preserves
    /// input order, so the outcome is bit-identical for every `threads`
    /// value, including the sequential `threads = 1`. Each pool worker
    /// keeps one private [`SearchScratch`] — the per-thread
    /// distance-evaluation counters — and the per-query counts it reports
    /// are what callers aggregate into build/query statistics.
    pub fn search_many(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        ef: usize,
        threads: usize,
    ) -> Vec<(Vec<Neighbor>, u64)> {
        rayon::with_num_threads(threads.max(1), || {
            queries
                .par_iter()
                .map_init(
                    || SearchScratch::with_capacity(self.len()),
                    |scratch, q| self.search(q, k, ef, scratch),
                )
                .collect()
        })
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        match self {
            LocalIndex::Hnsw(h) => h.len(),
            LocalIndex::VpTree(t) => t.len(),
            LocalIndex::Brute { data, .. } => data.len(),
        }
    }

    /// `true` when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            LocalIndex::Hnsw(h) => h.dim(),
            LocalIndex::VpTree(t) => t.dim(),
            LocalIndex::Brute { data, .. } => data.dim(),
        }
    }

    /// Distance evaluations spent during construction.
    pub fn build_ndist(&self) -> u64 {
        match self {
            LocalIndex::Hnsw(h) => h.build_ndist(),
            LocalIndex::VpTree(t) => t.build_ndist(),
            LocalIndex::Brute { .. } => 0,
        }
    }

    /// Approximate resident bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            LocalIndex::Hnsw(h) => h.approx_bytes(),
            LocalIndex::VpTree(t) => t.approx_bytes(),
            LocalIndex::Brute { data, .. } => data.as_flat().len() * 4,
        }
    }

    /// `true` when every reported neighbour is exact.
    pub fn is_exact(&self) -> bool {
        !matches!(self, LocalIndex::Hnsw(_))
    }

    /// `true` when the partition supports live mutation (HNSW only — the
    /// tree and brute-force kinds are frozen ground-truth baselines).
    pub fn supports_mutation(&self) -> bool {
        matches!(self, LocalIndex::Hnsw(_))
    }

    /// The underlying HNSW graph, when this partition is served by one.
    pub fn as_hnsw(&self) -> Option<&Hnsw> {
        match self {
            LocalIndex::Hnsw(h) => Some(h),
            _ => None,
        }
    }

    /// Appends a vector through the incremental HNSW insertion path and
    /// returns its local row id. `None` when the kind is immutable.
    pub fn insert(&mut self, v: &[f32]) -> Option<u32> {
        match self {
            LocalIndex::Hnsw(h) => Some(h.add(v)),
            _ => None,
        }
    }

    /// Tombstones local row `local_id`. Returns `Some(changed)` for an
    /// HNSW partition (`false` when the row was already tombstoned),
    /// `None` when the kind is immutable.
    pub fn remove(&mut self, local_id: u32) -> Option<bool> {
        match self {
            LocalIndex::Hnsw(h) => Some(h.remove(local_id)),
            _ => None,
        }
    }

    /// `true` when local row `id` is live (always `true` for immutable
    /// kinds, which cannot hold tombstones).
    pub fn is_live(&self, id: u32) -> bool {
        match self {
            LocalIndex::Hnsw(h) => h.is_live(id),
            _ => true,
        }
    }

    /// Rows that are not tombstoned (== [`LocalIndex::len`] for immutable
    /// kinds).
    pub fn live_len(&self) -> usize {
        match self {
            LocalIndex::Hnsw(h) => h.live_len(),
            other => other.len(),
        }
    }

    /// Tombstoned fraction of the partition (`0.0` for immutable kinds).
    pub fn tombstone_ratio(&self) -> f64 {
        match self {
            LocalIndex::Hnsw(h) => h.tombstone_ratio(),
            _ => 0.0,
        }
    }

    /// Partition-local mutation epoch (`0` forever for immutable kinds).
    pub fn mutation_epoch(&self) -> u64 {
        match self {
            LocalIndex::Hnsw(h) => h.mutation_epoch(),
            _ => 0,
        }
    }

    /// Detaches accumulated tombstones from the HNSW graph (see
    /// [`Hnsw::repair_tombstones`]); returns how many were detached (`0`
    /// for immutable kinds).
    pub fn repair_tombstones(&mut self) -> usize {
        match self {
            LocalIndex::Hnsw(h) => h.repair_tombstones(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;

    fn rows() -> VectorSet {
        synth::sift_like(500, 12, 55)
    }

    #[test]
    fn all_kinds_build_and_search() {
        let mut scratch = SearchScratch::default();
        for kind in [
            LocalIndexKind::Hnsw,
            LocalIndexKind::VpExact,
            LocalIndexKind::BruteForce,
        ] {
            let idx = LocalIndex::build(kind, rows(), Distance::L2, HnswConfig::with_m(8), 1);
            assert_eq!(idx.len(), 500);
            assert_eq!(idx.dim(), 12);
            let (r, ndist) = idx.search(rows().get(3), 5, 32, &mut scratch);
            assert_eq!(r[0].id, 3, "{kind:?} should find the point itself");
            assert!(ndist > 0, "{kind:?} must report work");
            assert!(idx.approx_bytes() > 0);
        }
    }

    #[test]
    fn exact_kinds_agree_with_brute_force() {
        let data = rows();
        let mut scratch = SearchScratch::default();
        let vp = LocalIndex::build(
            LocalIndexKind::VpExact,
            data.clone(),
            Distance::L2,
            HnswConfig::default(),
            2,
        );
        let brute = LocalIndex::build(
            LocalIndexKind::BruteForce,
            data.clone(),
            Distance::L2,
            HnswConfig::default(),
            2,
        );
        let q = synth::queries_near(&data, 10, 0.05, 3);
        for qi in 0..10 {
            let (a, _) = vp.search(q.get(qi), 7, 0, &mut scratch);
            let (b, _) = brute.search(q.get(qi), 7, 0, &mut scratch);
            assert_eq!(a, b, "exact kinds must agree on query {qi}");
        }
    }

    #[test]
    fn search_many_matches_sequential_for_every_thread_count() {
        let data = rows();
        let queries: Vec<Vec<f32>> = synth::queries_near(&data, 16, 0.05, 7)
            .iter()
            .map(<[f32]>::to_vec)
            .collect();
        for kind in [
            LocalIndexKind::Hnsw,
            LocalIndexKind::VpExact,
            LocalIndexKind::BruteForce,
        ] {
            let idx = LocalIndex::build(kind, data.clone(), Distance::L2, HnswConfig::with_m(8), 9);
            let mut scratch = SearchScratch::default();
            let expect: Vec<_> = queries
                .iter()
                .map(|q| idx.search(q, 5, 48, &mut scratch))
                .collect();
            for threads in [1, 2, 7] {
                let got = idx.search_many(&queries, 5, 48, threads);
                assert_eq!(got, expect, "{kind:?} with threads={threads} diverged");
            }
        }
    }

    #[test]
    fn search_many_empty_batch() {
        let idx = LocalIndex::build(
            LocalIndexKind::Hnsw,
            rows(),
            Distance::L2,
            HnswConfig::with_m(8),
            9,
        );
        assert!(idx.search_many(&[], 5, 48, 4).is_empty());
    }

    #[test]
    fn exactness_flags() {
        let h = LocalIndex::build(
            LocalIndexKind::Hnsw,
            rows(),
            Distance::L2,
            HnswConfig::with_m(8),
            4,
        );
        let v = LocalIndex::build(
            LocalIndexKind::VpExact,
            rows(),
            Distance::L2,
            HnswConfig::with_m(8),
            4,
        );
        assert!(!h.is_exact());
        assert!(v.is_exact());
        assert!(h.build_ndist() > 0);
        assert!(v.build_ndist() > 0);
    }
}
