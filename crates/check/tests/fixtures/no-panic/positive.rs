fn guard(x: u32) {
    if x > 3 {
        panic!("x out of range: {x}");
    }
}

fn exhaustive(y: u32) -> u32 {
    match y {
        0 => 1,
        _ => unreachable!(),
    }
}
