//! Routing-policy parity: the deprecated `with_replication(r)` shim must
//! be indistinguishable from `with_routing(RoutingPolicy::Static(r))` —
//! byte-identical [`fastann_core::QueryReport`]s, virtual times included —
//! and an explicit uniform [`ReplicaMap`] snapshot must match the implicit
//! policy-base dispatch. Callers migrating to the routing API must never
//! see a behaviour change.

use fastann_core::{
    DistIndex, EngineConfig, ReplicaMap, RoutingPolicy, SearchOptions, SearchRequest,
};
use fastann_data::{synth, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_mpisim::FaultPlan;

fn fixture() -> (VectorSet, DistIndex) {
    let data = synth::sift_like(2_500, 16, 31);
    let queries = synth::queries_near(&data, 20, 0.02, 32);
    let cfg = EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(31))
        .with_seed(31);
    let index = DistIndex::build(&data, cfg);
    (queries, index)
}

#[test]
fn replication_shim_matches_static_routing() {
    let (queries, index) = fixture();
    for r in [1usize, 2, 3] {
        for one_sided in [false, true] {
            #[allow(deprecated)]
            let legacy_opts = SearchOptions::new(10)
                .with_one_sided(one_sided)
                .with_replication(r);
            let legacy = SearchRequest::new(&index, &queries).opts(legacy_opts).run();
            let routed = SearchRequest::new(&index, &queries)
                .opts(
                    SearchOptions::new(10)
                        .with_one_sided(one_sided)
                        .with_routing(RoutingPolicy::Static(r)),
                )
                .run();
            assert_eq!(
                legacy, routed,
                "with_replication({r}) diverged from Static({r}) (one_sided={one_sided})"
            );
        }
    }
}

#[test]
fn uniform_replica_map_matches_policy_base() {
    let (queries, index) = fixture();
    for r in [1usize, 3] {
        let opts = SearchOptions::new(10).with_routing(RoutingPolicy::Static(r));
        let implicit = SearchRequest::new(&index, &queries).opts(opts).run();
        let map = ReplicaMap::uniform(index.n_partitions(), r);
        let explicit = SearchRequest::new(&index, &queries)
            .opts(opts)
            .replicas(&map)
            .run();
        assert_eq!(
            implicit, explicit,
            "uniform ReplicaMap({r}) diverged from policy base"
        );
    }
}

#[test]
fn shim_matches_static_routing_under_chaos() {
    let (queries, index) = fixture();
    let plan = FaultPlan::new(0xBEEF)
        .drop_msgs(None, None, None, 0.15)
        .delay_msgs(None, None, None, 0.20, 2e6);
    #[allow(deprecated)]
    let legacy_opts = SearchOptions::new(10)
        .with_replication(2)
        .with_timeout_ns(5e5)
        .with_max_retries(2);
    let legacy = SearchRequest::new(&index, &queries)
        .opts(legacy_opts)
        .chaos(&plan)
        .run();
    let routed = SearchRequest::new(&index, &queries)
        .opts(
            SearchOptions::new(10)
                .with_routing(RoutingPolicy::Static(2))
                .with_timeout_ns(5e5)
                .with_max_retries(2),
        )
        .chaos(&plan)
        .run();
    assert_eq!(
        legacy, routed,
        "chaos path diverged between shim and policy"
    );
    assert!(legacy.retries > 0, "plan should force retries");
}

#[test]
fn po2_routing_preserves_results() {
    // load-aware slot choice may move probes between replicas, never
    // change what a query returns
    let (queries, index) = fixture();
    let rr = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10).with_routing(RoutingPolicy::Static(3)))
        .run();
    let po2 = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10).with_routing(RoutingPolicy::PowerOfTwo { base: 3, max: 3 }))
        .run();
    assert_eq!(rr.results, po2.results, "routing policy changed results");
    assert_eq!(
        rr.per_partition_probes, po2.per_partition_probes,
        "per-partition probe counts are placement-invariant"
    );
}
