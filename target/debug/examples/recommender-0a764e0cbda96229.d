/root/repo/target/debug/examples/recommender-0a764e0cbda96229.d: examples/recommender.rs

/root/repo/target/debug/examples/recommender-0a764e0cbda96229: examples/recommender.rs

examples/recommender.rs:
