//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses*: [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] sampling methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`choose`, `choose_multiple`, `shuffle`). The generator is
//! xoshiro256** seeded through SplitMix64 — the same family the real
//! `SmallRng` uses on 64-bit targets. Streams are deterministic per seed but
//! are **not** bit-compatible with upstream `rand`; nothing in the
//! workspace depends on upstream streams, only on per-seed determinism.

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array upstream; mirrored here).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self.next_u64(), range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self.next_u64()) < p
    }
}

/// Types samplable from raw bits (stand-in for `rand::distributions::Standard`).
pub trait Standard {
    /// Maps 64 uniform random bits to a value.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(bits: u64) -> f64 {
        // 53 mantissa bits -> uniform [0, 1)
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(bits: u64) -> f32 {
        // 24 bits -> uniform [0, 1)
        (bits >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    #[inline]
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Types samplable uniformly from a range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps 64 uniform random bits into `[lo, hi)`.
    fn sample_range(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (bits as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range(bits: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let u = f64::sample(bits);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range(bits: u64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let u = f32::sample(bits);
        lo + u * (hi - lo)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256** seeded through
    /// SplitMix64 (the construction upstream `SmallRng` uses on 64-bit
    /// targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&x| x == 0) {
                // xoshiro must not start from the all-zero state
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            Self { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers (subset of `rand::seq`).
pub mod seq {
    use super::rngs::SmallRng;
    use super::Rng;

    /// Random selection from slices (subset of `rand::seq::SliceRandom`,
    /// monomorphised to [`SmallRng`] — the only generator this workspace
    /// uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// One uniformly chosen element, `None` on an empty slice.
        fn choose<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a Self::Item>;

        /// `amount` distinct elements by partial Fisher–Yates; order is the
        /// selection order. Returns fewer when the slice is shorter.
        fn choose_multiple<'a>(
            &'a self,
            rng: &mut SmallRng,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle(&mut self, rng: &mut SmallRng);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<'a>(&'a self, rng: &mut SmallRng) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<'a>(
            &'a self,
            rng: &mut SmallRng,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let n = self.len();
            let amount = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..n);
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle(&mut self, rng: &mut SmallRng) {
            let n = self.len();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let f = r.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let x = r.gen_range(0.0f64..1.0);
            lo_seen |= x < 0.1;
            hi_seen |= x > 0.9;
        }
        assert!(lo_seen && hi_seen, "range sampling should cover the span");
    }

    #[test]
    fn choose_multiple_distinct() {
        let v: Vec<u32> = (0..50).collect();
        let mut r = SmallRng::seed_from_u64(5);
        let picked: Vec<u32> = v.choose_multiple(&mut r, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10, "choose_multiple must not repeat elements");
    }

    #[test]
    fn choose_multiple_clamps_to_len() {
        let v = [1u8, 2, 3];
        let mut r = SmallRng::seed_from_u64(5);
        let picked: Vec<u8> = v.choose_multiple(&mut r, 10).copied().collect();
        let mut d = picked.clone();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 3]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut r = SmallRng::seed_from_u64(11);
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(13);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
