//! Scalar quantization (SQ8): the simplest member of the compressed-index
//! family the paper contrasts itself against.
//!
//! Section V-F argues that compression-based billion-scale indexes
//! "cannot achieve near perfect recalls" — quantization error puts a
//! ceiling on recall that no amount of extra search effort removes, while
//! the paper's uncompressed distributed index reaches recall ≈ 1 by raising
//! M. [`Sq8`] lets the benchmark suite demonstrate that plateau: vectors
//! are compressed 4× (f32 → u8 per dimension, per-dimension affine grid)
//! and searched exhaustively in the quantized domain.

use crate::metric::Distance;
use crate::topk::{Neighbor, TopK};
use crate::vector::VectorSet;

/// An SQ8-compressed vector set: one byte per dimension, per-dimension
/// affine dequantization `x ≈ lo + code * (hi - lo) / 255`.
#[derive(Clone, Debug)]
pub struct Sq8 {
    dim: usize,
    lo: Vec<f32>,
    step: Vec<f32>,
    codes: Vec<u8>,
    n: usize,
}

impl Sq8 {
    /// Quantizes `data` (trains the per-dimension grid on the data itself).
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn encode(data: &VectorSet) -> Sq8 {
        assert!(!data.is_empty(), "cannot quantize an empty set");
        let dim = data.dim();
        let (lo, hi) = data.bounds().expect("non-empty");
        let step: Vec<f32> = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| ((h - l) / 255.0).max(f32::MIN_POSITIVE))
            .collect();
        let mut codes = Vec::with_capacity(data.len() * dim);
        for row in data.iter() {
            for d in 0..dim {
                let c = ((row[d] - lo[d]) / step[d]).round().clamp(0.0, 255.0);
                codes.push(c as u8);
            }
        }
        Sq8 {
            dim,
            lo,
            step,
            codes,
            n: data.len(),
        }
    }

    /// Number of compressed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when empty (never after `encode`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Compressed bytes (codes only; the grid adds `2 × dim × 4`).
    pub fn code_bytes(&self) -> usize {
        self.codes.len()
    }

    /// Dequantizes row `i` (for inspection/testing).
    pub fn decode(&self, i: usize) -> Vec<f32> {
        let s = i * self.dim;
        self.codes[s..s + self.dim]
            .iter()
            .enumerate()
            .map(|(d, &c)| self.lo[d] + c as f32 * self.step[d])
            .collect()
    }

    /// Quantizes a query onto the trained grid without storing it,
    /// returning one code byte per dimension. Two queries produce the same
    /// byte string iff they round to the same grid cell in every
    /// dimension, so the codes double as a compact (deliberately lossy)
    /// cache key for online serving: an exact re-submission always maps to
    /// the same key, while near-duplicate queries coalesce onto one entry.
    /// Callers that need exactness on top (the serving result cache does)
    /// must verify the stored query against the incoming one on a hit.
    ///
    /// # Panics
    /// Panics if `q.len() != self.dim()`.
    pub fn encode_query(&self, q: &[f32]) -> Vec<u8> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        q.iter()
            .enumerate()
            .map(|(d, &x)| ((x - self.lo[d]) / self.step[d]).round().clamp(0.0, 255.0) as u8)
            .collect()
    }

    /// Exhaustive k-NN in the quantized domain: the query is quantized to
    /// the same grid and distances computed between dequantized values.
    /// This is where the recall ceiling comes from — true neighbours whose
    /// distance gap is below the quantization error get misranked, no
    /// matter how hard you search.
    pub fn knn(&self, q: &[f32], k: usize, dist: Distance) -> Vec<Neighbor> {
        // dequantized query (same information loss the stored vectors had)
        let qq: Vec<f32> = self
            .encode_query(q)
            .iter()
            .enumerate()
            .map(|(d, &c)| self.lo[d] + c as f32 * self.step[d])
            .collect();
        let mut top = TopK::new(k);
        let mut row = vec![0f32; self.dim];
        for i in 0..self.n {
            let s = i * self.dim;
            for (d, r) in row.iter_mut().enumerate() {
                *r = self.lo[d] + self.codes[s + d] as f32 * self.step[d];
            }
            top.push(Neighbor::new(i as u32, dist.eval(&qq, &row)));
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth;
    use crate::synth;

    #[test]
    fn decode_error_bounded_by_step() {
        let data = synth::sift_like(200, 8, 1);
        let sq = Sq8::encode(&data);
        for i in (0..200).step_by(37) {
            let orig = data.get(i);
            let dec = sq.decode(i);
            for d in 0..8 {
                assert!(
                    (orig[d] - dec[d]).abs() <= sq.step[d] * 0.51,
                    "dim {d}: {} vs {}",
                    orig[d],
                    dec[d]
                );
            }
        }
    }

    #[test]
    fn compression_is_4x() {
        let data = synth::sift_like(100, 32, 2);
        let sq = Sq8::encode(&data);
        assert_eq!(sq.code_bytes(), 100 * 32);
        assert_eq!(sq.code_bytes() * 4, data.as_flat().len() * 4);
    }

    #[test]
    fn quantized_search_is_good_but_not_perfect() {
        // SIFT-like data has byte-range values, so SQ8 is nearly lossless
        // there; use fine-grained unit-norm data where quantization bites.
        let data = synth::deep_like(3000, 24, 3);
        let queries = synth::queries_near(&data, 40, 0.01, 4);
        let sq = Sq8::encode(&data);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        let approx: Vec<_> = (0..queries.len())
            .map(|i| sq.knn(queries.get(i), 10, Distance::L2))
            .collect();
        let recall = ground_truth::recall_at_k(&approx, &gt, 10);
        assert!(recall.mean > 0.6, "SQ8 recall collapsed: {}", recall.mean);
        assert!(
            recall.mean < 1.0,
            "quantization should cost at least a little recall on dense data"
        );
    }

    #[test]
    fn exact_grid_points_round_trip() {
        // data already on the grid -> lossless
        let mut data = VectorSet::new(2);
        data.push(&[0.0, 0.0]);
        data.push(&[255.0, 255.0]);
        data.push(&[128.0, 64.0]);
        let sq = Sq8::encode(&data);
        for i in 0..3 {
            let dec = sq.decode(i);
            for (got, want) in dec.iter().zip(data.get(i)) {
                assert!((got - want).abs() < 0.51);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_encode_panics() {
        let _ = Sq8::encode(&VectorSet::new(4));
    }

    #[test]
    fn encode_query_is_a_stable_lossy_key() {
        let data = synth::sift_like(300, 16, 9);
        let sq = Sq8::encode(&data);
        let q: Vec<f32> = data.get(7).to_vec();

        // exact resubmission -> identical key
        assert_eq!(sq.encode_query(&q), sq.encode_query(&q));

        // sub-step perturbation -> same grid cell, same key
        let mut near = q.clone();
        near[0] += sq.step[0] * 0.2;
        assert_eq!(sq.encode_query(&q), sq.encode_query(&near));

        // a far query -> different key
        let far: Vec<f32> = data.get(100).to_vec();
        assert_ne!(sq.encode_query(&q), sq.encode_query(&far));

        // the key is exactly the stored code path: encoding row i's vector
        // reproduces row i's stored codes
        let key = sq.encode_query(data.get(7));
        assert_eq!(&key[..], &sq.codes[7 * sq.dim..8 * sq.dim]);
    }

    #[test]
    #[should_panic]
    fn encode_query_rejects_dim_mismatch() {
        let data = synth::sift_like(10, 8, 11);
        let _ = Sq8::encode(&data).encode_query(&[0.0; 4]);
    }
}
