/root/repo/target/release/deps/chaos-c5bf94610fd64260.d: crates/core/tests/chaos.rs

/root/repo/target/release/deps/chaos-c5bf94610fd64260: crates/core/tests/chaos.rs

crates/core/tests/chaos.rs:
