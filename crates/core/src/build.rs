//! Distributed index construction — paper Section IV-A, Algorithms 1–2.
//!
//! All worker nodes cooperatively build the VP tree: the whole group agrees
//! on a vantage point (per-rank candidates scored locally, refined by the
//! group master), computes the median radius µ as a weighted median of
//! per-rank medians (the distributed median-of-medians step), shuffles rows
//! with `Alltoallv` so the left half of the ranks holds the in-ball points,
//! and recurses until every *node* owns its share; a node-local phase then
//! continues the same splitting down to one partition per *core* (the
//! hybrid MPI-OpenMP structure of the paper). Finally each partition is
//! indexed with HNSW, one virtual core per partition.

use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use fastann_data::select::{median, weighted_median};
use fastann_data::VectorSet;
use fastann_mpisim::{wire, Cluster, Rank, ReduceOp, SimConfig, Topology, VThreadPool};
use fastann_vptree::{select_vantage, PartitionTreeBuilder};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use rayon::prelude::*;

use crate::config::EngineConfig;
use crate::local::LocalIndex;
use crate::router::Router;
use crate::stats::BuildStats;

const TAG_SUBTREE: u64 = 101;

/// Vantage-point candidates sampled per rank (paper Algorithm 1 samples
/// 100 elements; we cap by the local row count).
const N_CANDIDATES: usize = 16;
/// Local rows sampled to score each candidate.
const N_SCORE_SAMPLE: usize = 256;

/// One data partition: the rows' global ids and the local index over them.
pub struct Partition {
    /// Partition id (== owning core index).
    pub id: u32,
    /// Global dataset row id of each local row.
    pub global_ids: Vec<u32>,
    /// Local search index (HNSW in the paper's configuration).
    pub index: LocalIndex,
}

impl Partition {
    /// Resident bytes (vectors + graph), for replication memory accounting.
    pub fn approx_bytes(&self) -> usize {
        self.index.approx_bytes() + self.global_ids.len() * 4
    }
}

/// A built distributed index: every partition's HNSW plus the master-side
/// VP-tree skeleton. Partitions are stored once and shared (`Arc`) into the
/// simulated worker nodes; replication is a dispatch/memory-accounting
/// concern, not a data-copy concern, on this substrate.
pub struct DistIndex {
    /// Engine configuration the index was built with.
    pub config: EngineConfig,
    /// All partitions, indexed by partition id.
    pub partitions: Arc<Vec<Partition>>,
    /// Master-side query router (VP-tree skeleton in the paper's design).
    pub router: Arc<Router>,
    /// Construction accounting.
    pub build_stats: BuildStats,
    /// Engine-level mutation epoch: bumped once per effective mutation
    /// batch (see [`crate::MutationRequest`]); result caches key on it.
    pub mutation_epoch: u64,
    /// Append-only record of applied mutations (in-memory only).
    pub mutation_log: crate::mutation::MutationLog,
}

impl DistIndex {
    /// Builds the distributed index over `data` on a simulated cluster of
    /// `config.n_nodes()` worker nodes.
    ///
    /// # Panics
    /// Panics if `data` has fewer than `2 × n_cores` points or the metric
    /// is not a true metric.
    pub fn build(data: &VectorSet, config: EngineConfig) -> DistIndex {
        assert!(
            config.metric.is_metric(),
            "VP partitioning requires a true metric"
        );
        assert!(
            data.len() >= config.n_cores * 2,
            "need at least {} points for {} partitions",
            config.n_cores * 2,
            config.n_cores
        );
        let n_nodes = config.n_nodes();
        let sim = SimConfig::new(n_nodes)
            .topology(Topology::one_rank_per_node())
            .net(config.net)
            .cost(config.cost);
        let cluster = Cluster::new(sim);
        let cfg_ref = &config;
        let outs = cluster.run(move |rank| build_node(rank, data, cfg_ref));

        // Assemble host-side index from per-node outputs.
        let mut partitions: Vec<Option<Partition>> = Vec::with_capacity(config.n_cores);
        partitions.resize_with(config.n_cores, || None);
        let mut skeleton: Option<Bytes> = None;
        let mut vptree_ns = 0f64;
        let mut total_ns = 0f64;
        let mut hnsw_ndist = 0u64;
        let mut shuffle_bytes = 0u64;
        for out in outs {
            for p in out.partitions {
                let slot = p.id as usize;
                assert!(partitions[slot].is_none(), "duplicate partition {slot}");
                partitions[slot] = Some(p);
            }
            if let Some(s) = out.skeleton {
                skeleton = Some(s);
            }
            vptree_ns = vptree_ns.max(out.vptree_end_ns);
            total_ns = total_ns.max(out.hnsw_end_ns);
            hnsw_ndist += out.hnsw_ndist;
            shuffle_bytes += out.shuffle_bytes;
        }
        let partitions: Vec<Partition> = partitions
            .into_iter()
            .map(|p| p.expect("missing partition"))
            .collect();
        let mut skel = skeleton.expect("node 0 produced the skeleton");
        let mut builder = PartitionTreeBuilder::new();
        let root = decode_vp_subtree(&mut skel, &mut builder);
        let tree = builder.finish(root, config.metric);
        assert_eq!(
            tree.n_partitions(),
            config.n_cores,
            "skeleton / partition mismatch"
        );

        let build_stats = BuildStats {
            total_ns,
            vptree_ns,
            hnsw_ns: total_ns - vptree_ns,
            shuffle_bytes,
            hnsw_ndist,
            partition_sizes: partitions.iter().map(|p| p.global_ids.len()).collect(),
        };
        DistIndex {
            config,
            partitions: Arc::new(partitions),
            router: Arc::new(Router::VpTree(tree)),
            build_stats,
            mutation_epoch: 0,
            mutation_log: crate::mutation::MutationLog::default(),
        }
    }

    /// Builds a **flat-pivot** index — the baseline partitioning of the
    /// paper's reference [16]: `n_cores` pivots sampled from the data,
    /// every point assigned to its closest pivot. Partition sizes are as
    /// imbalanced as the data's cluster structure makes them, and routing
    /// costs `O(P)` per query; compare with [`DistIndex::build`] via
    /// `repro baseline-pivot`.
    ///
    /// (Built host-side: the flat scheme's construction is a trivial
    /// scatter and is not part of any timed comparison.)
    pub fn build_flat_pivot(data: &VectorSet, config: EngineConfig) -> DistIndex {
        use rand::seq::SliceRandom;
        assert!(
            data.len() >= config.n_cores * 2,
            "need at least {} points for {} partitions",
            config.n_cores * 2,
            config.n_cores
        );
        let p = config.n_cores;
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xf1a7);
        let all: Vec<u32> = (0..data.len() as u32).collect();
        let pivot_ids: Vec<u32> = all.choose_multiple(&mut rng, p).copied().collect();
        let mut pivots = VectorSet::with_capacity(data.dim(), p);
        for &id in &pivot_ids {
            pivots.push(data.get(id as usize));
        }
        // closest-pivot assignment
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); p];
        for (i, row) in data.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (j, pv) in pivots.iter().enumerate() {
                let d = config.metric.eval(row, pv);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            members[best].push(i as u32);
        }
        let mut partitions = Vec::with_capacity(p);
        for (pid, gids) in members.into_iter().enumerate() {
            let rows = data.gather(&gids);
            let index = LocalIndex::build(
                config.local_index,
                rows,
                config.metric,
                config.hnsw,
                config.seed ^ ((pid as u64) << 8),
            );
            partitions.push(Partition {
                id: pid as u32,
                global_ids: gids,
                index,
            });
        }
        let build_stats = BuildStats {
            partition_sizes: partitions.iter().map(|q| q.global_ids.len()).collect(),
            ..BuildStats::default()
        };
        let metric = config.metric;
        DistIndex {
            config,
            partitions: Arc::new(partitions),
            router: Arc::new(Router::FlatPivot { pivots, metric }),
            build_stats,
            mutation_epoch: 0,
            mutation_log: crate::mutation::MutationLog::default(),
        }
    }

    /// Number of partitions (== cores).
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.partitions[0].index.dim()
    }

    /// The single *home* partition of `q`: a margin-0, fan-out-1 route
    /// through the skeleton. This is the partition whose queue a
    /// per-partition admission controller bills the request against —
    /// cheap (one skeleton descent), deterministic, and independent of
    /// the wider fan-out the dispatched search may use.
    pub fn home_partition(&self, q: &[f32]) -> u32 {
        let cfg = fastann_vptree::RouteConfig {
            margin_frac: 0.0,
            max_partitions: 1,
        };
        let (parts, _ndist) = self.router.route(q, &cfg);
        parts.first().copied().unwrap_or(0)
    }

    /// Bytes resident on each node for a uniform replication factor `r`
    /// (paper Section IV-C2's memory cost): a node holds every partition
    /// whose workgroup includes one of its cores.
    pub fn node_memory_bytes(&self, replication: usize) -> Vec<usize> {
        self.node_memory_bytes_for(&vec![replication; self.config.n_cores])
    }

    /// Bytes resident on each node under *per-partition* replica counts —
    /// the memory bound the serve-layer adaptive replication controller
    /// checks before raising a hot partition. `counts[part]` replicas of
    /// partition `part` live on cores `part..part+counts[part]-1 (mod P)`.
    pub fn node_memory_bytes_for(&self, counts: &[usize]) -> Vec<usize> {
        let t = self.config.cores_per_node;
        let p = self.config.n_cores;
        let mut per_node = vec![0usize; self.config.n_nodes()];
        for (part, &r) in counts.iter().enumerate().take(self.partitions.len()) {
            // partition `part` lives on cores part..part+r-1 (mod P)
            let mut nodes_hit = std::collections::HashSet::new();
            for j in 0..r.min(p) {
                nodes_hit.insert(((part + j) % p) / t);
            }
            // det:fold — each node occurs once; += into disjoint slots commutes
            for n in nodes_hit {
                per_node[n] += self.partitions[part].approx_bytes();
            }
        }
        per_node
    }
}

struct NodeBuildOut {
    partitions: Vec<Partition>,
    skeleton: Option<Bytes>,
    vptree_end_ns: f64,
    hnsw_end_ns: f64,
    hnsw_ndist: u64,
    shuffle_bytes: u64,
}

/// Encoded VP subtree: leaf = [0, pid]; inner = [1, mu, vp…, left…, right…].
fn encode_leaf(pid: u32) -> BytesMut {
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, 0);
    wire::put_u32(&mut b, pid);
    b
}

fn encode_inner(mu: f32, vp: &[f32], left: &[u8], right: &[u8]) -> BytesMut {
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, 1);
    wire::put_f32(&mut b, mu);
    wire::put_f32_slice(&mut b, vp);
    b.extend_from_slice(left);
    b.extend_from_slice(right);
    b
}

fn decode_vp_subtree(buf: &mut Bytes, b: &mut PartitionTreeBuilder) -> u32 {
    let tag = wire::get_u32(buf);
    if tag == 0 {
        let pid = wire::get_u32(buf);
        b.leaf(pid)
    } else {
        let mu = wire::get_f32(buf);
        let vp = wire::get_f32_vec(buf);
        let left = decode_vp_subtree(buf, b);
        let right = decode_vp_subtree(buf, b);
        b.inner(vp, mu, left, right)
    }
}

fn encode_rows(ids: &[u32], rows: &VectorSet, take: &[usize]) -> Bytes {
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, take.len() as u32);
    for &i in take {
        wire::put_u32(&mut b, ids[i]);
        for &x in rows.get(i) {
            wire::put_f32(&mut b, x);
        }
    }
    b.freeze()
}

fn decode_rows(buf: &mut Bytes, dim: usize, ids: &mut Vec<u32>, rows: &mut VectorSet) {
    let n = wire::get_u32(buf) as usize;
    let mut tmp = vec![0f32; dim];
    for _ in 0..n {
        ids.push(wire::get_u32(buf));
        for x in tmp.iter_mut() {
            *x = wire::get_f32(buf);
        }
        rows.push(&tmp);
    }
}

/// Per-node construction: distributed halving, local splitting, HNSW.
fn build_node(rank: &mut Rank, data: &VectorSet, cfg: &EngineConfig) -> NodeBuildOut {
    let dim = data.dim();
    let t_cores = cfg.cores_per_node;
    let n_nodes = cfg.n_nodes();
    let world = rank.world();
    let node_idx = rank.rank();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0xb11d ^ node_idx as u64));

    // Initial equi-partition, contiguous slices (paper Section IV).
    let n = data.len();
    let base = n / n_nodes;
    let extra = n % n_nodes;
    let my_start: usize = (0..node_idx).map(|i| base + usize::from(i < extra)).sum();
    let my_len = base + usize::from(node_idx < extra);
    let mut ids: Vec<u32> = (my_start as u32..(my_start + my_len) as u32).collect();
    let mut rows = VectorSet::with_capacity(dim, my_len);
    for &id in &ids {
        rows.push(data.get(id as usize));
    }

    let mut comm = world.clone();
    let mut path: Vec<(Vec<f32>, f32, usize)> = Vec::new(); // (vp, mu, half)
    let bytes_before = rank.stats().bytes_sent;

    while comm.size() > 1 {
        let me = comm.my_index(rank);
        let size = comm.size();
        let half = size / 2;

        // --- Algorithm 1: distributed vantage point selection ---
        let vp = {
            // local candidate: best of N_CANDIDATES sampled rows, scored
            // against a local sample
            let local_best: Option<Vec<f32>> = if rows.is_empty() {
                None
            } else {
                let all: Vec<u32> = (0..rows.len() as u32).collect();
                let cands: Vec<u32> = all
                    .choose_multiple(&mut rng, N_CANDIDATES.min(rows.len()))
                    .copied()
                    .collect();
                let sample: Vec<u32> = all
                    .choose_multiple(&mut rng, N_SCORE_SAMPLE.min(rows.len()))
                    .copied()
                    .collect();
                let (best, ndist) = select_vantage(&rows, &cands, &rows, &sample, cfg.metric);
                rank.charge_dists(ndist, dim);
                Some(rows.get(cands[best] as usize).to_vec())
            };
            // gather candidates to the group master
            let mut b = BytesMut::new();
            match &local_best {
                Some(v) => wire::put_f32_slice(&mut b, v),
                None => wire::put_f32_slice(&mut b, &[]),
            }
            let gathered = comm.gather(rank, 0, b.freeze());
            // master refines: scores the received candidates against its
            // own local sample and broadcasts the winner
            let winner = if me == 0 {
                let mut cand_set = VectorSet::new(dim);
                for mut part in gathered.expect("root gathers") {
                    let v = wire::get_f32_vec(&mut part);
                    if v.len() == dim {
                        cand_set.push(&v);
                    }
                }
                assert!(!cand_set.is_empty(), "no vantage candidates survived");
                let cand_ids: Vec<u32> = (0..cand_set.len() as u32).collect();
                let score_set = if rows.is_empty() { &cand_set } else { &rows };
                let all: Vec<u32> = (0..score_set.len() as u32).collect();
                let sample: Vec<u32> = all
                    .choose_multiple(&mut rng, N_SCORE_SAMPLE.min(score_set.len()))
                    .copied()
                    .collect();
                let (best, ndist) =
                    select_vantage(&cand_set, &cand_ids, score_set, &sample, cfg.metric);
                rank.charge_dists(ndist, dim);
                let mut b = BytesMut::new();
                wire::put_f32_slice(&mut b, cand_set.get(best));
                Some(b.freeze())
            } else {
                None
            };
            let mut w = comm.bcast(rank, 0, winner);
            wire::get_f32_vec(&mut w)
        };

        // --- Algorithm 2 line 6: distributed median radius ---
        rank.charge_dists(rows.len() as u64, dim);
        let dists: Vec<f32> = rows.iter().map(|r| cfg.metric.eval(&vp, r)).collect();
        let local_med = if dists.is_empty() {
            f32::NAN
        } else {
            median(&mut dists.clone())
        };
        let mut b = BytesMut::new();
        wire::put_f32(&mut b, local_med);
        wire::put_u64(&mut b, rows.len() as u64);
        let pairs = comm.all_gather(rank, b.freeze());
        let mut wm: Vec<(f32, u64)> = pairs
            .into_iter()
            .map(|mut p| (wire::get_f32(&mut p), wire::get_u64(&mut p)))
            .filter(|&(m, w)| w > 0 && m.is_finite())
            .collect();
        let mu = weighted_median(&mut wm);

        // --- shuffle: in-ball rows to the left half, rest to the right ---
        let mut left_rows: Vec<usize> = Vec::new();
        let mut right_rows: Vec<usize> = Vec::new();
        for (i, &d) in dists.iter().enumerate() {
            if d <= mu {
                left_rows.push(i);
            } else {
                right_rows.push(i);
            }
        }
        let mut payloads: Vec<Bytes> = Vec::with_capacity(size);
        for j in 0..size {
            let (pool, nparts, basej) = if j < half {
                (&left_rows, half, 0usize)
            } else {
                (&right_rows, size - half, half)
            };
            let jd = j - basej;
            let take: Vec<usize> = pool.iter().copied().skip(jd).step_by(nparts).collect();
            payloads.push(encode_rows(&ids, &rows, &take));
        }
        let received = comm.alltoallv(rank, payloads);
        let mut new_ids = Vec::new();
        let mut new_rows = VectorSet::new(dim);
        for mut part in received {
            decode_rows(&mut part, dim, &mut new_ids, &mut new_rows);
        }
        ids = new_ids;
        rows = new_rows;

        path.push((vp, mu, half));
        comm = if me < half {
            comm.subset(0, half)
        } else {
            comm.subset(half, size)
        };
    }

    // --- node-local phase: split into one partition per core ---
    let first_pid = (node_idx * t_cores) as u32;
    let (local_subtree, local_parts) =
        split_local(rank, cfg, &mut rng, ids, rows, t_cores, first_pid);

    // --- skeleton assembly, bottom-up along the recorded path ---
    let mut subtree = local_subtree;
    let me = world.my_index(rank);
    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(path.len() + 1);
    {
        let mut lo = 0usize;
        let mut hi = world.size();
        bounds.push((lo, hi));
        for &(_, _, half) in &path {
            let mid = lo + half;
            if me < mid {
                hi = mid;
            } else {
                lo = mid;
            }
            bounds.push((lo, hi));
        }
    }
    for level in (0..path.len()).rev() {
        let (lo, _hi) = bounds[level];
        let (ref vp, mu, half) = path[level];
        let mid = lo + half;
        if me == mid {
            rank.send_bytes(world.ranks()[lo], TAG_SUBTREE, subtree.clone().freeze());
        }
        if me == lo {
            let right = rank
                .recv(Some(world.ranks()[mid]), Some(TAG_SUBTREE))
                .payload;
            subtree = encode_inner(mu, vp, &subtree, &right);
        }
    }
    let skeleton = if me == 0 {
        Some(subtree.freeze())
    } else {
        None
    };
    let shuffle_bytes = rank.stats().bytes_sent - bytes_before;

    world.barrier(rank);
    let vptree_end_ns = world.allreduce_f64(rank, rank.now(), ReduceOp::Max);

    // --- local index per partition: T virtual cores build T partitions ---
    // With `cfg.threads > 1` the per-partition builds run concurrently on
    // the real thread pool. Each build is an independently seeded
    // *sequential* construction and the pool preserves partition order, so
    // the graphs, distance counts and (sequentially replayed) virtual-time
    // charges are bit-identical to the `threads = 1` path.
    let built: Vec<(u32, Vec<u32>, LocalIndex)> = rayon::with_num_threads(cfg.threads, || {
        local_parts
            .into_par_iter()
            .map(|(pid, gids, prows)| {
                let index = LocalIndex::build(
                    cfg.local_index,
                    prows,
                    cfg.metric,
                    cfg.hnsw,
                    cfg.seed ^ ((pid as u64) << 8),
                );
                (pid, gids, index)
            })
            .collect()
    });
    let mut pool = VThreadPool::new(t_cores, vptree_end_ns);
    let mut partitions = Vec::with_capacity(built.len());
    let mut hnsw_ndist = 0u64;
    for (pid, gids, index) in built {
        let nd = index.build_ndist();
        hnsw_ndist += nd;
        pool.assign(vptree_end_ns, cfg.cost.dists_ns(nd, dim));
        partitions.push(Partition {
            id: pid,
            global_ids: gids,
            index,
        });
    }
    let hnsw_end_local = pool.makespan().max(vptree_end_ns);
    let hnsw_end_ns = world.allreduce_f64(rank, hnsw_end_local, ReduceOp::Max);

    NodeBuildOut {
        partitions,
        skeleton,
        vptree_end_ns,
        hnsw_end_ns,
        hnsw_ndist,
        shuffle_bytes,
    }
}

/// Node-local recursive VP splitting into `parts` leaves (a power of two).
/// Returns the serialized subtree and the partitions
/// `(pid, global ids, rows)` in leaf order.
fn split_local(
    rank: &mut Rank,
    cfg: &EngineConfig,
    rng: &mut SmallRng,
    ids: Vec<u32>,
    rows: VectorSet,
    parts: usize,
    first_pid: u32,
) -> (BytesMut, Vec<(u32, Vec<u32>, VectorSet)>) {
    if parts == 1 {
        return (encode_leaf(first_pid), vec![(first_pid, ids, rows)]);
    }
    let dim = rows.dim();
    assert!(
        rows.len() >= 2,
        "cannot split {} rows into {} local partitions",
        rows.len(),
        parts
    );
    // vantage selection on local rows
    let all: Vec<u32> = (0..rows.len() as u32).collect();
    let cands: Vec<u32> = all
        .choose_multiple(rng, N_CANDIDATES.min(rows.len()))
        .copied()
        .collect();
    let sample: Vec<u32> = all
        .choose_multiple(rng, N_SCORE_SAMPLE.min(rows.len()))
        .copied()
        .collect();
    let (best, ndist) = select_vantage(&rows, &cands, &rows, &sample, cfg.metric);
    rank.charge_dists(ndist, dim);
    let vp = rows.get(cands[best] as usize).to_vec();

    rank.charge_dists(rows.len() as u64, dim);
    let dists: Vec<f32> = rows.iter().map(|r| cfg.metric.eval(&vp, r)).collect();
    let mu = median(&mut dists.clone());

    let mut li = Vec::new();
    let mut lr = VectorSet::new(dim);
    let mut ri = Vec::new();
    let mut rr = VectorSet::new(dim);
    for (i, &d) in dists.iter().enumerate() {
        if d <= mu {
            li.push(ids[i]);
            lr.push(rows.get(i));
        } else {
            ri.push(ids[i]);
            rr.push(rows.get(i));
        }
    }
    // tie guard: both sides must be splittable further
    while ri.len() < parts / 2 && !li.is_empty() {
        let id = li.pop().expect("non-empty");
        let row = lr.get(lr.len() - 1).to_vec();
        let mut nlr = VectorSet::new(dim);
        for i in 0..lr.len() - 1 {
            nlr.push(lr.get(i));
        }
        lr = nlr;
        ri.push(id);
        rr.push(&row);
    }
    while li.len() < parts / 2 && !ri.is_empty() {
        let id = ri.pop().expect("non-empty");
        let row = rr.get(rr.len() - 1).to_vec();
        let mut nrr = VectorSet::new(dim);
        for i in 0..rr.len() - 1 {
            nrr.push(rr.get(i));
        }
        rr = nrr;
        li.push(id);
        lr.push(&row);
    }

    let (lsub, mut lparts) = split_local(rank, cfg, rng, li, lr, parts / 2, first_pid);
    let (rsub, rparts) = split_local(
        rank,
        cfg,
        rng,
        ri,
        rr,
        parts / 2,
        first_pid + (parts / 2) as u32,
    );
    lparts.extend(rparts);
    (encode_inner(mu, &vp, &lsub, &rsub), lparts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;
    use fastann_vptree::RouteConfig;

    fn small_cfg(cores: usize, per_node: usize) -> EngineConfig {
        let mut c = EngineConfig::new(cores, per_node);
        c.hnsw = fastann_hnsw::HnswConfig::with_m(8).ef_construction(40);
        c
    }

    #[test]
    fn build_covers_all_points_once() {
        let data = synth::sift_like(2000, 16, 1);
        let index = DistIndex::build(&data, small_cfg(8, 2));
        assert_eq!(index.n_partitions(), 8);
        let mut all: Vec<u32> = index
            .partitions
            .iter()
            .flat_map(|p| p.global_ids.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..2000u32).collect::<Vec<_>>(),
            "every point in exactly one partition"
        );
    }

    #[test]
    fn partitions_roughly_balanced() {
        let data = synth::sift_like(4096, 16, 2);
        let index = DistIndex::build(&data, small_cfg(16, 4));
        let sizes = &index.build_stats.partition_sizes;
        let min = *sizes.iter().min().expect("at least one partition");
        let max = *sizes.iter().max().expect("at least one partition");
        assert!(min > 0);
        assert!(max <= min * 4, "partition imbalance too high: {min}..{max}");
    }

    #[test]
    fn skeleton_routes_points_to_owning_partition() {
        let data = synth::sift_like(2000, 16, 3);
        let index = DistIndex::build(&data, small_cfg(8, 2));
        // route each partition's first point with zero margin: it must land
        // in its own partition (the skeleton reflects the actual splits)
        let mut hits = 0;
        let mut total = 0;
        for p in index.partitions.iter() {
            let Some(&gid) = p.global_ids.first() else {
                continue;
            };
            let (route, _) = index.router.route(
                data.get(gid as usize),
                &RouteConfig {
                    margin_frac: 0.0,
                    max_partitions: 1,
                },
            );
            total += 1;
            if route[0] == p.id {
                hits += 1;
            }
        }
        // weighted-median approximation can misplace boundary points, but
        // the bulk must route home
        assert!(
            hits * 4 >= total * 3,
            "only {hits}/{total} partition exemplars route home"
        );
    }

    #[test]
    fn build_stats_populated() {
        let data = synth::sift_like(1500, 16, 4);
        let index = DistIndex::build(&data, small_cfg(4, 2));
        let s = &index.build_stats;
        assert!(s.total_ns > 0.0);
        assert!(s.vptree_ns > 0.0);
        assert!(s.hnsw_ns >= 0.0);
        assert!(s.total_ns >= s.vptree_ns);
        assert!(
            s.shuffle_bytes > 0,
            "distributed construction must move data"
        );
        assert!(s.hnsw_ndist > 0);
        assert_eq!(s.partition_sizes.len(), 4);
    }

    #[test]
    fn single_node_build_works() {
        // n_nodes == 1: no message passing at all, purely local splitting
        let data = synth::sift_like(800, 8, 5);
        let index = DistIndex::build(&data, small_cfg(4, 4));
        assert_eq!(index.n_partitions(), 4);
        assert_eq!(index.build_stats.shuffle_bytes, 0);
    }

    #[test]
    fn one_core_per_node_build_works() {
        let data = synth::sift_like(800, 8, 6);
        let index = DistIndex::build(&data, small_cfg(8, 1));
        assert_eq!(index.n_partitions(), 8);
    }

    #[test]
    fn replication_memory_grows() {
        let data = synth::sift_like(1000, 8, 7);
        let index = DistIndex::build(&data, small_cfg(8, 2));
        let m1: usize = index.node_memory_bytes(1).iter().sum();
        let m3: usize = index.node_memory_bytes(3).iter().sum();
        assert!(m3 > m1, "replication must cost memory: {m1} vs {m3}");
        // r=1 stores each partition exactly once
        let direct: usize = index.partitions.iter().map(|p| p.approx_bytes()).sum();
        assert_eq!(m1, direct);
    }

    #[test]
    fn flat_pivot_covers_dataset() {
        let data = synth::sift_like(2000, 16, 9);
        let index = DistIndex::build_flat_pivot(&data, small_cfg(8, 2));
        assert_eq!(index.n_partitions(), 8);
        let mut all: Vec<u32> = index
            .partitions
            .iter()
            .flat_map(|p| p.global_ids.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..2000u32).collect::<Vec<_>>());
    }

    #[test]
    fn flat_pivot_is_searchable_and_more_imbalanced() {
        use crate::config::SearchOptions;
        use crate::request::SearchRequest;
        let data = synth::sift_like(3000, 16, 10);
        let queries = synth::queries_near(&data, 20, 0.02, 11);
        let vp = DistIndex::build(&data, small_cfg(8, 2));
        let flat = DistIndex::build_flat_pivot(&data, small_cfg(8, 2));
        let r = SearchRequest::new(&flat, &queries)
            .opts(SearchOptions::new(10))
            .run();
        assert_eq!(r.results.len(), 20);
        assert!(r.results.iter().all(|v| !v.is_empty()));
        // closest-pivot assignment on clustered data is lumpier than
        // median splits (the complaint the paper raises against [16])
        let imb = |sizes: &[usize]| {
            let max = *sizes.iter().max().expect("at least one partition") as f64;
            let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
            max / mean
        };
        assert!(
            imb(&flat.build_stats.partition_sizes) > imb(&vp.build_stats.partition_sizes),
            "flat pivots should be more imbalanced: {:?} vs {:?}",
            flat.build_stats.partition_sizes,
            vp.build_stats.partition_sizes
        );
    }

    #[test]
    fn flat_pivot_routing_costs_p_evals() {
        let data = synth::sift_like(1000, 8, 12);
        let index = DistIndex::build_flat_pivot(&data, small_cfg(16, 2));
        let (_, ndist) = index.router.route(
            data.get(0),
            &fastann_vptree::RouteConfig {
                margin_frac: 0.2,
                max_partitions: 4,
            },
        );
        assert_eq!(ndist, 16, "flat routing must score every pivot");
    }

    #[test]
    #[should_panic]
    fn too_few_points_rejected() {
        let data = synth::sift_like(10, 8, 8);
        let _ = DistIndex::build(&data, small_cfg(16, 4));
    }
}
