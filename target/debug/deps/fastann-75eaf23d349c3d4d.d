/root/repo/target/debug/deps/fastann-75eaf23d349c3d4d.d: src/lib.rs

/root/repo/target/debug/deps/fastann-75eaf23d349c3d4d: src/lib.rs

src/lib.rs:
