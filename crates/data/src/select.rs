//! Order statistics: quickselect with median-of-medians pivoting.
//!
//! The distributed VP-tree construction (paper Algorithm 2, line 6) computes
//! the partition radius µ as the *median* of the distances from every point
//! to the vantage point, "using the median of medians algorithm". This module
//! provides the sequential building blocks:
//!
//! * [`select_nth`] — worst-case `O(n)` selection (quickselect with
//!   median-of-medians pivots),
//! * [`median`] — lower median of a slice,
//! * [`weighted_median`] — the primitive used to combine per-rank medians
//!   into a distributed median.

/// Returns the value of rank `n` (0-based) in `data`, i.e. the element that
/// would be at `data_sorted[n]`. Runs in worst-case linear time using
/// median-of-medians pivot selection. `data` is reordered in place.
///
/// # Panics
/// Panics if `data` is empty or `n >= data.len()`.
pub fn select_nth(data: &mut [f32], n: usize) -> f32 {
    assert!(!data.is_empty(), "select_nth on empty slice");
    assert!(
        n < data.len(),
        "rank {} out of bounds for length {}",
        n,
        data.len()
    );
    let mut lo = 0usize;
    let mut hi = data.len();
    let mut n = n;
    loop {
        if hi - lo == 1 {
            return data[lo];
        }
        let pivot = median_of_medians(&mut data[lo..hi]);
        let (lt, eq) = three_way_partition(&mut data[lo..hi], pivot);
        if n < lt {
            hi = lo + lt;
        } else if n < lt + eq {
            return pivot;
        } else {
            n -= lt + eq;
            lo += lt + eq;
        }
    }
}

/// Lower median of `data` (element of rank `(len-1)/2`). Reorders in place.
///
/// # Panics
/// Panics if `data` is empty.
pub fn median(data: &mut [f32]) -> f32 {
    let n = data.len();
    select_nth(data, (n - 1) / 2)
}

/// Median-of-medians pivot: groups of 5, median of each, recurse on the
/// medians. Guarantees the pivot is between the 30th and 70th percentile.
fn median_of_medians(data: &mut [f32]) -> f32 {
    let n = data.len();
    if n <= 5 {
        let mut buf: Vec<f32> = data.to_vec();
        buf.sort_unstable_by(f32::total_cmp);
        return buf[(n - 1) / 2];
    }
    let mut medians: Vec<f32> = data
        .chunks(5)
        .map(|c| {
            let mut g = [0f32; 5];
            let m = c.len();
            g[..m].copy_from_slice(c);
            let g = &mut g[..m];
            g.sort_unstable_by(f32::total_cmp);
            g[(m - 1) / 2]
        })
        .collect();
    let k = (medians.len() - 1) / 2;
    select_nth(&mut medians, k)
}

/// Dutch-flag partition around `pivot`; returns (count `< pivot`,
/// count `== pivot`).
fn three_way_partition(data: &mut [f32], pivot: f32) -> (usize, usize) {
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    while i < gt {
        match data[i].total_cmp(&pivot) {
            std::cmp::Ordering::Less => {
                data.swap(lt, i);
                lt += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                gt -= 1;
                data.swap(i, gt);
            }
            std::cmp::Ordering::Equal => i += 1,
        }
    }
    (lt, gt - lt)
}

/// Weighted median: the smallest value `v` in `pairs` such that the total
/// weight of values `<= v` is at least half the total weight.
///
/// This is how a distributed median is assembled from `(local_median,
/// local_count)` pairs reported by each rank — the approximation the paper's
/// construction relies on (each rank's subset is assumed representative).
///
/// # Panics
/// Panics if `pairs` is empty or total weight is zero.
pub fn weighted_median(pairs: &mut [(f32, u64)]) -> f32 {
    assert!(!pairs.is_empty(), "weighted_median on empty input");
    let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
    assert!(total > 0, "weighted_median with zero total weight");
    pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut acc = 0u64;
    for &(v, w) in pairs.iter() {
        acc += w;
        if acc * 2 >= total {
            return v;
        }
    }
    pairs.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_ref(mut v: Vec<f32>, n: usize) -> f32 {
        v.sort_unstable_by(f32::total_cmp);
        v[n]
    }

    #[test]
    fn select_matches_sort_small() {
        let base = vec![3.0f32, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        for n in 0..base.len() {
            let mut d = base.clone();
            assert_eq!(
                select_nth(&mut d, n),
                sorted_ref(base.clone(), n),
                "rank {n}"
            );
        }
    }

    #[test]
    fn select_matches_sort_large_with_duplicates() {
        // deterministic pseudo-random with many duplicates
        let base: Vec<f32> = (0..1000u32)
            .map(|i| (i.wrapping_mul(2654435761) % 97) as f32)
            .collect();
        for n in [0, 1, 499, 500, 998, 999] {
            let mut d = base.clone();
            assert_eq!(
                select_nth(&mut d, n),
                sorted_ref(base.clone(), n),
                "rank {n}"
            );
        }
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        // lower median for even length
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.0);
        assert_eq!(median(&mut [7.0]), 7.0);
    }

    #[test]
    fn all_equal_input() {
        let mut d = vec![5.0f32; 64];
        assert_eq!(select_nth(&mut d, 0), 5.0);
        let mut d = vec![5.0f32; 64];
        assert_eq!(select_nth(&mut d, 63), 5.0);
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        let _ = select_nth(&mut [], 0);
    }

    #[test]
    #[should_panic]
    fn rank_out_of_bounds_panics() {
        let _ = select_nth(&mut [1.0, 2.0], 2);
    }

    #[test]
    fn weighted_median_basic() {
        // values 1 (w=1), 2 (w=1), 3 (w=2): half weight = 2 -> value 2
        let mut p = vec![(3.0, 2), (1.0, 1), (2.0, 1)];
        assert_eq!(weighted_median(&mut p), 2.0);
    }

    #[test]
    fn weighted_median_dominant_weight() {
        let mut p = vec![(10.0, 100), (1.0, 1), (2.0, 1)];
        assert_eq!(weighted_median(&mut p), 10.0);
    }

    #[test]
    fn weighted_median_single() {
        let mut p = vec![(42.0, 7)];
        assert_eq!(weighted_median(&mut p), 42.0);
    }

    #[test]
    fn weighted_median_equal_weights_matches_plain_median() {
        let vals = [5.0f32, 1.0, 9.0, 3.0, 7.0];
        let mut pairs: Vec<(f32, u64)> = vals.iter().map(|&v| (v, 1)).collect();
        let wm = weighted_median(&mut pairs);
        let mut v = vals.to_vec();
        assert_eq!(wm, median(&mut v));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn select_nth_agrees_with_sorting(v in proptest::collection::vec(-1e6f32..1e6, 1..200), idx in 0usize..200) {
            let n = idx % v.len();
            let mut sorted = v.clone();
            sorted.sort_unstable_by(f32::total_cmp);
            let mut work = v.clone();
            prop_assert_eq!(select_nth(&mut work, n), sorted[n]);
        }

        #[test]
        fn median_splits_half_half(v in proptest::collection::vec(-1e6f32..1e6, 1..200)) {
            let mut work = v.clone();
            let m = median(&mut work);
            let le = v.iter().filter(|&&x| x <= m).count();
            let ge = v.iter().filter(|&&x| x >= m).count();
            // at least half the elements on each side (with ties)
            prop_assert!(le * 2 >= v.len());
            prop_assert!(ge * 2 >= v.len().saturating_sub(1));
        }

        #[test]
        fn weighted_median_is_a_present_value(
            pairs in proptest::collection::vec((-1e6f32..1e6, 1u64..50), 1..50)
        ) {
            let mut work = pairs.clone();
            let m = weighted_median(&mut work);
            prop_assert!(pairs.iter().any(|&(v, _)| v == m));
            // weight on each side bounded by half
            let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
            let le: u64 = pairs.iter().filter(|&&(v, _)| v <= m).map(|&(_, w)| w).sum();
            prop_assert!(le * 2 >= total);
        }
    }
}
