//! # fastann-kdtree
//!
//! The **exact KD-tree baseline** the paper compares against (Table III):
//! a re-implementation of the PANDA approach (Patwary et al., IPDPS 2016) —
//! a distributed KD tree whose leaves are data partitions, with exact k-NN
//! search.
//!
//! Components:
//! * [`KdTree`] — a classic bucketed KD tree with widest-spread median
//!   splits and exact, pruned k-NN search (the per-partition index);
//! * [`KdSkeleton`] — the global split tree over partitions, with exact
//!   cell–ball intersection routing: given a query and a radius, it returns
//!   every partition whose cell the ball crosses. In high dimensions this
//!   set explodes — precisely the effect that makes the KD baseline an
//!   order of magnitude slower than the VP+HNSW system on 128-dimensional
//!   data;
//! * [`dist`] — the distributed engine over `fastann-mpisim`: distributed
//!   construction by recursive coordinate-median halving with `Alltoallv`
//!   shuffles, and a two-phase exact query protocol (home partition first,
//!   then every partition intersecting the current k-th-distance ball).

//! ```
//! use fastann_data::{synth, Distance};
//! use fastann_kdtree::{KdTree, KdTreeConfig};
//!
//! let data = synth::sift_like(1_000, 8, 1);
//! let tree = KdTree::build(data.clone(), KdTreeConfig::default());
//! let (hits, _) = tree.knn(data.get(3), 5);
//! assert_eq!(hits[0].id, 3); // exact: a point's nearest neighbour is itself
//! ```

#![forbid(unsafe_code)]

/// Distributed KD-tree search over the simulated cluster: the
/// PANDA-style master/worker protocol (P1/P2 phases, replicated
/// skeleton, per-worker exact scans).
pub mod dist;
mod local;
mod skeleton;

pub use local::{KdSearchStats, KdTree, KdTreeConfig};
pub use skeleton::{KdSkeleton, KdSkeletonBuilder};
