/root/repo/target/debug/deps/fastann-a904d1850fcea6bf.d: src/bin/fastann.rs

/root/repo/target/debug/deps/fastann-a904d1850fcea6bf: src/bin/fastann.rs

src/bin/fastann.rs:
