fn lookup(v: Option<u32>) -> u32 {
    // a line mentioning .unwrap() in a comment must not trip the rule
    let msg = "never call .unwrap() on the hot path";
    let _ = msg;
    v.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_test_modules() {
        let _ = Some(1).unwrap();
    }
}
