//! Ad-hoc kernel throughput probe (ignored by default; run with
//! `cargo test -p fastann-data --release --test kernel_timing -- --ignored --nocapture`).

use std::time::Instant;

use fastann_data::kernels;
use fastann_data::quant::Sq8;
use fastann_data::synth;

#[test]
#[ignore]
fn time_exact_vs_sq8() {
    let dim = 512;
    let n = 32_000;
    let data = synth::sift_like(n, dim, 7);
    let sq = Sq8::encode(&data);
    let q: Vec<f32> = data.get(0).to_vec();
    let prep = sq.prepare_query(&q);

    let rounds = 20u32;
    let t0 = Instant::now();
    let mut acc = 0f32;
    for _ in 0..rounds {
        for i in 0..n {
            acc += kernels::squared_l2(&q, data.get(i));
        }
    }
    let exact_s = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut acc2 = 0f32;
    for _ in 0..rounds {
        for i in 0..n {
            acc2 += sq.asym_l2(&prep, i);
        }
    }
    let quant_s = t0.elapsed().as_secs_f64();

    let evals = (rounds as f64) * n as f64;
    println!(
        "dim {dim}: exact {:.1} Mevals/s, sq8 {:.1} Mevals/s, ratio {:.2} (sums {acc:.1} {acc2:.1})",
        evals / exact_s / 1e6,
        evals / quant_s / 1e6,
        exact_s / quant_s
    );
}
