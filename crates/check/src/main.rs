//! `fastann-check` CLI — the CI entry points of the correctness tooling.
//!
//! ```text
//! fastann-check lint [--root PATH] [--json FILE]  # workspace source lint
//! fastann-check race [--k N] [--seed S]           # K-interleaving race smoke
//! ```
//!
//! `--json` additionally writes the full report (violations, suppressed
//! findings with reasons, stale allowlist entries) as machine-readable
//! JSON, which CI archives under `target/` for post-mortem diffing.
//!
//! Both subcommands exit non-zero on findings, so `ci.sh` can gate on
//! them directly.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use fastann_check::{lint, race};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("race") => run_race(&args[1..]),
        _ => {
            eprintln!(
                "usage: fastann-check lint [--root PATH] [--json FILE]\n       fastann-check race [--k N] [--seed S]"
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = match flag_value(args, "--root") {
        Some(p) => PathBuf::from(p),
        // the binary lives in crates/check; the workspace root is two up
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    match lint::run(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if let Some(json_path) = flag_value(args, "--json") {
                let path = std::path::Path::new(json_path);
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        if let Err(e) = std::fs::create_dir_all(parent) {
                            eprintln!(
                                "fastann-check lint: cannot create {}: {e}",
                                parent.display()
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if let Err(e) = std::fs::write(path, report.render_json()) {
                    eprintln!("fastann-check lint: cannot write {json_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if report.files_scanned == 0 {
                // a bad --root (or wrong cwd) must not green-light CI
                eprintln!(
                    "fastann-check lint: no source files under {}",
                    root.display()
                );
                return ExitCode::FAILURE;
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fastann-check lint: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_race(args: &[String]) -> ExitCode {
    let k = flag_value(args, "--k")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8);
    let seed = flag_value(args, "--seed")
        .and_then(parse_u64)
        .unwrap_or(0x5EED);
    let workload = race::engine_workload();
    let report = race::explore(k, seed, workload);
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}
