//! Index-level benchmarks: HNSW vs VP tree vs KD tree construction and
//! search, including the dimensionality sweep behind the paper's core
//! claim (KD pruning collapses as dimension grows; HNSW does not).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastann_data::{synth, Distance};
use fastann_hnsw::{Hnsw, HnswConfig};
use fastann_kdtree::{KdTree, KdTreeConfig};
use fastann_vptree::{VpTree, VpTreeConfig};

const N: usize = 8_000;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_8k_x_32d");
    group.sample_size(10);
    let data = synth::sift_like(N, 32, 1);
    group.bench_function("hnsw_m16", |b| {
        b.iter(|| Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(16)))
    });
    group.bench_function("vptree", |b| {
        b.iter(|| VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default()))
    });
    group.bench_function("kdtree", |b| {
        b.iter(|| KdTree::build(data.clone(), KdTreeConfig::default()))
    });
    group.finish();
}

fn bench_search_by_dim(c: &mut Criterion) {
    // The Table III effect in micro form: exact tree search cost explodes
    // with dimension while the graph search stays flat.
    let mut group = c.benchmark_group("knn10_by_dim");
    group.sample_size(20);
    for dim in [8usize, 32, 128] {
        let data = synth::deep_like(N, dim, 2);
        let queries = synth::queries_near(&data, 64, 0.02, 3);
        let hnsw = Hnsw::build(data.clone(), Distance::L2, HnswConfig::with_m(16));
        let kd = KdTree::build(data.clone(), KdTreeConfig::default());
        let vp = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
        group.bench_with_input(BenchmarkId::new("hnsw_ef64", dim), &dim, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.get(i % queries.len());
                i += 1;
                hnsw.search(black_box(q), 10, 64)
            })
        });
        group.bench_with_input(BenchmarkId::new("kdtree_exact", dim), &dim, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.get(i % queries.len());
                i += 1;
                kd.knn(black_box(q), 10)
            })
        });
        group.bench_with_input(BenchmarkId::new("vptree_exact", dim), &dim, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.get(i % queries.len());
                i += 1;
                vp.knn(black_box(q), 10)
            })
        });
    }
    group.finish();
}

fn bench_hnsw_ef_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("hnsw_ef_sweep_128d");
    let data = synth::sift_like(N, 128, 4);
    let queries = synth::queries_near(&data, 64, 0.02, 5);
    let hnsw = Hnsw::build(data, Distance::L2, HnswConfig::with_m(16));
    for ef in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(ef), &ef, |b, &ef| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.get(i % queries.len());
                i += 1;
                hnsw.search(black_box(q), 10, ef)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_search_by_dim,
    bench_hnsw_ef_sweep
);
criterion_main!(benches);
