//! Reusable per-thread search scratch space.

/// Epoch-based visited set plus the distance-evaluation counter for one
/// search. Reusing one `SearchScratch` across searches avoids re-zeroing a
/// visited bitmap per query — `mark` compares against the current epoch, so
/// resetting is a single counter bump.
#[derive(Debug, Default)]
pub struct SearchScratch {
    visited: Vec<u32>,
    epoch: u32,
    /// Distance evaluations performed by the search currently using this
    /// scratch. Read via [`SearchScratch::ndist`].
    pub(crate) ndist: u64,
    /// Subset of `ndist` evaluated in the quantized (SQ8 asymmetric)
    /// domain; `ndist - ndist_quant` is the exact-evaluation count.
    pub(crate) ndist_quant: u64,
    /// Beam pushes performed by the current search (layer 0).
    pub(crate) heap_pushes: u64,
    /// Beam-full evictions performed by the current search (layer 0).
    pub(crate) ef_churn: u64,
}

impl SearchScratch {
    /// Creates scratch sized for an `n`-point index (it grows on demand).
    pub fn with_capacity(n: usize) -> Self {
        Self {
            visited: vec![0; n],
            epoch: 0,
            ndist: 0,
            ndist_quant: 0,
            heap_pushes: 0,
            ef_churn: 0,
        }
    }

    /// Starts a new search: bumps the epoch and clears the per-search
    /// counters.
    pub(crate) fn begin(&mut self, n: usize) {
        self.new_epoch(n);
        self.ndist = 0;
        self.ndist_quant = 0;
        self.heap_pushes = 0;
        self.ef_churn = 0;
    }

    /// Forgets all visited marks without touching the distance counter.
    /// Each layer of a multi-layer search gets a fresh epoch while the
    /// search-wide `ndist` keeps accumulating.
    pub(crate) fn new_epoch(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // epoch wrapped: hard reset to avoid stale marks
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
    }

    /// Marks `id` visited; returns `true` if it was not visited before.
    #[inline]
    pub(crate) fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.visited[id as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Distance evaluations in the search that last used this scratch.
    pub fn ndist(&self) -> u64 {
        self.ndist
    }

    /// Quantized-domain distance evaluations in the search that last used
    /// this scratch (a subset of [`SearchScratch::ndist`]).
    pub fn ndist_quant(&self) -> u64 {
        self.ndist_quant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_once_per_epoch() {
        let mut s = SearchScratch::with_capacity(4);
        s.begin(4);
        assert!(s.mark(2));
        assert!(!s.mark(2));
        assert!(s.mark(0));
        s.begin(4);
        assert!(s.mark(2), "new epoch forgets old marks");
    }

    #[test]
    fn grows_on_demand() {
        let mut s = SearchScratch::with_capacity(1);
        s.begin(10);
        assert!(s.mark(9));
    }

    #[test]
    fn epoch_wrap_resets() {
        let mut s = SearchScratch::with_capacity(2);
        s.epoch = u32::MAX;
        s.begin(2);
        assert_eq!(s.epoch, 1);
        assert!(s.mark(0));
    }

    #[test]
    fn begin_clears_ndist() {
        let mut s = SearchScratch::with_capacity(2);
        s.ndist = 55;
        s.begin(2);
        assert_eq!(s.ndist(), 0);
    }
}
