//! # fastann — facade crate
//!
//! Re-exports the workspace crates that together reproduce
//! *"Fast Scalable Approximate Nearest Neighbor Search for High-dimensional
//! Data"* (Bashyam & Vadhiyar, IEEE CLUSTER 2020).
//!
//! See the individual crates for details:
//! * [`data`] — vectors, metrics, generators, ground truth
//! * [`hnsw`] — the HNSW approximate k-NN index
//! * [`vptree`] — vantage-point trees (exact search + space partitioning)
//! * [`kdtree`] — PANDA-style KD-tree exact baseline
//! * [`mpisim`] — the virtual-time message-passing cluster simulator
//! * [`core`] — the distributed VP-tree + HNSW engine
//! * [`serve`] — the online serving runtime (micro-batching, admission
//!   control, result cache) layered over the engine
//! * [`obs`] — deterministic metrics (counters, gauges, histograms) with
//!   Prometheus and JSON exporters, bit-identical across thread counts

#![forbid(unsafe_code)]

pub use fastann_core as core;
pub use fastann_data as data;
pub use fastann_hnsw as hnsw;
pub use fastann_kdtree as kdtree;
pub use fastann_mpisim as mpisim;
pub use fastann_obs as obs;
pub use fastann_serve as serve;
pub use fastann_vptree as vptree;
