//! Partition skeleton tree and query routing — the paper's `F(q)`.
//!
//! The distributed engine builds a VP tree whose leaves are whole data
//! partitions (one per processing core). The *skeleton* — vantage vectors
//! and µ radii of the inner nodes, partition ids at the leaves — is all the
//! master process keeps; it is assembled either by the distributed
//! construction (fastann-core) or locally by [`PartitionTree::build_local`].
//!
//! Routing a query returns the partitions whose subspace could contain its
//! nearest neighbours: the search descends into the child containing the
//! query and *also* into the sibling whenever the query is within a margin
//! of the µ boundary. The margin and the partition budget are the knobs
//! that trade recall against work, mirroring how the paper localises each
//! query to a subset of partitions.

use fastann_data::select::median;
use fastann_data::{Distance, VectorSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::vantage::select_vantage;

#[derive(Clone, Debug)]
enum PNode {
    Inner {
        vp: Vec<f32>,
        mu: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        partition: u32,
    },
}

/// Routing parameters for [`PartitionTree::route`].
#[derive(Clone, Copy, Debug)]
pub struct RouteConfig {
    /// A sibling subtree is also visited when the query's boundary slack
    /// `|d(q, vp) - mu|` is at most `margin_frac * mu`.
    pub margin_frac: f32,
    /// Upper bound on the number of partitions returned (the nearest-
    /// boundary ones win). `usize::MAX` disables the cap.
    pub max_partitions: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        Self {
            margin_frac: 0.15,
            max_partitions: 4,
        }
    }
}

/// Builder used by the distributed construction to assemble a skeleton from
/// already-computed `(vantage, mu)` pairs.
#[derive(Debug, Default)]
pub struct PartitionTreeBuilder {
    nodes: Vec<PNode>,
}

impl PartitionTreeBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a leaf naming `partition`; returns its node handle.
    pub fn leaf(&mut self, partition: u32) -> u32 {
        self.nodes.push(PNode::Leaf { partition });
        (self.nodes.len() - 1) as u32
    }

    /// Adds an inner node over two existing handles; returns its handle.
    pub fn inner(&mut self, vp: Vec<f32>, mu: f32, left: u32, right: u32) -> u32 {
        assert!((left as usize) < self.nodes.len(), "unknown left child");
        assert!((right as usize) < self.nodes.len(), "unknown right child");
        self.nodes.push(PNode::Inner {
            vp,
            mu,
            left,
            right,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Finishes the tree with `root` as the root handle.
    ///
    /// # Panics
    /// Panics if `root` is not a node or the structure is not a tree that
    /// covers every node exactly once.
    pub fn finish(self, root: u32, dist: Distance) -> PartitionTree {
        assert!((root as usize) < self.nodes.len(), "unknown root");
        let tree = PartitionTree {
            nodes: self.nodes,
            root,
            dist,
        };
        tree.validate()
            .expect("skeleton builder produced an invalid tree");
        tree
    }
}

/// The master-side partition skeleton: maps a query to the partitions that
/// must be searched.
#[derive(Clone, Debug)]
pub struct PartitionTree {
    nodes: Vec<PNode>,
    root: u32,
    dist: Distance,
}

impl PartitionTree {
    /// Builds the skeleton locally over `data`, splitting by median distance
    /// until `n_partitions` leaves exist, and returns the per-partition row
    /// ids alongside. This is the sequential reference implementation of
    /// the paper's construction (Algorithm 2 without the message passing);
    /// the distributed builder in `fastann-core` produces the same shape.
    ///
    /// `n_partitions` must be a power of two (the construction halves
    /// process groups, paper Section IV-A).
    pub fn build_local(
        data: &VectorSet,
        n_partitions: usize,
        dist: Distance,
        seed: u64,
    ) -> (PartitionTree, Vec<Vec<u32>>) {
        assert!(n_partitions >= 1, "need at least one partition");
        assert!(
            n_partitions.is_power_of_two(),
            "partition count must be a power of two"
        );
        assert!(
            data.len() >= n_partitions,
            "cannot split {} points into {} partitions",
            data.len(),
            n_partitions
        );
        assert!(dist.is_metric(), "partitioning requires a true metric");
        let mut nodes = Vec::new();
        let mut parts: Vec<Vec<u32>> = Vec::with_capacity(n_partitions);
        let mut rng = SmallRng::seed_from_u64(seed);
        let all: Vec<u32> = (0..data.len() as u32).collect();
        let root = split_rec(
            data,
            dist,
            all,
            n_partitions,
            &mut nodes,
            &mut parts,
            &mut rng,
        );
        let tree = PartitionTree { nodes, root, dist };
        tree.validate()
            .expect("local skeleton construction produced an invalid tree");
        (tree, parts)
    }

    /// Number of leaf partitions.
    pub fn n_partitions(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, PNode::Leaf { .. }))
            .count()
    }

    /// The metric the tree routes with.
    pub fn distance(&self) -> Distance {
        self.dist
    }

    /// Tree depth in edges.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[PNode], n: u32) -> usize {
            match &nodes[n as usize] {
                PNode::Leaf { .. } => 0,
                PNode::Inner { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, self.root)
    }

    /// The paper's `F(q)`: partitions to search for query `q`, ordered by
    /// ascending boundary slack (the home partition first, slack 0), capped
    /// at `cfg.max_partitions`. Also returns the number of distance
    /// evaluations spent routing (charged to the master's virtual clock by
    /// the engine).
    ///
    /// The traversal is *bounded best-first*: a frontier ordered by the
    /// loosest boundary crossed so far, expanded until `max_partitions`
    /// leaves are found. This caps the routing work at roughly
    /// `max_partitions × depth` distance evaluations — the DFS alternative
    /// explores every in-margin branch and its cost explodes with tree
    /// depth, which would make the sequential master the bottleneck (the
    /// effect the paper fights with its optimisations).
    pub fn route(&self, q: &[f32], cfg: &RouteConfig) -> (Vec<u32>, u64) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Frontier(f32, u32); // (worst slack so far, node)
        impl Eq for Frontier {}
        impl Ord for Frontier {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
            }
        }
        impl PartialOrd for Frontier {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let cap = cfg.max_partitions.max(1).min(self.nodes.len());
        let mut ndist = 0u64;
        let mut out: Vec<u32> = Vec::with_capacity(cap);
        let mut heap: BinaryHeap<Reverse<Frontier>> = BinaryHeap::new();
        heap.push(Reverse(Frontier(0.0, self.root)));
        while let Some(Reverse(Frontier(worst, mut node))) = heap.pop() {
            // descend to a leaf, deferring in-margin siblings to the frontier
            loop {
                match &self.nodes[node as usize] {
                    PNode::Leaf { partition } => {
                        out.push(*partition);
                        break;
                    }
                    PNode::Inner {
                        vp,
                        mu,
                        left,
                        right,
                    } => {
                        ndist += 1;
                        let d = self.dist.eval(q, vp);
                        let slack = (d - mu).abs();
                        let (near, far) = if d <= *mu {
                            (*left, *right)
                        } else {
                            (*right, *left)
                        };
                        if slack <= cfg.margin_frac * mu {
                            heap.push(Reverse(Frontier(worst.max(slack), far)));
                        }
                        node = near;
                    }
                }
            }
            if out.len() >= cap {
                break;
            }
        }
        (out, ndist)
    }

    /// Dynamic LANNS-style leaf split: replaces the leaf naming `old_pid`
    /// with an inner node over two fresh leaves — `old_pid` keeps the
    /// within-`mu` half of its ball, `new_pid` receives the outside. The
    /// caller computes the vantage and radius deterministically from the
    /// partition's rows and re-homes the rows itself; the tree only learns
    /// the new routing boundary, exactly as if the skeleton had been built
    /// one level deeper here.
    ///
    /// # Panics
    /// Panics when `old_pid` has no leaf, `new_pid` already has one, or
    /// `mu` is not a positive finite radius.
    pub fn split_leaf(&mut self, old_pid: u32, vp: Vec<f32>, mu: f32, new_pid: u32) {
        assert!(
            mu.is_finite() && mu > 0.0,
            "split radius must be positive and finite, got {mu}"
        );
        assert!(
            !self
                .nodes
                .iter()
                .any(|n| matches!(n, PNode::Leaf { partition } if *partition == new_pid)),
            "partition {new_pid} already exists"
        );
        let leaf_idx = self
            .nodes
            .iter()
            .position(|n| matches!(n, PNode::Leaf { partition } if *partition == old_pid))
            .expect("split_leaf: no leaf carries the split partition id");
        let left = self.nodes.len() as u32;
        self.nodes.push(PNode::Leaf { partition: old_pid });
        let right = self.nodes.len() as u32;
        self.nodes.push(PNode::Leaf { partition: new_pid });
        self.nodes[leaf_idx] = PNode::Inner {
            vp,
            mu,
            left,
            right,
        };
        self.validate()
            .expect("leaf split produced an invalid tree");
    }

    /// Checks the node array forms a tree rooted at `self.root` covering
    /// every node exactly once (no cycles, no sharing, no orphans).
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.nodes.len()];
        fn rec(nodes: &[PNode], n: u32, seen: &mut [bool]) -> Result<(), String> {
            if seen[n as usize] {
                return Err(format!("node {n} reachable twice: not a tree"));
            }
            seen[n as usize] = true;
            if let PNode::Inner { left, right, .. } = &nodes[n as usize] {
                rec(nodes, *left, seen)?;
                rec(nodes, *right, seen)?;
            }
            Ok(())
        }
        rec(&self.nodes, self.root, &mut seen)?;
        if let Some(orphan) = seen.iter().position(|&s| !s) {
            return Err(format!("node {orphan} is not part of the tree"));
        }
        Ok(())
    }

    /// Serializes the skeleton to bytes (preorder; little endian): the
    /// format the distributed construction ships between ranks and that
    /// [`PartitionTree::from_bytes`] reads back.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn rec(nodes: &[PNode], n: u32, out: &mut Vec<u8>) {
            match &nodes[n as usize] {
                PNode::Leaf { partition } => {
                    out.extend_from_slice(&0u32.to_le_bytes());
                    out.extend_from_slice(&partition.to_le_bytes());
                }
                PNode::Inner {
                    vp,
                    mu,
                    left,
                    right,
                } => {
                    out.extend_from_slice(&1u32.to_le_bytes());
                    out.extend_from_slice(&mu.to_le_bytes());
                    out.extend_from_slice(&(vp.len() as u32).to_le_bytes());
                    for &x in vp {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                    rec(nodes, *left, out);
                    rec(nodes, *right, out);
                }
            }
        }
        let mut out = Vec::with_capacity(self.approx_bytes());
        rec(&self.nodes, self.root, &mut out);
        out
    }

    /// Deserializes a skeleton produced by [`PartitionTree::to_bytes`].
    ///
    /// # Panics
    /// Panics on malformed input (the skeleton travels inside trusted
    /// index files and simulated messages, not across trust boundaries).
    pub fn from_bytes(bytes: &[u8], dist: Distance) -> PartitionTree {
        struct Rd<'a>(&'a [u8], usize);
        impl Rd<'_> {
            fn u32(&mut self) -> u32 {
                let v = u32::from_le_bytes(self.0[self.1..self.1 + 4].try_into().expect("u32"));
                self.1 += 4;
                v
            }
            fn f32(&mut self) -> f32 {
                f32::from_bits(self.u32())
            }
        }
        fn rec(rd: &mut Rd<'_>, b: &mut PartitionTreeBuilder) -> u32 {
            let tag = rd.u32();
            if tag == 0 {
                let p = rd.u32();
                b.leaf(p)
            } else {
                let mu = rd.f32();
                let n = rd.u32() as usize;
                let vp: Vec<f32> = (0..n).map(|_| rd.f32()).collect();
                let left = rec(rd, b);
                let right = rec(rd, b);
                b.inner(vp, mu, left, right)
            }
        }
        let mut rd = Rd(bytes, 0);
        let mut b = PartitionTreeBuilder::new();
        let root = rec(&mut rd, &mut b);
        assert_eq!(rd.1, bytes.len(), "trailing bytes in skeleton");
        b.finish(root, dist)
    }

    /// Serialized size estimate in bytes (vantage vectors dominate); used
    /// to model the cost of broadcasting the skeleton.
    pub fn approx_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                PNode::Inner { vp, .. } => 16 + vp.len() * 4,
                PNode::Leaf { .. } => 8,
            })
            .sum()
    }
}

/// Recursive median split of `ids` into `parts_left` partitions.
fn split_rec(
    data: &VectorSet,
    dist: Distance,
    ids: Vec<u32>,
    parts_left: usize,
    nodes: &mut Vec<PNode>,
    parts: &mut Vec<Vec<u32>>,
    rng: &mut SmallRng,
) -> u32 {
    if parts_left == 1 {
        let pid = parts.len() as u32;
        parts.push(ids);
        nodes.push(PNode::Leaf { partition: pid });
        return (nodes.len() - 1) as u32;
    }
    // vantage selection over a sample (paper: candidates of 100)
    let n_cand = 16.min(ids.len());
    let n_samp = 64.min(ids.len());
    let candidates: Vec<u32> = ids.choose_multiple(rng, n_cand).copied().collect();
    let sample: Vec<u32> = ids.choose_multiple(rng, n_samp).copied().collect();
    let (best, _) = select_vantage(data, &candidates, data, &sample, dist);
    let vp = data.get(candidates[best] as usize).to_vec();

    let dists: Vec<f32> = ids
        .iter()
        .map(|&i| dist.eval(&vp, data.get(i as usize)))
        .collect();
    let mu = median(&mut dists.clone());
    let mut left_ids = Vec::with_capacity(ids.len() / 2 + 1);
    let mut right_ids = Vec::with_capacity(ids.len() / 2 + 1);
    for (i, &id) in ids.iter().enumerate() {
        if dists[i] <= mu {
            left_ids.push(id);
        } else {
            right_ids.push(id);
        }
    }
    // Ties on mu can empty one side of a tiny split; rebalance minimally so
    // both subtrees receive points.
    while right_ids.len() < parts_left / 2 && !left_ids.is_empty() {
        right_ids.push(left_ids.pop().expect("non-empty"));
    }
    while left_ids.len() < parts_left / 2 && !right_ids.is_empty() {
        left_ids.push(right_ids.pop().expect("non-empty"));
    }

    let node_idx = nodes.len();
    nodes.push(PNode::Leaf {
        partition: u32::MAX,
    }); // placeholder
    let left = split_rec(data, dist, left_ids, parts_left / 2, nodes, parts, rng);
    let right = split_rec(data, dist, right_ids, parts_left / 2, nodes, parts, rng);
    nodes[node_idx] = PNode::Inner {
        vp,
        mu,
        left,
        right,
    };
    node_idx as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;

    #[test]
    fn build_local_partitions_cover_dataset() {
        let data = synth::sift_like(1000, 8, 1);
        let (tree, parts) = PartitionTree::build_local(&data, 8, Distance::L2, 1);
        assert_eq!(tree.n_partitions(), 8);
        assert_eq!(parts.len(), 8);
        let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..1000u32).collect::<Vec<_>>(),
            "partitions must cover exactly"
        );
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let data = synth::sift_like(2048, 8, 2);
        let (_, parts) = PartitionTree::build_local(&data, 16, Distance::L2, 2);
        let min = parts
            .iter()
            .map(Vec::len)
            .min()
            .expect("at least one partition");
        let max = parts
            .iter()
            .map(Vec::len)
            .max()
            .expect("at least one partition");
        // median splits: each level halves within tie tolerance
        assert!(min * 3 >= max, "imbalance too high: {min} vs {max}");
    }

    #[test]
    fn route_returns_home_partition_first() {
        let data = synth::sift_like(500, 8, 3);
        let (tree, parts) = PartitionTree::build_local(&data, 8, Distance::L2, 3);
        // a data point's home partition must be the first routed partition
        for (pid, part) in parts.iter().enumerate() {
            let Some(&id) = part.first() else {
                continue;
            };
            let (route, nd) = tree.route(
                data.get(id as usize),
                &RouteConfig {
                    margin_frac: 0.0,
                    max_partitions: 1,
                },
            );
            assert_eq!(route.len(), 1);
            assert_eq!(route[0] as usize, pid, "point {id} routed away from home");
            assert!(nd > 0);
        }
    }

    #[test]
    fn wider_margin_routes_to_more_partitions() {
        let data = synth::sift_like(1000, 8, 4);
        let (tree, _) = PartitionTree::build_local(&data, 16, Distance::L2, 4);
        let q = data.get(0);
        let narrow = tree
            .route(
                q,
                &RouteConfig {
                    margin_frac: 0.0,
                    max_partitions: 100,
                },
            )
            .0;
        let wide = tree
            .route(
                q,
                &RouteConfig {
                    margin_frac: 0.5,
                    max_partitions: 100,
                },
            )
            .0;
        assert_eq!(narrow.len(), 1);
        assert!(wide.len() >= narrow.len());
    }

    #[test]
    fn max_partitions_caps_route() {
        let data = synth::sift_like(1000, 8, 5);
        let (tree, _) = PartitionTree::build_local(&data, 16, Distance::L2, 5);
        let (route, _) = tree.route(
            data.get(3),
            &RouteConfig {
                margin_frac: 1.0,
                max_partitions: 3,
            },
        );
        assert!(route.len() <= 3);
        assert!(!route.is_empty());
    }

    #[test]
    fn route_is_deduplicated_and_valid() {
        let data = synth::sift_like(600, 8, 6);
        let (tree, _) = PartitionTree::build_local(&data, 8, Distance::L2, 6);
        let (route, _) = tree.route(
            data.get(0),
            &RouteConfig {
                margin_frac: 0.8,
                max_partitions: 64,
            },
        );
        let mut sorted = route.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), route.len(), "no duplicate partitions");
        assert!(route.iter().all(|&p| p < 8));
    }

    #[test]
    fn builder_assembles_manual_tree() {
        let mut b = PartitionTreeBuilder::new();
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let root = b.inner(vec![0.0, 0.0], 1.0, l0, l1);
        let tree = b.finish(root, Distance::L2);
        assert_eq!(tree.n_partitions(), 2);
        // query inside the ball routes to partition 0
        let (route, _) = tree.route(
            &[0.1, 0.1],
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 8,
            },
        );
        assert_eq!(route, vec![0]);
        // query outside routes to partition 1
        let (route, _) = tree.route(
            &[5.0, 5.0],
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 8,
            },
        );
        assert_eq!(route, vec![1]);
    }

    #[test]
    fn builder_near_boundary_routes_to_both() {
        let mut b = PartitionTreeBuilder::new();
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let root = b.inner(vec![0.0], 1.0, l0, l1);
        let tree = b.finish(root, Distance::L2);
        let (route, _) = tree.route(
            &[0.95],
            &RouteConfig {
                margin_frac: 0.2,
                max_partitions: 8,
            },
        );
        assert_eq!(route.len(), 2, "boundary query must visit both children");
        assert_eq!(route[0], 0, "home partition first");
    }

    #[test]
    #[should_panic]
    fn builder_bad_child_panics() {
        let mut b = PartitionTreeBuilder::new();
        let l0 = b.leaf(0);
        let _ = b.inner(vec![0.0], 1.0, l0, 99);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let data = synth::sift_like(100, 4, 7);
        let _ = PartitionTree::build_local(&data, 3, Distance::L2, 7);
    }

    #[test]
    fn depth_matches_partition_count() {
        let data = synth::sift_like(512, 8, 8);
        let (tree, _) = PartitionTree::build_local(&data, 16, Distance::L2, 8);
        assert_eq!(tree.depth(), 4, "16 partitions -> depth log2(16)");
    }

    #[test]
    fn best_first_route_prefers_tightest_boundaries() {
        // With a cap of 2 and a wide margin, the two returned partitions
        // must be the two with the smallest boundary slack among all
        // in-margin leaves (best-first, not DFS truncation).
        let data = synth::sift_like(800, 8, 10);
        let (tree, _) = PartitionTree::build_local(&data, 16, Distance::L2, 10);
        let q = data.get(11);
        let all = tree
            .route(
                q,
                &RouteConfig {
                    margin_frac: 0.6,
                    max_partitions: 1000,
                },
            )
            .0;
        let capped = tree
            .route(
                q,
                &RouteConfig {
                    margin_frac: 0.6,
                    max_partitions: 2,
                },
            )
            .0;
        assert_eq!(capped.len(), 2.min(all.len()));
        assert_eq!(
            &all[..capped.len()],
            &capped[..],
            "cap must take the best-ranked prefix"
        );
    }

    #[test]
    fn skeleton_round_trips_through_bytes() {
        let data = synth::sift_like(600, 8, 11);
        let (tree, _) = PartitionTree::build_local(&data, 16, Distance::L2, 11);
        let back = PartitionTree::from_bytes(&tree.to_bytes(), Distance::L2);
        assert_eq!(back.n_partitions(), 16);
        let cfg = RouteConfig {
            margin_frac: 0.3,
            max_partitions: 6,
        };
        for qi in (0..600).step_by(97) {
            let q = data.get(qi);
            assert_eq!(tree.route(q, &cfg), back.route(q, &cfg), "query {qi}");
        }
    }

    #[test]
    fn split_leaf_routes_both_halves() {
        let data = synth::sift_like(800, 8, 12);
        let (mut tree, parts) = PartitionTree::build_local(&data, 8, Distance::L2, 12);
        // split partition 3 around one of its own rows
        let rows = &parts[3];
        let vp = data.get(rows[0] as usize).to_vec();
        let mut ds: Vec<f32> = rows
            .iter()
            .map(|&id| Distance::L2.eval(&vp, data.get(id as usize)))
            .collect();
        ds.sort_by(f32::total_cmp);
        let mu = ds[ds.len() / 2].max(f32::MIN_POSITIVE);
        tree.split_leaf(3, vp.clone(), mu, 8);
        assert_eq!(tree.n_partitions(), 9);
        tree.validate().expect("split tree is valid");
        // a query at the vantage lands in the kept half, a far one in the new
        let cfg = RouteConfig {
            margin_frac: 0.0,
            max_partitions: 1,
        };
        assert_eq!(tree.route(&vp, &cfg).0, vec![3]);
        let routed: std::collections::BTreeSet<u32> = rows
            .iter()
            .map(|&id| tree.route(data.get(id as usize), &cfg).0[0])
            .collect();
        assert!(
            routed.contains(&8),
            "outside-the-ball rows must route to the new partition: {routed:?}"
        );
        // the split survives a serialization round trip
        let back = PartitionTree::from_bytes(&tree.to_bytes(), Distance::L2);
        assert_eq!(back.n_partitions(), 9);
        for &id in rows.iter().take(16) {
            let q = data.get(id as usize);
            assert_eq!(tree.route(q, &cfg), back.route(q, &cfg));
        }
    }

    #[test]
    fn split_leaf_of_singleton_tree() {
        let mut b = PartitionTreeBuilder::new();
        let l0 = b.leaf(0);
        let mut tree = b.finish(l0, Distance::L2);
        tree.split_leaf(0, vec![0.0, 0.0], 1.0, 1);
        assert_eq!(tree.n_partitions(), 2);
        let cfg = RouteConfig {
            margin_frac: 0.0,
            max_partitions: 4,
        };
        assert_eq!(tree.route(&[0.1, 0.0], &cfg).0, vec![0]);
        assert_eq!(tree.route(&[9.0, 0.0], &cfg).0, vec![1]);
    }

    #[test]
    #[should_panic]
    fn split_leaf_unknown_partition_panics() {
        let mut b = PartitionTreeBuilder::new();
        let l0 = b.leaf(0);
        let mut tree = b.finish(l0, Distance::L2);
        tree.split_leaf(5, vec![0.0], 1.0, 1);
    }

    #[test]
    #[should_panic]
    fn split_leaf_duplicate_new_pid_panics() {
        let mut b = PartitionTreeBuilder::new();
        let l0 = b.leaf(0);
        let l1 = b.leaf(1);
        let root = b.inner(vec![0.0], 1.0, l0, l1);
        let mut tree = b.finish(root, Distance::L2);
        tree.split_leaf(0, vec![0.0], 1.0, 1);
    }

    #[test]
    fn approx_bytes_reasonable() {
        let data = synth::sift_like(256, 8, 9);
        let (tree, _) = PartitionTree::build_local(&data, 8, Distance::L2, 9);
        // 7 inner nodes, dim 8 -> at least 7*(16+32) bytes
        assert!(tree.approx_bytes() >= 7 * 48);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fastann_data::synth;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn route_always_contains_home_partition(
            seed in 0u64..500,
            margin in 0.0f32..0.5,
            cap in 1usize..16,
        ) {
            let data = synth::sift_like(300, 6, seed);
            let (tree, _) = PartitionTree::build_local(&data, 8, Distance::L2, seed);
            for qi in (0..300).step_by(61) {
                let q = data.get(qi);
                let home = tree.route(q, &RouteConfig { margin_frac: 0.0, max_partitions: 1 }).0[0];
                let routed = tree.route(q, &RouteConfig { margin_frac: margin, max_partitions: cap }).0;
                prop_assert_eq!(routed[0], home, "home partition must rank first");
                prop_assert!(routed.len() <= cap);
                let mut dedup = routed.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), routed.len(), "no duplicates");
            }
        }

        #[test]
        fn wider_margin_is_superset_prefix_monotone(
            seed in 0u64..500,
        ) {
            let data = synth::sift_like(400, 6, seed);
            let (tree, _) = PartitionTree::build_local(&data, 8, Distance::L2, seed);
            let q = data.get(1);
            let narrow = tree.route(q, &RouteConfig { margin_frac: 0.1, max_partitions: 64 }).0;
            let wide = tree.route(q, &RouteConfig { margin_frac: 0.4, max_partitions: 64 }).0;
            for p in &narrow {
                prop_assert!(wide.contains(p), "wider margin must keep partition {}", p);
            }
        }
    }
}
