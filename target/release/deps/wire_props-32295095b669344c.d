/root/repo/target/release/deps/wire_props-32295095b669344c.d: crates/mpisim/tests/wire_props.rs

/root/repo/target/release/deps/wire_props-32295095b669344c: crates/mpisim/tests/wire_props.rs

crates/mpisim/tests/wire_props.rs:
