/root/repo/target/debug/deps/wire_props-69356cc5e80b7179.d: crates/mpisim/tests/wire_props.rs

/root/repo/target/debug/deps/wire_props-69356cc5e80b7179: crates/mpisim/tests/wire_props.rs

crates/mpisim/tests/wire_props.rs:
