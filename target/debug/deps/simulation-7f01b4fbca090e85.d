/root/repo/target/debug/deps/simulation-7f01b4fbca090e85.d: tests/simulation.rs Cargo.toml

/root/repo/target/debug/deps/libsimulation-7f01b4fbca090e85.rmeta: tests/simulation.rs Cargo.toml

tests/simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
