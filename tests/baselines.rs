//! Cross-crate agreement between the exact structures: brute force,
//! VP tree, KD tree (local and distributed) must return identical answers.

use fastann::data::{ground_truth, synth, Distance, Neighbor};
use fastann::kdtree::{dist as kd, KdTree, KdTreeConfig};
use fastann::vptree::{VpTree, VpTreeConfig};

#[test]
fn all_exact_indexes_agree() {
    let data = synth::sift_like(1_500, 10, 201);
    let queries = synth::queries_near(&data, 25, 0.05, 202);
    let vp = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
    let kdt = KdTree::build(data.clone(), KdTreeConfig::default());
    for qi in 0..queries.len() {
        let q = queries.get(qi);
        let truth = ground_truth::brute_force_one(&data, q, 8, Distance::L2);
        let (vp_res, _) = vp.knn(q, 8);
        let (kd_res, _) = kdt.knn(q, 8);
        assert_eq!(vp_res, truth, "VP tree diverged on query {qi}");
        assert_eq!(kd_res, truth, "KD tree diverged on query {qi}");
    }
}

#[test]
fn distributed_kd_agrees_with_local_kd() {
    let data = synth::sift_like(900, 8, 203);
    let queries = synth::queries_near(&data, 12, 0.05, 204);
    let local = KdTree::build(data.clone(), KdTreeConfig::default());
    let report = kd::run(&data, &queries, &kd::DistKdConfig::new(4));
    for qi in 0..queries.len() {
        let (want, _) = local.knn(queries.get(qi), 10);
        assert_eq!(
            report.results[qi], want,
            "distributed KD diverged on query {qi}"
        );
    }
}

#[test]
fn exact_indexes_agree_under_duplicate_heavy_data() {
    // many ties stress both median splits
    let mut data = synth::sift_like(200, 6, 205);
    let dup = data.get(0).to_vec();
    for _ in 0..100 {
        data.push(&dup);
    }
    let vp = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
    let kdt = KdTree::build(data.clone(), KdTreeConfig::default());
    let (vp_res, _) = vp.knn(&dup, 20);
    let (kd_res, _) = kdt.knn(&dup, 20);
    // distances must agree even though tie-broken ids may differ in order
    let d = |v: &[Neighbor]| v.iter().map(|n| n.dist).collect::<Vec<_>>();
    assert_eq!(d(&vp_res), d(&kd_res));
    assert_eq!(vp_res.iter().filter(|n| n.dist == 0.0).count(), 20);
}
