//! `perf` — emits a `BENCH_<dataset>.json` wall-clock trajectory per
//! dataset: HNSW build throughput, batched-search QPS and recall, each at
//! 1 thread and at `--threads N`, plus the measured speedups.
//!
//! ```text
//! perf [--smoke] [--threads N] [--out DIR] [--gate] [--only NAME]
//!   --smoke     tiny synthetic dataset only (the CI smoke invocation)
//!   --threads   pool width for the parallel legs (default: host cores)
//!   --out       directory for the BENCH_*.json files (default: .)
//!   --gate      fail unless quantized recall@k stays within 0.01 of the
//!               exact path on the same graph (the CI recall-delta gate)
//!   --only      substring filter on dataset names (skip the others)
//! ```
//!
//! Each record also carries a `quantized` section: the SQ8-traversal +
//! exact-re-rank pipeline timed against the exact path on the same graph,
//! with its recall and the recall delta. Quantized search at 1 and at N
//! threads is asserted bit-identical unconditionally, like the exact pool.
//!
//! Because the quantized traversal typically *over*-delivers recall at the
//! exact path's `ef` (the re-rank stage repairs quantization error and the
//! pool is wider than k), the fixed-`ef` QPS comparison understates it. The
//! `quantized.matched` block is the standard equal-recall comparison: sweep
//! the quantized `ef` down a fixed ladder and report the cheapest setting
//! whose recall still lands within the gate tolerance of the exact path's
//! recall — both systems delivering the same quality, each at its own
//! operating point.
//!
//! Numbers are honest wall-clock measurements on *this* host: the emitted
//! `host_cores` field records how many cores were actually available, and
//! on a single-core machine the speedup legs will sit near 1.0 no matter
//! how wide the pool is. The parallel legs still exercise the full
//! threaded code paths (batch-parallel construction, pooled search), and
//! the JSON asserts their results match the sequential legs bit-for-bit.

use std::fmt::Write as _;
use std::time::Instant;

use fastann_bench::{datasets, Scale};
use fastann_data::{ground_truth, Distance, VectorSet};
use fastann_hnsw::{Hnsw, HnswConfig, SearchScratch};

const K: usize = 10;
const EF: usize = 64;
const RERANK_FACTOR: usize = 3;
/// The CI gate: quantized recall@K may trail exact recall@K on the same
/// graph by at most this much.
const MAX_RECALL_DELTA: f64 = 0.01;
/// The `ef` ladder swept for the equal-recall operating point, smallest
/// first. `EF` itself is the last rung so the sweep always has the fixed
/// comparison's setting as a fallback.
const EF_LADDER: [usize; 7] = [10, 12, 16, 24, 32, 48, EF];

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    gate: bool,
    only: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        out: ".".to_string(),
        gate: false,
        only: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                args.threads = v.parse().expect("--threads must be a number");
            }
            "--out" => args.out = it.next().expect("--out needs a directory"),
            "--gate" => args.gate = true,
            "--only" => args.only = Some(it.next().expect("--only needs a dataset name")),
            other => {
                eprintln!(
                    "unknown argument {other:?} (try --smoke / --threads / --out / --gate / --only)"
                );
                std::process::exit(2);
            }
        }
    }
    args.threads = args.threads.max(1);
    args
}

/// One dataset's measured trajectory.
struct Record {
    dataset: String,
    points: usize,
    dim: usize,
    n_queries: usize,
    threads: usize,
    host_cores: usize,
    build_seq_s: f64,
    build_par_s: f64,
    build_speedup: f64,
    build_points_per_s: f64,
    qps_1t: f64,
    qps_nt: f64,
    search_speedup: f64,
    recall: f64,
    recall_seq: f64,
    pool_is_deterministic: bool,
    q_qps_1t: f64,
    q_qps_nt: f64,
    q_speedup_vs_exact: f64,
    q_recall: f64,
    q_recall_delta: f64,
    q_is_deterministic: bool,
    q_matched_ef: usize,
    q_matched_qps_1t: f64,
    q_matched_recall: f64,
    q_matched_speedup: f64,
}

impl Record {
    /// Hand-rolled JSON (the workspace deliberately has no serde).
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"dataset\": \"{}\",", self.dataset);
        let _ = writeln!(s, "  \"points\": {},", self.points);
        let _ = writeln!(s, "  \"dim\": {},", self.dim);
        let _ = writeln!(s, "  \"queries\": {},", self.n_queries);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(s, "  \"build\": {{");
        let _ = writeln!(s, "    \"seq_s\": {:.6},", self.build_seq_s);
        let _ = writeln!(s, "    \"par_s\": {:.6},", self.build_par_s);
        let _ = writeln!(s, "    \"speedup\": {:.3},", self.build_speedup);
        let _ = writeln!(s, "    \"points_per_s\": {:.1}", self.build_points_per_s);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"search\": {{");
        let _ = writeln!(s, "    \"k\": {K},");
        let _ = writeln!(s, "    \"ef\": {EF},");
        let _ = writeln!(s, "    \"qps_1t\": {:.1},", self.qps_1t);
        let _ = writeln!(s, "    \"qps_nt\": {:.1},", self.qps_nt);
        let _ = writeln!(s, "    \"speedup\": {:.3},", self.search_speedup);
        let _ = writeln!(s, "    \"recall_at_k\": {:.4},", self.recall);
        let _ = writeln!(s, "    \"recall_at_k_seq_build\": {:.4}", self.recall_seq);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"quantized\": {{");
        let _ = writeln!(s, "    \"rerank_factor\": {RERANK_FACTOR},");
        let _ = writeln!(s, "    \"qps_1t\": {:.1},", self.q_qps_1t);
        let _ = writeln!(s, "    \"qps_nt\": {:.1},", self.q_qps_nt);
        let _ = writeln!(
            s,
            "    \"speedup_vs_exact\": {:.3},",
            self.q_speedup_vs_exact
        );
        let _ = writeln!(s, "    \"recall_at_k\": {:.4},", self.q_recall);
        let _ = writeln!(s, "    \"recall_delta\": {:.4},", self.q_recall_delta);
        let _ = writeln!(s, "    \"matched\": {{");
        let _ = writeln!(s, "      \"ef\": {},", self.q_matched_ef);
        let _ = writeln!(s, "      \"qps_1t\": {:.1},", self.q_matched_qps_1t);
        let _ = writeln!(s, "      \"recall_at_k\": {:.4},", self.q_matched_recall);
        let _ = writeln!(
            s,
            "      \"speedup_vs_exact\": {:.3}",
            self.q_matched_speedup
        );
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"pool_is_deterministic\": {}",
            self.pool_is_deterministic
        );
        s.push_str("}\n");
        s
    }
}

fn measure(name: &str, data: &VectorSet, queries: &VectorSet, threads: usize) -> Record {
    let hnsw_cfg = HnswConfig::with_m(16).ef_construction(100).seed(7);

    // -- build: sequential reference, then the batch-parallel path --
    let t0 = Instant::now();
    let seq = Hnsw::build(data.clone(), Distance::L2, hnsw_cfg);
    let build_seq_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = rayon::with_num_threads(threads, || {
        Hnsw::build_parallel(data.clone(), Distance::L2, hnsw_cfg)
    });
    let build_par_s = t0.elapsed().as_secs_f64();

    // -- batched search via the pool, 1 thread vs N threads --
    let qvecs: Vec<Vec<f32>> = queries.iter().map(<[f32]>::to_vec).collect();
    let search_all = |threads: usize| {
        let t0 = Instant::now();
        let out = rayon::with_num_threads(threads, || {
            use rayon::prelude::*;
            qvecs
                .par_iter()
                .map_init(
                    || SearchScratch::with_capacity(par.len()),
                    |scratch, q| par.search_with_scratch(q, K, EF, scratch).0,
                )
                .collect::<Vec<_>>()
        });
        (out, t0.elapsed().as_secs_f64())
    };
    let _warmup = search_all(1); // untimed: page in graph + vectors
    let (res_1t, wall_1t) = search_all(1);
    let (res_nt, wall_nt) = search_all(threads);

    // -- the same graph again, SQ8 traversal + exact re-rank --
    let search_all_q = |threads: usize, ef: usize| {
        let t0 = Instant::now();
        let out = rayon::with_num_threads(threads, || {
            use rayon::prelude::*;
            qvecs
                .par_iter()
                .map_init(
                    || SearchScratch::with_capacity(par.len()),
                    |scratch, q| {
                        par.search_quantized_with_scratch(q, K, ef, RERANK_FACTOR, scratch)
                            .0
                    },
                )
                .collect::<Vec<_>>()
        });
        (out, t0.elapsed().as_secs_f64())
    };
    let _warmup = search_all_q(1, EF); // untimed: page in codes + norms
    let (qres_1t, qwall_1t) = search_all_q(1, EF);
    let (qres_nt, qwall_nt) = search_all_q(threads, EF);

    // -- recall against brute force, for both graphs: the batch-parallel
    // build produces a *different* (equally valid) graph than the
    // sequential build, so quality parity is the meaningful comparison --
    let gt = ground_truth::brute_force(data, queries, K, Distance::L2);
    let recall = ground_truth::recall_at_k(&res_nt, &gt, K).mean;
    let q_recall = ground_truth::recall_at_k(&qres_nt, &gt, K).mean;
    let mut scratch = SearchScratch::with_capacity(seq.len());
    let seq_res: Vec<_> = qvecs
        .iter()
        .map(|q| seq.search_with_scratch(q, K, EF, &mut scratch).0)
        .collect();
    let recall_seq = ground_truth::recall_at_k(&seq_res, &gt, K).mean;

    // -- equal-recall operating point: walk the ef ladder from the
    // cheapest rung up and stop at the first whose quantized recall lands
    // within the gate tolerance of the exact path's recall at EF --
    let mut matched = None;
    for ef in EF_LADDER {
        let (r, wall) = search_all_q(1, ef);
        let rec = ground_truth::recall_at_k(&r, &gt, K).mean;
        let qps = qvecs.len() as f64 / wall.max(1e-9);
        if rec >= recall - MAX_RECALL_DELTA || ef == EF {
            matched = Some((ef, qps, rec));
            break;
        }
    }
    let (q_matched_ef, q_matched_qps_1t, q_matched_recall) =
        matched.expect("EF_LADDER ends with EF, so the sweep always lands");

    // determinism spot-check: the pool is order-preserving, so the same
    // graph searched at 1 and at N threads must answer bit-identically
    let matches = res_1t == res_nt;

    Record {
        dataset: name.to_string(),
        points: data.len(),
        dim: data.dim(),
        n_queries: queries.len(),
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, usize::from),
        build_seq_s,
        build_par_s,
        build_speedup: build_seq_s / build_par_s.max(1e-9),
        build_points_per_s: data.len() as f64 / build_par_s.max(1e-9),
        qps_1t: qvecs.len() as f64 / wall_1t.max(1e-9),
        qps_nt: qvecs.len() as f64 / wall_nt.max(1e-9),
        search_speedup: wall_1t / wall_nt.max(1e-9),
        recall,
        recall_seq,
        pool_is_deterministic: matches,
        q_qps_1t: qvecs.len() as f64 / qwall_1t.max(1e-9),
        q_qps_nt: qvecs.len() as f64 / qwall_nt.max(1e-9),
        q_speedup_vs_exact: wall_1t / qwall_1t.max(1e-9),
        q_recall,
        q_recall_delta: recall - q_recall,
        q_is_deterministic: qres_1t == qres_nt,
        q_matched_ef,
        q_matched_qps_1t,
        q_matched_recall,
        q_matched_speedup: q_matched_qps_1t * wall_1t / qvecs.len() as f64,
    }
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    // (name, constructor) pairs: workloads are built lazily, after the
    // `--only` filter, so a filtered invocation (the CI MDC_32K leg) does
    // not pay for generating the datasets it skips
    type WorkloadCtor = fn(Scale) -> datasets::Workload;
    let menu: Vec<(&str, WorkloadCtor)> = if args.smoke {
        vec![("SYN_SMOKE", datasets::smoke)]
    } else {
        vec![
            ("SYN_1M", datasets::syn_1m),
            ("SYN_10M", datasets::syn_10m),
            ("MDC_32K", datasets::mdc_32k),
        ]
    };

    for (name, build) in menu {
        if let Some(only) = &args.only {
            if !name.contains(only.as_str()) {
                eprintln!("perf: skipping {name} (--only {only})");
                continue;
            }
        }
        let w = build(scale);
        eprintln!(
            "perf: {} ({} x {}, {} queries, {} threads) ...",
            w.name,
            w.data.len(),
            w.data.dim(),
            w.queries.len(),
            args.threads
        );
        let rec = measure(w.name, &w.data, &w.queries, args.threads);
        assert!(
            rec.pool_is_deterministic,
            "{}: pooled search diverged between 1 and {} threads",
            w.name, args.threads
        );
        assert!(
            rec.q_is_deterministic,
            "{}: quantized search diverged between 1 and {} threads",
            w.name, args.threads
        );
        if args.gate {
            assert!(
                rec.q_recall_delta <= MAX_RECALL_DELTA,
                "{}: quantized recall@{K} {:.4} trails exact {:.4} by {:.4} (> {MAX_RECALL_DELTA})",
                w.name,
                rec.q_recall,
                rec.recall,
                rec.q_recall_delta
            );
            // absolute floor, not just parity: on the clustered workloads a
            // descent regression drops exact and quantized recall together,
            // which the delta gate alone would wave through
            assert!(
                rec.recall >= w.min_exact_recall,
                "{}: exact recall@{K} {:.4} below the workload floor {:.2}",
                w.name,
                rec.recall,
                w.min_exact_recall
            );
        }
        let path = format!("{}/BENCH_{}.json", args.out, w.name);
        std::fs::write(&path, rec.to_json()).expect("write BENCH json");
        println!(
            "{path}: build {:.2}x ({:.0} pts/s), search {:.2}x ({:.0} qps), recall@{K} {:.3}, \
             quantized {:.2}x vs exact ({:.0} qps, recall {:.3}), \
             matched-recall {:.2}x at ef={} ({:.0} qps, recall {:.3}) \
             [host has {} core(s)]",
            rec.build_speedup,
            rec.build_points_per_s,
            rec.search_speedup,
            rec.qps_nt,
            rec.recall,
            rec.q_speedup_vs_exact,
            rec.q_qps_nt,
            rec.q_recall,
            rec.q_matched_speedup,
            rec.q_matched_ef,
            rec.q_matched_qps_1t,
            rec.q_matched_recall,
            rec.host_cores
        );
    }
}
