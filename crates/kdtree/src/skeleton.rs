//! Global KD split tree over partitions, with exact ball-intersection
//! routing.

use fastann_data::select::select_nth;
use fastann_data::VectorSet;

#[derive(Clone, Debug)]
enum SkNode {
    Inner {
        dim: u32,
        split: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        partition: u32,
    },
}

/// Builder used by the distributed construction to assemble a skeleton from
/// already-computed splits.
#[derive(Debug, Default)]
pub struct KdSkeletonBuilder {
    nodes: Vec<SkNode>,
}

impl KdSkeletonBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a leaf naming `partition`; returns its handle.
    pub fn leaf(&mut self, partition: u32) -> u32 {
        self.nodes.push(SkNode::Leaf { partition });
        (self.nodes.len() - 1) as u32
    }

    /// Adds an inner split node; returns its handle.
    pub fn inner(&mut self, dim: u32, split: f32, left: u32, right: u32) -> u32 {
        assert!((left as usize) < self.nodes.len(), "unknown left child");
        assert!((right as usize) < self.nodes.len(), "unknown right child");
        self.nodes.push(SkNode::Inner {
            dim,
            split,
            left,
            right,
        });
        (self.nodes.len() - 1) as u32
    }

    /// Finishes the skeleton with `root` as the root handle.
    pub fn finish(self, root: u32) -> KdSkeleton {
        assert!((root as usize) < self.nodes.len(), "unknown root");
        KdSkeleton {
            nodes: self.nodes,
            root,
        }
    }
}

/// The master-side global KD tree: leaves are partitions.
#[derive(Clone, Debug)]
pub struct KdSkeleton {
    nodes: Vec<SkNode>,
    root: u32,
}

impl KdSkeleton {
    /// Builds the skeleton locally over `data` (sequential reference for
    /// the distributed builder): recursive coordinate-median splits on the
    /// widest dimension until `n_partitions` leaves exist. Returns the
    /// skeleton and the per-partition row ids.
    pub fn build_local(data: &VectorSet, n_partitions: usize) -> (KdSkeleton, Vec<Vec<u32>>) {
        assert!(
            n_partitions >= 1 && n_partitions.is_power_of_two(),
            "partitions must be 2^k"
        );
        assert!(data.len() >= n_partitions, "more partitions than points");
        let mut b = KdSkeletonBuilder::new();
        let mut parts = Vec::with_capacity(n_partitions);
        let all: Vec<u32> = (0..data.len() as u32).collect();
        let root = split_rec(data, all, n_partitions, &mut b, &mut parts);
        (b.finish(root), parts)
    }

    /// Number of leaf partitions.
    pub fn n_partitions(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, SkNode::Leaf { .. }))
            .count()
    }

    /// The home partition of `q` (descend by split sign). Returns the
    /// partition id and the number of scalar comparisons made.
    pub fn home_partition(&self, q: &[f32]) -> (u32, u64) {
        let mut node = self.root;
        let mut cmps = 0u64;
        loop {
            match &self.nodes[node as usize] {
                SkNode::Leaf { partition } => return (*partition, cmps),
                SkNode::Inner {
                    dim,
                    split,
                    left,
                    right,
                } => {
                    cmps += 1;
                    node = if q[*dim as usize] <= *split {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Every partition whose cell intersects the L2 ball of `radius` around
    /// `q` — the exact fan-out set of the second query phase. Uses the
    /// classic incremental cell-distance traversal.
    pub fn partitions_in_ball(&self, q: &[f32], radius: f32) -> Vec<u32> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        self.ball_rec(self.root, q, r2, 0.0, &mut out);
        out.sort_unstable();
        out
    }

    fn ball_rec(&self, node: u32, q: &[f32], r2: f32, cell_d2: f32, out: &mut Vec<u32>) {
        match &self.nodes[node as usize] {
            SkNode::Leaf { partition } => out.push(*partition),
            SkNode::Inner {
                dim,
                split,
                left,
                right,
            } => {
                let diff = q[*dim as usize] - split;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.ball_rec(near, q, r2, cell_d2, out);
                let far_d2 = cell_d2 + diff * diff;
                if far_d2 <= r2 {
                    self.ball_rec(far, q, r2, far_d2, out);
                }
            }
        }
    }

    /// Serialized size estimate (for skeleton broadcast costing).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * 16
    }
}

fn split_rec(
    data: &VectorSet,
    ids: Vec<u32>,
    parts_left: usize,
    b: &mut KdSkeletonBuilder,
    parts: &mut Vec<Vec<u32>>,
) -> u32 {
    if parts_left == 1 {
        let pid = parts.len() as u32;
        parts.push(ids);
        return b.leaf(pid);
    }
    // widest dimension over this subset
    let dim = {
        let d = data.dim();
        let mut lo = vec![f32::INFINITY; d];
        let mut hi = vec![f32::NEG_INFINITY; d];
        for &id in &ids {
            let row = data.get(id as usize);
            for j in 0..d {
                lo[j] = lo[j].min(row[j]);
                hi[j] = hi[j].max(row[j]);
            }
        }
        (0..d)
            .max_by(|&a, &c| (hi[a] - lo[a]).total_cmp(&(hi[c] - lo[c])))
            .expect("dim > 0")
    };
    let mut coords: Vec<f32> = ids.iter().map(|&i| data.get(i as usize)[dim]).collect();
    let mid = (coords.len() - 1) / 2;
    let split = select_nth(&mut coords, mid);
    let mut left_ids = Vec::with_capacity(ids.len() / 2 + 1);
    let mut right_ids = Vec::with_capacity(ids.len() / 2 + 1);
    for &id in &ids {
        if data.get(id as usize)[dim] <= split {
            left_ids.push(id);
        } else {
            right_ids.push(id);
        }
    }
    // guard degenerate splits (many ties)
    while right_ids.len() < parts_left / 2 && !left_ids.is_empty() {
        right_ids.push(left_ids.pop().expect("non-empty"));
    }
    while left_ids.len() < parts_left / 2 && !right_ids.is_empty() {
        left_ids.push(right_ids.pop().expect("non-empty"));
    }
    let left = split_rec(data, left_ids, parts_left / 2, b, parts);
    let right = split_rec(data, right_ids, parts_left / 2, b, parts);
    b.inner(dim as u32, split, left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::{synth, Distance};

    #[test]
    fn build_local_covers_dataset() {
        let data = synth::sift_like(1000, 8, 1);
        let (sk, parts) = KdSkeleton::build_local(&data, 8);
        assert_eq!(sk.n_partitions(), 8);
        let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn home_partition_contains_point() {
        let data = synth::sift_like(500, 8, 2);
        let (sk, parts) = KdSkeleton::build_local(&data, 8);
        let mut misrouted = 0;
        for (pid, ids) in parts.iter().enumerate() {
            for &id in ids {
                let (home, _) = sk.home_partition(data.get(id as usize));
                if home as usize != pid {
                    misrouted += 1;
                }
            }
        }
        // tie-rebalancing may displace a handful of boundary points
        assert!(
            misrouted <= 5,
            "{misrouted} points routed away from their partition"
        );
    }

    #[test]
    fn zero_radius_ball_is_home_only() {
        let data = synth::sift_like(500, 8, 3);
        let (sk, _) = KdSkeleton::build_local(&data, 16);
        let q = data.get(7);
        let (home, _) = sk.home_partition(q);
        let in_ball = sk.partitions_in_ball(q, 0.0);
        assert_eq!(in_ball, vec![home]);
    }

    #[test]
    fn huge_radius_ball_is_everything() {
        let data = synth::sift_like(500, 8, 4);
        let (sk, _) = KdSkeleton::build_local(&data, 16);
        let in_ball = sk.partitions_in_ball(data.get(0), 1e9);
        assert_eq!(in_ball, (0..16u32).collect::<Vec<_>>());
    }

    #[test]
    fn ball_routing_is_sound() {
        // every partition containing a point within `radius` of q must be
        // in the returned set
        let data = synth::sift_like(2000, 8, 5);
        let (sk, parts) = KdSkeleton::build_local(&data, 16);
        let q = synth::queries_near(&data, 1, 0.05, 6);
        let q = q.get(0);
        let radius = 150.0f32;
        let in_ball = sk.partitions_in_ball(q, radius);
        for (pid, ids) in parts.iter().enumerate() {
            let has_close = ids
                .iter()
                .any(|&id| Distance::L2.eval(q, data.get(id as usize)) <= radius);
            if has_close {
                assert!(
                    in_ball.contains(&(pid as u32)),
                    "partition {pid} holds a point within {radius} but was not routed"
                );
            }
        }
    }

    #[test]
    fn fanout_grows_with_dimension() {
        // the Table III effect: same radius in units of typical NN distance
        // touches far more partitions in high dimension
        let fanout = |dim: usize| {
            let data = synth::deep_like(2000, dim, 7);
            let (sk, _) = KdSkeleton::build_local(&data, 32);
            let qs = synth::queries_near(&data, 10, 0.02, 8);
            // radius = exact 10-NN distance per query
            let mut total = 0usize;
            for i in 0..10 {
                let gt =
                    fastann_data::ground_truth::brute_force_one(&data, qs.get(i), 10, Distance::L2);
                let r = gt.last().expect("k results").dist;
                total += sk.partitions_in_ball(qs.get(i), r).len();
            }
            total as f64 / 10.0
        };
        let low = fanout(2);
        let high = fanout(48);
        assert!(
            high >= low * 2.0,
            "expected fan-out explosion with dimension: {low:.1} vs {high:.1}"
        );
    }

    #[test]
    fn builder_manual_tree_routes() {
        let mut b = KdSkeletonBuilder::new();
        let l = b.leaf(0);
        let r = b.leaf(1);
        let root = b.inner(0, 10.0, l, r);
        let sk = b.finish(root);
        assert_eq!(sk.home_partition(&[5.0, 0.0]).0, 0);
        assert_eq!(sk.home_partition(&[15.0, 0.0]).0, 1);
        assert_eq!(sk.partitions_in_ball(&[9.0, 0.0], 2.0), vec![0, 1]);
        assert_eq!(sk.partitions_in_ball(&[5.0, 0.0], 2.0), vec![0]);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let data = synth::sift_like(100, 4, 9);
        let _ = KdSkeleton::build_local(&data, 6);
    }
}
