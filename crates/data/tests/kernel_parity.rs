//! Parity suite for the chunked kernels (satellite of the quantized-first
//! traversal PR): every chunked kernel must be *byte-identical* to a naive
//! scalar reference across lengths 0..=67, crossing the 8-lane chunk
//! boundary many times, and the release-mode length-mismatch asserts from
//! PR 3 must keep firing.
//!
//! Byte identity between two different summation orders is only guaranteed
//! when every partial sum is exact, so the inputs are small integers
//! represented exactly in f32 (all intermediates stay far below 2^24).
//! That makes `to_bits()` equality a legitimate cross-implementation
//! check rather than a flaky float comparison.

use fastann_data::kernels;

// Explicit fold from +0.0: `Iterator::sum` for floats starts from -0.0
// (the additive identity preserving signed zero), which would make empty
// inputs spuriously differ from the kernels in the bit domain.

fn ref_squared_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .fold(0.0, |s, v| s + v)
}

fn ref_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).fold(0.0, |s, v| s + v)
}

fn ref_l1(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, |s, v| s + v)
}

fn ref_chebyshev(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn ref_sq8_dot(w: &[f32], codes: &[u8]) -> f32 {
    w.iter()
        .zip(codes)
        .map(|(x, &c)| x * c as f32)
        .fold(0.0, |s, v| s + v)
}

fn ref_sq8_norm(step: &[f32], codes: &[u8]) -> f32 {
    step.iter()
        .zip(codes)
        .map(|(s, &c)| (s * c as f32) * (s * c as f32))
        .fold(0.0, |s, v| s + v)
}

/// Deterministic integer-valued f32 inputs in [-16, 15]; exact in f32.
fn input_pair(len: usize, salt: u64) -> (Vec<f32>, Vec<f32>) {
    let mut x = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = || {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 29;
        ((x % 32) as i64 - 16) as f32
    };
    let a = (0..len).map(|_| next()).collect();
    let b = (0..len).map(|_| next()).collect();
    (a, b)
}

#[test]
fn f32_kernels_bit_identical_to_scalar_reference_across_lengths() {
    for len in 0..=67usize {
        for salt in 0..4u64 {
            let (a, b) = input_pair(len, salt.wrapping_add(len as u64 * 131));
            assert_eq!(
                kernels::squared_l2(&a, &b).to_bits(),
                ref_squared_l2(&a, &b).to_bits(),
                "squared_l2 diverged at len {len} salt {salt}"
            );
            assert_eq!(
                kernels::dot(&a, &b).to_bits(),
                ref_dot(&a, &b).to_bits(),
                "dot diverged at len {len} salt {salt}"
            );
            assert_eq!(
                kernels::l1(&a, &b).to_bits(),
                ref_l1(&a, &b).to_bits(),
                "l1 diverged at len {len} salt {salt}"
            );
            assert_eq!(
                kernels::chebyshev(&a, &b).to_bits(),
                ref_chebyshev(&a, &b).to_bits(),
                "chebyshev diverged at len {len} salt {salt}"
            );
        }
    }
}

#[test]
fn sq8_kernels_bit_identical_to_scalar_reference_across_lengths() {
    for len in 0..=67usize {
        let (w, _) = input_pair(len, 0xab54a98c + len as u64);
        let codes: Vec<u8> = (0..len).map(|i| ((i * 37 + len) % 256) as u8).collect();
        assert_eq!(
            kernels::sq8_dot(&w, &codes).to_bits(),
            ref_sq8_dot(&w, &codes).to_bits(),
            "sq8_dot diverged at len {len}"
        );
        // integer steps keep step*code exact up to 255*16 < 2^24
        let step: Vec<f32> = (0..len).map(|i| (1 + i % 4) as f32).collect();
        assert_eq!(
            kernels::sq8_norm(&step, &codes).to_bits(),
            ref_sq8_norm(&step, &codes).to_bits(),
            "sq8_norm diverged at len {len}"
        );
    }
}

#[test]
fn kernels_are_pure_functions_of_input() {
    // same input, repeated calls: bit-identical (no hidden state) -- the
    // property the cross-thread determinism contract leans on
    let (a, b) = input_pair(67, 7);
    for _ in 0..3 {
        assert_eq!(
            kernels::squared_l2(&a, &b).to_bits(),
            kernels::squared_l2(&a, &b).to_bits()
        );
        assert_eq!(
            kernels::dot(&a, &b).to_bits(),
            kernels::dot(&a, &b).to_bits()
        );
    }
}

// -- release-mode length-mismatch regressions (PR 3 contract) ------------
// These run in whatever profile the suite runs in; ci.sh runs the release
// profile too, so a debug_assert regression would be caught there.

#[test]
#[should_panic(expected = "different dimensions")]
fn squared_l2_length_mismatch_panics() {
    let _ = kernels::squared_l2(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
}

#[test]
#[should_panic(expected = "different dimensions")]
fn dot_length_mismatch_panics() {
    let _ = kernels::dot(&[1.0], &[]);
}

#[test]
#[should_panic(expected = "different dimensions")]
fn l1_length_mismatch_panics() {
    let _ = kernels::l1(&[1.0, 2.0], &[1.0, 2.0, 3.0]);
}

#[test]
#[should_panic(expected = "different dimensions")]
fn chebyshev_length_mismatch_panics() {
    let _ = kernels::chebyshev(&[], &[0.5]);
}

#[test]
#[should_panic(expected = "different dimensions")]
fn sq8_dot_length_mismatch_panics() {
    let _ = kernels::sq8_dot(&[1.0, 2.0], &[3u8]);
}
