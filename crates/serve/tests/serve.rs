//! Integration tests for the serving runtime: thread-count determinism,
//! overload shedding, cache/cold equivalence, rebuild invalidation, and
//! deadline propagation into the fault-tolerant engine path.

use fastann_core::{DistIndex, EngineConfig, SearchOptions};
use fastann_data::quant::Sq8;
use fastann_data::{synth, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_mpisim::FaultPlan;
use fastann_serve::{
    AdmissionPolicy, ClosedLoopSpec, ClosedRequest, Outcome, Rejection, Request, ServeConfig,
    ServeRuntime,
};

const DIM: usize = 16;

fn corpus(seed: u64) -> VectorSet {
    synth::sift_like(3_000, DIM, seed)
}

fn build_index(data: &VectorSet, seed: u64, threads: usize) -> DistIndex {
    DistIndex::build(
        data,
        EngineConfig::new(8, 2)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
            .with_seed(seed)
            .with_threads(threads),
    )
}

fn runtime(data: &VectorSet, seed: u64, threads: usize, cfg: ServeConfig) -> ServeRuntime {
    ServeRuntime::new(build_index(data, seed, threads), Sq8::encode(data), cfg)
}

/// A mixed open-loop workload: bursty arrivals, two tenants, repeated
/// queries (to exercise the cache) and a spread of deadlines.
fn mixed_workload(data: &VectorSet, n: usize, seed: u64) -> Vec<Request> {
    let distinct = n / 3 + 1;
    let queries = synth::queries_near(data, distinct, 0.02, seed);
    (0..n)
        .map(|i| {
            // bursts of 4 arrivals every 150 µs
            let at = (i / 4) as f64 * 150_000.0;
            let q = queries.get(i % distinct).to_vec();
            let r = Request::new(i as u64, at, q, 10).tenant((i % 2) as u32);
            if i % 5 == 0 {
                // generous deadline: 50 ms past arrival
                r.deadline_ns(at + 5e7)
            } else {
                r
            }
        })
        .collect()
}

#[test]
fn serve_report_is_bit_identical_across_thread_counts() {
    let data = corpus(42);
    let cfg = ServeConfig::new(SearchOptions::new(10)).with_batch(8, 100_000.0);
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let mut rt = runtime(&data, 42, threads, cfg.clone());
        runs.push(rt.serve_open(mixed_workload(&data, 60, 7)));
    }
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(
        a.report, b.report,
        "ServeReport must not depend on the thread count"
    );
    assert_eq!(
        a.report.fingerprint(),
        b.report.fingerprint(),
        "fingerprints compare full float bits"
    );
    assert_eq!(a.outcomes, b.outcomes, "per-request outcomes too");
    assert!(a.report.completed > 0);
    assert!(a.report.cache.hits > 0, "repeats should have hit the cache");
}

#[test]
fn closed_loop_is_deterministic_across_thread_counts_and_reruns() {
    let data = corpus(11);
    let queries = synth::queries_near(&data, 24, 0.02, 3);
    let mut fingerprints = Vec::new();
    for threads in [1usize, 4, 1] {
        let cfg = ServeConfig::new(SearchOptions::new(5)).with_batch(4, 50_000.0);
        let mut rt = runtime(&data, 11, threads, cfg);
        let run = rt.serve_closed(
            ClosedLoopSpec {
                clients: 6,
                total_requests: 48,
            },
            |id, _client| ClosedRequest {
                query: queries.get(id as usize % 24).to_vec(),
                k: 5,
                tenant: 0,
                deadline_rel_ns: f64::INFINITY,
            },
        );
        assert_eq!(run.report.requests, 48);
        assert_eq!(run.report.completed, 48);
        fingerprints.push(run.report.fingerprint());
    }
    assert_eq!(fingerprints[0], fingerprints[1], "threads 1 vs 4");
    assert_eq!(fingerprints[0], fingerprints[2], "rerun with same seed");
}

#[test]
fn overload_sheds_with_typed_rejections_and_bounded_p99() {
    let data = corpus(5);
    // a flood: 200 requests all at virtual time zero
    let flood = |seed| {
        let queries = synth::queries_near(&data, 200, 0.05, seed);
        (0..200)
            .map(|i| Request::new(i as u64, 0.0, queries.get(i).to_vec(), 10))
            .collect::<Vec<_>>()
    };

    // baseline: open admission swallows everything and queues it
    let open_cfg = ServeConfig::new(SearchOptions::new(10))
        .with_batch(16, 100_000.0)
        .with_cache_capacity(0);
    let mut open_rt = runtime(&data, 5, 1, open_cfg);
    let open = open_rt.serve_open(flood(21));
    assert_eq!(open.report.rejected_overloaded, 0);

    // guarded: a depth bound sheds the flood
    let tight_cfg = ServeConfig::new(SearchOptions::new(10))
        .with_batch(16, 100_000.0)
        .with_cache_capacity(0)
        .with_admission(AdmissionPolicy {
            tenant_rate_qps: f64::INFINITY,
            tenant_burst: 64.0,
            max_queue_depth: 32,
            partition_queue_depth: usize::MAX,
        });
    let mut tight_rt = runtime(&data, 5, 1, tight_cfg);
    let tight = tight_rt.serve_open(flood(21));

    assert!(
        tight.report.rejected_overloaded > 0,
        "the depth bound must shed part of the flood"
    );
    for o in &tight.outcomes {
        if let Outcome::Rejected { reason, .. } = o {
            assert_eq!(*reason, Rejection::Overloaded, "typed rejection");
        }
    }
    // conservation: every request either completed or was rejected
    assert_eq!(
        tight.report.requests,
        tight.report.completed
            + tight.report.rejected_overloaded
            + tight.report.rejected_deadline
            + tight.report.rejected_hot_partition
    );
    // the point of shedding: admitted requests keep a bounded tail, while
    // the open baseline lets queueing delay run away with the flood
    assert!(
        tight.report.p99_ns < open.report.p99_ns,
        "shedding must improve the admitted tail: tight {} vs open {}",
        tight.report.p99_ns,
        open.report.p99_ns
    );
    // absolute bound: at most depth-bound worth of engine batches ahead
    let per_batch = tight.report.engine_busy_ns / tight.report.batches as f64;
    assert!(
        tight.report.p99_ns <= 4.0 * 32.0 / 16.0 * per_batch + 1e6,
        "p99 {} must stay within a small multiple of the backlog bound",
        tight.report.p99_ns
    );
}

#[test]
fn cache_hit_is_identical_to_cold_search() {
    let data = corpus(9);
    let queries = synth::queries_near(&data, 10, 0.02, 17);
    let reqs = |offset: u64| {
        (0..10)
            .map(|i| {
                Request::new(
                    offset + i as u64,
                    i as f64 * 300_000.0,
                    queries.get(i).to_vec(),
                    10,
                )
            })
            .collect::<Vec<_>>()
    };

    // cold: cache disabled entirely
    let cold_cfg = ServeConfig::new(SearchOptions::new(10))
        .with_batch(1, 0.0)
        .with_cache_capacity(0);
    let mut cold_rt = runtime(&data, 9, 1, cold_cfg);
    let cold = cold_rt.serve_open(reqs(0));
    assert_eq!(cold.report.cache.hits, 0);

    // warm: identical queries twice through a cached runtime
    let warm_cfg = ServeConfig::new(SearchOptions::new(10))
        .with_batch(1, 0.0)
        .with_cache_capacity(64);
    let mut warm_rt = runtime(&data, 9, 1, warm_cfg);
    let first = warm_rt.serve_open(reqs(0));
    assert_eq!(first.report.cache.hits, 0, "first pass fills the cache");
    let second = warm_rt.serve_open(reqs(100));
    assert_eq!(second.report.cache.hits, 10, "second pass hits every time");

    for i in 0..10u64 {
        let cold_c = cold.completion_of(i).expect("cold completed");
        let hit_c = second.completion_of(100 + i).expect("warm completed");
        assert!(hit_c.cache_hit);
        assert_eq!(
            hit_c.results, cold_c.results,
            "a cache hit must return exactly the cold-search answer"
        );
    }
}

#[test]
fn installing_a_rebuilt_index_invalidates_the_cache() {
    let data = corpus(13);
    let queries = synth::queries_near(&data, 8, 0.02, 29);
    let reqs = |offset: u64| {
        (0..8)
            .map(|i| {
                Request::new(
                    offset + i as u64,
                    i as f64 * 300_000.0,
                    queries.get(i).to_vec(),
                    10,
                )
            })
            .collect::<Vec<_>>()
    };

    let cfg = ServeConfig::new(SearchOptions::new(10))
        .with_batch(1, 0.0)
        .with_cache_capacity(64);
    let mut rt = runtime(&data, 13, 1, cfg.clone());
    let _warmup = rt.serve_open(reqs(0));

    // a rebuild with a different seed produces a different graph
    rt.install_index(build_index(&data, 777, 1));
    let after = rt.serve_open(reqs(100));
    assert_eq!(
        after.report.cache.hits - _warmup.report.cache.hits,
        0,
        "no request after the rebuild may be served from the old epoch"
    );
    assert!(
        rt.cache_stats().stale_drops > 0,
        "the old entries were dropped as stale"
    );

    // and the answers must match a cache-free runtime on the new index
    let mut fresh = ServeRuntime::new(
        build_index(&data, 777, 1),
        Sq8::encode(&data),
        cfg.with_cache_capacity(0),
    );
    let reference = fresh.serve_open(reqs(100));
    for i in 100..108u64 {
        assert_eq!(
            after.completion_of(i).expect("served").results,
            reference.completion_of(i).expect("served").results,
            "post-rebuild answers come from the new index"
        );
    }
}

#[test]
fn deadlines_propagate_into_the_chaos_path() {
    let data = corpus(31);
    let queries = synth::queries_near(&data, 20, 0.02, 37);
    // drop a fraction of result messages so probes need retries, which a
    // tight per-probe deadline then bounds
    let plan = FaultPlan::new(0xFEED).drop_msgs(None, None, None, 0.15);
    let cfg = ServeConfig::new(
        SearchOptions::new(10)
            .with_timeout_ns(1e9)
            .with_max_retries(4),
    )
    .with_batch(4, 50_000.0)
    .with_cache_capacity(0)
    .with_fault(plan);
    let mut rt = runtime(&data, 31, 1, cfg);
    let reqs: Vec<Request> = (0..20)
        .map(|i| {
            Request::new(i as u64, i as f64 * 200_000.0, queries.get(i).to_vec(), 10)
                // 10 ms deadline: loose enough to admit, tight enough to
                // clamp the engine's 1 s per-probe timeout
                .deadline_ns(i as f64 * 200_000.0 + 1e7)
        })
        .collect();
    let run = rt.serve_open(reqs);

    assert_eq!(run.report.requests, 20);
    assert!(run.report.completed > 0, "chaos must not stop the service");
    assert!(
        run.report.retries > 0 || run.report.failovers > 0 || run.report.degraded > 0,
        "the fault plan should have been felt"
    );
    for c in run.outcomes.iter().filter_map(Outcome::completion) {
        assert!(c.results.len() <= 10);
        for w in c.results.windows(2) {
            assert!(w[0].dist <= w[1].dist, "results stay sorted under chaos");
        }
    }
    // determinism holds on the chaos path too
    let plan2 = FaultPlan::new(0xFEED).drop_msgs(None, None, None, 0.15);
    let cfg2 = ServeConfig::new(
        SearchOptions::new(10)
            .with_timeout_ns(1e9)
            .with_max_retries(4),
    )
    .with_batch(4, 50_000.0)
    .with_cache_capacity(0)
    .with_fault(plan2);
    let mut rt2 = runtime(&data, 31, 4, cfg2);
    let reqs2: Vec<Request> = (0..20)
        .map(|i| {
            Request::new(i as u64, i as f64 * 200_000.0, queries.get(i).to_vec(), 10)
                .deadline_ns(i as f64 * 200_000.0 + 1e7)
        })
        .collect();
    let run2 = rt2.serve_open(reqs2);
    assert_eq!(
        run.report.fingerprint(),
        run2.report.fingerprint(),
        "chaos serving is thread-count deterministic"
    );
}

#[test]
fn per_partition_probes_account_for_dispatched_work() {
    let data = corpus(3);
    let cfg = ServeConfig::new(SearchOptions::new(10))
        .with_batch(8, 100_000.0)
        .with_cache_capacity(0);
    let mut rt = runtime(&data, 3, 1, cfg);
    let run = rt.serve_open(mixed_workload(&data, 32, 19));
    assert_eq!(run.report.per_partition_probes.len(), 8);
    let total: u64 = run.report.per_partition_probes.iter().sum();
    assert!(
        total >= run.report.completed,
        "every completed engine request probed at least one partition"
    );
}
