//! Chunked, auto-vectorization-friendly inner loops shared by the f32 and
//! SQ8 distance paths.
//!
//! Every kernel walks its inputs in fixed-width [`LANES`]-wide chunks with
//! one accumulator per lane and no per-element branching — the shape LLVM
//! reliably turns into packed SIMD in release builds (the portable
//! equivalent of the hand-written AVX kernels ANN libraries ship). The
//! remainder elements reuse the same accumulator array, so the reduction
//! order is a pure function of the input length: results are
//! bit-identical across calls, threads and thread counts, which is what
//! the workspace determinism contract requires.
//!
//! The f32 kernels ([`squared_l2`], [`dot`], [`l1`], [`chebyshev`]) back
//! [`crate::metric::Distance`]; the SQ8 kernels ([`sq8_dot`],
//! [`sq8_norm`]) back the asymmetric quantized distance of
//! [`crate::quant::Sq8`], which streams one *byte* per dimension instead
//! of four and therefore bounds the memory traffic of a quantized-first
//! graph traversal at a quarter of the exact path's.

/// Accumulator width of every chunked kernel. Eight f32 lanes is one AVX2
/// register (and half an AVX-512 register); narrower widths leave packed
/// units idle, wider ones spill on SSE-only hosts.
pub const LANES: usize = 8;

/// Folds a lane accumulator in a fixed pairwise order. The order never
/// depends on data or environment, so the reduction is deterministic.
#[inline]
fn hsum(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Folds a lane maximum in a fixed pairwise order.
#[inline]
fn hmax(acc: [f32; LANES]) -> f32 {
    acc[0]
        .max(acc[4])
        .max(acc[1].max(acc[5]))
        .max(acc[2].max(acc[6]).max(acc[3].max(acc[7])))
}

/// Squared Euclidean distance, chunked over [`LANES`] accumulators.
///
/// # Panics
/// Panics on a length mismatch, in every build profile. (An earlier
/// version silently computed over the shorter prefix in release builds,
/// turning dimension bugs into wrong-but-plausible distances.)
#[inline]
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_l2 between different dimensions");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            let d = xa[j] - xb[j];
            acc[j] += d * d;
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = x - y;
        acc[j] += d * d;
    }
    hsum(acc)
}

/// Dot product, chunked over [`LANES`] accumulators.
///
/// # Panics
/// Panics on a length mismatch, in every build profile — the same
/// explicit-mismatch contract as [`squared_l2`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot between different dimensions");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            acc[j] += xa[j] * xb[j];
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[j] += x * y;
    }
    hsum(acc)
}

/// Manhattan distance, chunked over [`LANES`] accumulators.
///
/// # Panics
/// Panics on a length mismatch, in every build profile.
#[inline]
pub fn l1(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "l1 between different dimensions");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            acc[j] += (xa[j] - xb[j]).abs();
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[j] += (x - y).abs();
    }
    hsum(acc)
}

/// Chebyshev distance, chunked over [`LANES`] max accumulators.
///
/// # Panics
/// Panics on a length mismatch, in every build profile.
#[inline]
pub fn chebyshev(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "chebyshev between different dimensions");
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..LANES {
            acc[j] = acc[j].max((xa[j] - xb[j]).abs());
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        acc[j] = acc[j].max((x - y).abs());
    }
    hmax(acc)
}

/// Weighted dot product of an f32 query vector against one SQ8 code row:
/// `Σ_d w[d] · codes[d]`.
///
/// This is the per-candidate inner loop of the asymmetric quantized
/// distance (see [`crate::quant::Sq8::asym_l2`]): the byte codes widen to
/// f32 in-register, so the loop does one load + one fused multiply-add
/// per dimension over a quarter of the exact path's bytes, with no
/// per-element branching and no square root.
///
/// # Panics
/// Panics on a length mismatch, in every build profile.
#[inline]
pub fn sq8_dot(w: &[f32], codes: &[u8]) -> f32 {
    assert_eq!(w.len(), codes.len(), "sq8_dot between different dimensions");
    let mut acc = [0.0f32; LANES];
    let mut cw = w.chunks_exact(LANES);
    let mut cc = codes.chunks_exact(LANES);
    for (xw, xc) in (&mut cw).zip(&mut cc) {
        for j in 0..LANES {
            acc[j] += xw[j] * xc[j] as f32;
        }
    }
    for (j, (x, c)) in cw.remainder().iter().zip(cc.remainder()).enumerate() {
        acc[j] += x * *c as f32;
    }
    hsum(acc)
}

/// Squared grid norm of one SQ8 code row: `Σ_d (step[d] · codes[d])²`.
///
/// Precomputed once per row at encode time, it turns the asymmetric
/// distance into `‖q−lo‖² + norm − 2·sq8_dot(w, codes)` — a single
/// [`sq8_dot`] pass per candidate.
///
/// # Panics
/// Panics on a length mismatch, in every build profile.
#[inline]
pub fn sq8_norm(step: &[f32], codes: &[u8]) -> f32 {
    assert_eq!(
        step.len(),
        codes.len(),
        "sq8_norm between different dimensions"
    );
    let mut acc = [0.0f32; LANES];
    let mut cs = step.chunks_exact(LANES);
    let mut cc = codes.chunks_exact(LANES);
    for (xs, xc) in (&mut cs).zip(&mut cc) {
        for j in 0..LANES {
            let v = xs[j] * xc[j] as f32;
            acc[j] += v * v;
        }
    }
    for (j, (s, c)) in cs.remainder().iter().zip(cc.remainder()).enumerate() {
        let v = s * *c as f32;
        acc[j] += v * v;
    }
    hsum(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(squared_l2(&[], &[]), 0.0);
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(l1(&[], &[]), 0.0);
        assert_eq!(chebyshev(&[], &[]), 0.0);
        assert_eq!(sq8_dot(&[], &[]), 0.0);
        assert_eq!(sq8_norm(&[], &[]), 0.0);
    }

    #[test]
    fn matches_closed_forms() {
        let a: Vec<f32> = (0..13).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..13).map(|i| (2 * i) as f32).collect();
        // Σ i² for i in 0..13 = 650
        assert_eq!(squared_l2(&a, &b), 650.0);
        assert_eq!(l1(&a, &b), 78.0);
        assert_eq!(chebyshev(&a, &b), 12.0);
        assert_eq!(dot(&a, &b), 1300.0);
    }

    #[test]
    fn sq8_kernels_match_scalar_reference() {
        let w: Vec<f32> = (0..19).map(|i| (i as f32 - 9.0) * 0.5).collect();
        let codes: Vec<u8> = (0..19).map(|i| (i * 13 % 251) as u8).collect();
        let want_dot: f32 = w.iter().zip(&codes).map(|(x, &c)| x * c as f32).sum();
        assert!((sq8_dot(&w, &codes) - want_dot).abs() < 1e-2);
        let step = vec![0.25f32; 19];
        let want_norm: f32 = codes.iter().map(|&c| (0.25 * c as f32).powi(2)).sum();
        assert!((sq8_norm(&step, &codes) - want_norm).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn sq8_dot_rejects_dimension_mismatch() {
        let _ = sq8_dot(&[1.0, 2.0], &[1u8]);
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn sq8_norm_rejects_dimension_mismatch() {
        let _ = sq8_norm(&[1.0], &[1u8, 2]);
    }
}
