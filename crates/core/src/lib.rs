//! # fastann-core
//!
//! The paper's system: **distributed approximate k-NN search** that
//! partitions the dataset with a vantage-point tree across processing
//! cores, indexes each partition with HNSW, and answers query batches with
//! a master–worker protocol over the simulated MPI cluster.
//!
//! The pieces, mapped to the paper's sections:
//!
//! * [`DistIndex::build`] — Section IV-A, Algorithms 1–2: distributed
//!   VP-tree construction (distributed vantage-point selection, distributed
//!   median, `Alltoallv` shuffles), hybrid with a node-local phase that
//!   splits a node's data into one partition per core, then per-partition
//!   HNSW construction.
//! * [`SearchRequest`] — Section IV-B, Algorithms 3–4: the master routes
//!   each query to the partitions `F(q)` chosen by the VP-tree skeleton;
//!   worker nodes answer with multi-threaded local HNSW searches (modelled
//!   by per-node virtual thread pools). One builder covers the fault-free,
//!   traced, fault-tolerant and metered variants.
//! * [`SearchOptions::one_sided`] — Section IV-C1: workers deposit results
//!   straight into the master's memory window (`MPI_Get_accumulate`
//!   semantics) instead of two-sided replies.
//! * [`SearchOptions::routing`] — Section IV-C2, Algorithm 5, generalised
//!   behind [`RoutingPolicy`]: partitions are replicated across workgroups
//!   of `r` cores with queries dispatched round-robin
//!   ([`RoutingPolicy::Static`], the paper's scheme) or by
//!   power-of-two-choices over deterministic virtual-time queue depth
//!   ([`RoutingPolicy::PowerOfTwo`]), with per-partition replica counts
//!   ([`ReplicaMap`]) raised and decayed by the `fastann-serve` adaptive
//!   controller.
//! * [`search_batch_multi_owner`] — the multiple-owner variant discussed in
//!   Section IV: every node owns a hash-slice of the queries and routes
//!   them itself against a replicated skeleton.
//! * [`SearchRequest::chaos`] — the same master–worker protocol hardened
//!   against a seeded [`fastann_mpisim::FaultPlan`]: virtual-time request
//!   timeouts, bounded retry with failover across the Algorithm-5 replica
//!   workgroups, and a degraded mode that returns partial top-k (flagged
//!   per query in [`QueryReport::degraded`]) instead of hanging.
//!
//! ```no_run
//! use fastann_core::{DistIndex, EngineConfig, SearchOptions, SearchRequest};
//! use fastann_data::synth;
//!
//! let data = synth::sift_like(20_000, 64, 1);
//! let queries = synth::queries_near(&data, 100, 0.02, 2);
//! let index = DistIndex::build(&data, EngineConfig::new(16, 4));
//! let report = SearchRequest::new(&index, &queries)
//!     .opts(SearchOptions::new(10))
//!     .run();
//! println!("10-NN for 100 queries in {:.2} virtual ms", report.total_ns / 1e6);
//! ```

#![forbid(unsafe_code)]

mod build;
mod config;
mod engine;
mod local;
mod mutation;
mod owner;
mod persist;
mod request;
mod router;
mod routing;
mod stats;
/// Central registry of every wire tag the workspace's protocols use.
pub mod tags;
mod tune;

pub use build::{DistIndex, Partition};
pub use config::{EngineConfig, SearchOptions};
pub use engine::{TAG_DONE, TAG_END, TAG_FLUSH, TAG_FLUSH_ACK, TAG_QUERY, TAG_RESULT};
pub use fastann_vptree::RouteConfig;
pub use local::{LocalIndex, LocalIndexKind};
pub use mutation::{
    CompactionEvent, LogEntry, Mutation, MutationLog, MutationOutcome, MutationReport,
    MutationRequest, SplitEvent,
};
pub use owner::search_batch_multi_owner;
pub use persist::PersistError;
pub use request::SearchRequest;
pub use router::{ReplicaDispatcher, Router};
pub use routing::{ReplicaMap, RoutingPolicy};
pub use stats::{BuildStats, Distribution, QueryReport};
pub use tune::{tune_routing, TuneOutcome};
