//! Index serialization: write an HNSW index to a compact binary blob and
//! load it back — the "build once, ship the index as a static file" usage
//! (how Annoy-style indexes are shared across processes, cf. the paper's
//! related-work discussion).
//!
//! The format is a little-endian custom codec (no serde format dependency):
//!
//! ```text
//! magic "FANNHNSW" | version u32 | dist u8 | dim u32 | n u32
//! m u32 | m_max0 u32 | ef_construction u32 | level_mult f64
//! extend u8 | keep_pruned u8 | seed u64
//! entry_beam (v3): u32
//! entry: present u8 [node u32, level u8]
//! levels: n × u8
//! vectors: n × dim × f32
//! links: per node, per layer 0..=level: len u32, len × u32
//! quant (v2): present u8 [lo dim × f32, step dim × f32, codes n·dim × u8]
//! entry set (v3): len u8, len × u32
//! mutation state (v4): epoch u64, any u8 [tombstones n × u8]
//! ```
//!
//! Version 2 appends the trained SQ8 quantizer so a loaded index searches
//! quantized-first without retraining; version 3 adds the `entry_beam`
//! config knob and the diverse entry set; version 4 adds the mutation
//! epoch and the tombstone map (one byte per row, written only when any
//! row is tombstoned — the common all-live case costs nine bytes). Older
//! blobs are still accepted: version-1 files retrain their quantizer from
//! the stored vectors, pre-v3 files default `entry_beam` and recompute the
//! entry set — both pure functions of the stored data, so the loaded index
//! matches a fresh build exactly — and pre-v4 files load all-live at
//! epoch zero.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use fastann_data::quant::Sq8;
use fastann_data::{Distance, VectorSet};

use crate::config::HnswConfig;
use crate::index::Hnsw;

const MAGIC: &[u8; 8] = b"FANNHNSW";
const VERSION: u32 = 4;
/// Oldest version [`Hnsw::read_from`] still accepts (pre-quantizer).
const MIN_VERSION: u32 = 1;

/// Errors raised when loading a serialized index.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem (bad magic, truncation, inconsistent sizes).
    Format(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn dist_code(d: Distance) -> u8 {
    match d {
        Distance::L2 => 0,
        Distance::SquaredL2 => 1,
        Distance::L1 => 2,
        Distance::Chebyshev => 3,
        Distance::Cosine => 4,
        Distance::NegativeDot => 5,
    }
}

fn dist_from_code(c: u8) -> Result<Distance, LoadError> {
    Ok(match c {
        0 => Distance::L2,
        1 => Distance::SquaredL2,
        2 => Distance::L1,
        3 => Distance::Chebyshev,
        4 => Distance::Cosine,
        5 => Distance::NegativeDot,
        x => return Err(LoadError::Format(format!("unknown distance code {x}"))),
    })
}

struct Reader<R> {
    inner: R,
}

impl<R: Read> Reader<R> {
    fn u8(&mut self) -> Result<u8, LoadError> {
        let mut b = [0u8; 1];
        self.inner
            .read_exact(&mut b)
            .map_err(|_| LoadError::Format("truncated".into()))?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32, LoadError> {
        let mut b = [0u8; 4];
        self.inner
            .read_exact(&mut b)
            .map_err(|_| LoadError::Format("truncated".into()))?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, LoadError> {
        let mut b = [0u8; 8];
        self.inner
            .read_exact(&mut b)
            .map_err(|_| LoadError::Format("truncated".into()))?;
        Ok(u64::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64, LoadError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn f32(&mut self) -> Result<f32, LoadError> {
        Ok(f32::from_bits(self.u32()?))
    }
}

impl Hnsw {
    /// Serializes the index to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.len() * (self.dim() * 4 + 8));
        self.write_to(&mut out).expect("writing to Vec cannot fail");
        out
    }

    /// Writes the serialized index to any writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let cfg = self.config();
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&[dist_code(self.distance())])?;
        w.write_all(&(self.dim() as u32).to_le_bytes())?;
        w.write_all(&(self.len() as u32).to_le_bytes())?;
        w.write_all(&(cfg.m as u32).to_le_bytes())?;
        w.write_all(&(cfg.m_max0 as u32).to_le_bytes())?;
        w.write_all(&(cfg.ef_construction as u32).to_le_bytes())?;
        w.write_all(&cfg.level_mult.to_bits().to_le_bytes())?;
        w.write_all(&[u8::from(cfg.extend_candidates), u8::from(cfg.keep_pruned)])?;
        w.write_all(&cfg.seed.to_le_bytes())?;
        w.write_all(&(cfg.entry_beam as u32).to_le_bytes())?;
        match self.entry_snapshot() {
            Some((node, level)) => {
                w.write_all(&[1u8])?;
                w.write_all(&node.to_le_bytes())?;
                w.write_all(&[level])?;
            }
            None => w.write_all(&[0u8])?,
        }
        for id in 0..self.len() as u32 {
            w.write_all(&[self.level(id)])?;
        }
        for x in self.vectors().as_flat() {
            w.write_all(&x.to_bits().to_le_bytes())?;
        }
        for id in 0..self.len() as u32 {
            for layer in 0..=self.level(id) as usize {
                let links = self.links_of(id, layer);
                w.write_all(&(links.len() as u32).to_le_bytes())?;
                for l in links {
                    w.write_all(&l.to_le_bytes())?;
                }
            }
        }
        match self.quantizer() {
            Some(sq) => {
                w.write_all(&[1u8])?;
                for x in sq.lo() {
                    w.write_all(&x.to_bits().to_le_bytes())?;
                }
                for x in sq.step() {
                    w.write_all(&x.to_bits().to_le_bytes())?;
                }
                w.write_all(sq.codes())?;
            }
            None => w.write_all(&[0u8])?,
        }
        let es = self.entry_set();
        w.write_all(&[es.len() as u8])?;
        for &e in es {
            w.write_all(&e.to_le_bytes())?;
        }
        w.write_all(&self.mutation_epoch().to_le_bytes())?;
        let tombs = self.tombstone_map();
        if tombs.iter().any(|&t| t) {
            w.write_all(&[1u8])?;
            for &t in tombs {
                w.write_all(&[u8::from(t)])?;
            }
        } else {
            w.write_all(&[0u8])?;
        }
        Ok(())
    }

    /// Saves the index to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Deserializes an index from bytes produced by [`Hnsw::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Hnsw, LoadError> {
        Self::read_from(&mut std::io::Cursor::new(bytes))
    }

    /// Loads an index from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Hnsw, LoadError> {
        let mut r = BufReader::new(File::open(path)?);
        Self::read_from(&mut r)
    }

    /// Reads a serialized index from any reader.
    pub fn read_from(r: &mut impl Read) -> Result<Hnsw, LoadError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)
            .map_err(|_| LoadError::Format("missing header".into()))?;
        if &magic != MAGIC {
            return Err(LoadError::Format("bad magic".into()));
        }
        let mut rd = Reader { inner: r };
        let version = rd.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(LoadError::Format(format!("unsupported version {version}")));
        }
        let dist = dist_from_code(rd.u8()?)?;
        let dim = rd.u32()? as usize;
        let n = rd.u32()? as usize;
        if dim == 0 {
            return Err(LoadError::Format("zero dimension".into()));
        }
        let m = rd.u32()? as usize;
        let m_max0 = rd.u32()? as usize;
        let ef_construction = rd.u32()? as usize;
        let level_mult = rd.f64()?;
        let extend_candidates = rd.u8()? != 0;
        let keep_pruned = rd.u8()? != 0;
        let seed = rd.u64()?;
        // pre-v3 blobs predate the knob; the with_m default keeps their
        // loaded search behaviour aligned with a fresh build
        let entry_beam = if version >= 3 {
            let b = rd.u32()? as usize;
            if b == 0 {
                return Err(LoadError::Format("zero entry beam".into()));
            }
            b
        } else {
            HnswConfig::with_m(2).entry_beam
        };
        if m < 2 || m_max0 < m {
            return Err(LoadError::Format("implausible link bounds".into()));
        }
        let config = HnswConfig {
            m,
            m_max0,
            ef_construction,
            level_mult,
            extend_candidates,
            keep_pruned,
            seed,
            entry_beam,
        };
        let entry = match rd.u8()? {
            0 => None,
            1 => {
                let node = rd.u32()?;
                let level = rd.u8()?;
                if node as usize >= n {
                    return Err(LoadError::Format("entry node out of range".into()));
                }
                Some((node, level))
            }
            x => return Err(LoadError::Format(format!("bad entry flag {x}"))),
        };
        let mut levels = Vec::with_capacity(n);
        for _ in 0..n {
            levels.push(rd.u8()?);
        }
        let mut flat = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            flat.push(rd.f32()?);
        }
        let data = VectorSet::from_flat(dim, flat);
        let mut all_links: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n);
        for &lvl in &levels {
            let mut per_layer = Vec::with_capacity(lvl as usize + 1);
            for _ in 0..=lvl as usize {
                let len = rd.u32()? as usize;
                if len > n {
                    return Err(LoadError::Format("implausible link count".into()));
                }
                let mut links = Vec::with_capacity(len);
                for _ in 0..len {
                    let l = rd.u32()?;
                    if l as usize >= n {
                        return Err(LoadError::Format("link target out of range".into()));
                    }
                    links.push(l);
                }
                per_layer.push(links);
            }
            all_links.push(per_layer);
        }
        let quant = if version >= 2 {
            match rd.u8()? {
                0 => None,
                1 => {
                    let mut lo = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        lo.push(rd.f32()?);
                    }
                    let mut step = Vec::with_capacity(dim);
                    for _ in 0..dim {
                        let s = rd.f32()?;
                        if !s.is_finite() || s <= 0.0 {
                            return Err(LoadError::Format("non-positive quantizer step".into()));
                        }
                        step.push(s);
                    }
                    let mut codes = vec![0u8; n * dim];
                    rd.inner
                        .read_exact(&mut codes)
                        .map_err(|_| LoadError::Format("truncated".into()))?;
                    Some(Sq8::from_parts(dim, lo, step, codes))
                }
                x => return Err(LoadError::Format(format!("bad quantizer flag {x}"))),
            }
        } else {
            None
        };
        let entry_set = if version >= 3 {
            let len = rd.u8()? as usize;
            let mut es = Vec::with_capacity(len);
            for _ in 0..len {
                let e = rd.u32()?;
                if e as usize >= n {
                    return Err(LoadError::Format("entry-set member out of range".into()));
                }
                es.push(e);
            }
            es
        } else {
            Vec::new()
        };
        let mut index = Hnsw::from_parts(
            config, dist, data, levels, all_links, entry, entry_set, quant,
        );
        if version >= 4 {
            let epoch = rd.u64()?;
            let tombstones = match rd.u8()? {
                0 => vec![false; n],
                1 => {
                    let mut map = vec![0u8; n];
                    rd.inner
                        .read_exact(&mut map)
                        .map_err(|_| LoadError::Format("truncated".into()))?;
                    let mut tombs = Vec::with_capacity(n);
                    for b in map {
                        match b {
                            0 => tombs.push(false),
                            1 => tombs.push(true),
                            x => {
                                return Err(LoadError::Format(format!("bad tombstone byte {x}")));
                            }
                        }
                    }
                    tombs
                }
                x => return Err(LoadError::Format(format!("bad tombstone flag {x}"))),
            };
            index = index.with_mutation_state(tombstones, epoch);
        }
        if version < 2 {
            // pre-quantizer blob: train from the stored vectors (a pure
            // function of the data, so the grid matches a fresh build)
            index.train_quantizer();
        }
        if version < 3 && !index.is_empty() {
            // pre-entry-set blob: recompute from the stored vectors and
            // levels — selection is a pure function of those, so the set
            // matches what a fresh build of the same data would carry
            index.refresh_entry_set();
        }
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;

    fn sample_index() -> Hnsw {
        let data = synth::sift_like(600, 12, 77);
        Hnsw::build(data, Distance::L2, HnswConfig::with_m(8).seed(77))
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let idx = sample_index();
        let bytes = idx.to_bytes();
        let back = Hnsw::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.dim(), idx.dim());
        assert_eq!(back.edge_count(), idx.edge_count());
        for i in (0..600).step_by(41) {
            let q = idx.vectors().get(i);
            assert_eq!(idx.search(q, 5, 32).0, back.search(q, 5, 32).0, "query {i}");
        }
    }

    #[test]
    fn validator_accepts_round_tripped_index() {
        let idx = sample_index();
        let back =
            Hnsw::from_bytes(&idx.to_bytes()).expect("decode of just-encoded index succeeds");
        back.validate()
            .expect("round-tripped graph upholds every structural invariant");
        // and answers bit-identically to the original
        for i in (0..600).step_by(17) {
            let q = idx.vectors().get(i);
            let (a, _) = idx.search(q, 8, 48);
            let (b, _) = back.search(q, 8, 48);
            assert_eq!(a.len(), b.len(), "query {i}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "query {i}");
                assert_eq!(
                    x.dist.to_bits(),
                    y.dist.to_bits(),
                    "query {i}: distances must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let idx = sample_index();
        let path = std::env::temp_dir().join("fastann_hnsw_test.idx");
        idx.save(&path).expect("save to temp dir succeeds");
        let back = Hnsw::load(&path).expect("load of just-saved index succeeds");
        assert_eq!(back.len(), idx.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = Hnsw::build(VectorSet::new(4), Distance::L2, HnswConfig::default());
        let back =
            Hnsw::from_bytes(&idx.to_bytes()).expect("decode of just-encoded index succeeds");
        assert!(back.is_empty());
        assert!(back.search(&[0.0; 4], 3, 8).0.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Hnsw::from_bytes(b"NOTANIDX________").unwrap_err();
        assert!(matches!(err, LoadError::Format(_)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample_index().to_bytes();
        for cut in [8usize, 20, 60, bytes.len() / 2, bytes.len() - 3] {
            let err = Hnsw::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, LoadError::Format(_)),
                "cut at {cut} should fail"
            );
        }
    }

    /// Bytes the v3 entry-set tail section occupies.
    fn entry_set_sect(idx: &Hnsw) -> usize {
        1 + 4 * idx.entry_set().len()
    }

    /// Bytes the v4 mutation-state tail section occupies.
    fn mut_sect(idx: &Hnsw) -> usize {
        8 + 1
            + if idx.live_len() < idx.len() {
                idx.len()
            } else {
                0
            }
    }

    #[test]
    fn corrupted_link_target_rejected() {
        let idx = sample_index();
        let mut bytes = idx.to_bytes();
        // the links section ends right before the quant + entry-set +
        // mutation tail; stomp the last link id with an out-of-range value
        let quant_sect = 1 + 8 * idx.dim() + idx.len() * idx.dim();
        let last_link = bytes.len() - mut_sect(&idx) - entry_set_sect(&idx) - quant_sect - 4;
        bytes[last_link..last_link + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Hnsw::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)));
    }

    #[test]
    fn round_trip_preserves_quantizer_and_quantized_results() {
        let idx = sample_index();
        assert!(idx.quantizer().is_some(), "L2 build trains a quantizer");
        let back = Hnsw::from_bytes(&idx.to_bytes()).expect("round trip");
        let sq = back
            .quantizer()
            .expect("v2 blob carries the trained quantizer");
        assert_eq!(sq.len(), idx.len());
        // quantized search answers bit-identically without retraining
        for i in (0..600).step_by(53) {
            let q = idx.vectors().get(i);
            let (a, sa) = idx.search_quantized(q, 5, 32, 3);
            let (b, sb) = back.search_quantized(q, 5, 32, 3);
            assert_eq!(a.len(), b.len(), "query {i}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "query {i}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "query {i}");
            }
            assert!(sa.ndist_quant > 0, "traversal ran quantized");
            assert_eq!(sa.ndist_quant, sb.ndist_quant, "query {i}");
        }
    }

    #[test]
    fn cosine_index_serializes_without_quantizer() {
        let data = synth::deep_like(150, 8, 81);
        let idx = Hnsw::build(data, Distance::Cosine, HnswConfig::with_m(4).seed(81));
        assert!(idx.quantizer().is_none());
        let back = Hnsw::from_bytes(&idx.to_bytes()).expect("round trip");
        assert!(back.quantizer().is_none());
        // quantized search falls back to exact and still answers
        let q = back.vectors().get(3).to_vec();
        let (hits, stats) = back.search_quantized(&q, 3, 16, 3);
        assert_eq!(hits[0].id, 3);
        assert_eq!(stats.ndist_quant, 0, "fallback path is exact");
    }

    #[test]
    fn corrupted_quantizer_step_rejected() {
        let idx = sample_index();
        let mut bytes = idx.to_bytes();
        let dim = idx.dim();
        let n = idx.len();
        // quant section sits before the entry-set + mutation tail:
        // flag | lo | step | codes
        let sect = 1 + 4 * dim + 4 * dim + n * dim;
        let step0 = bytes.len() - mut_sect(&idx) - entry_set_sect(&idx) - sect + 1 + 4 * dim;
        bytes[step0..step0 + 4].copy_from_slice(&0.0f32.to_bits().to_le_bytes());
        let err = Hnsw::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)));
    }

    #[test]
    fn round_trip_preserves_entry_set_and_beam() {
        let idx = sample_index();
        assert!(
            idx.entry_set().len() > 1,
            "600-point build selects a diverse entry set"
        );
        let back = Hnsw::from_bytes(&idx.to_bytes()).expect("round trip");
        assert_eq!(
            back.entry_set(),
            idx.entry_set(),
            "entry set must persist bit-identically"
        );
        assert_eq!(back.config().entry_beam, idx.config().entry_beam);
        // a non-default knob survives too
        let data = synth::sift_like(300, 8, 79);
        let wide = Hnsw::build(
            data,
            Distance::L2,
            HnswConfig::with_m(8).seed(79).entry_beam(7),
        );
        let back = Hnsw::from_bytes(&wide.to_bytes()).expect("round trip");
        assert_eq!(back.config().entry_beam, 7);
    }

    /// Rewrites a v4 blob as its v2 equivalent: patch the version word,
    /// drop the `entry_beam` config field, truncate the entry-set and
    /// mutation-state tails.
    fn downgrade_to_v2(idx: &Hnsw) -> Vec<u8> {
        let mut bytes = idx.to_bytes();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        // header layout: magic 8 | version 4 | dist 1 | dim 4 | n 4 | m 4
        // | m_max0 4 | efc 4 | level_mult 8 | extend 1 | keep 1 | seed 8
        // puts entry_beam at byte 51
        bytes.drain(51..55);
        bytes.truncate(bytes.len() - mut_sect(idx) - (1 + 4 * idx.entry_set().len()));
        bytes
    }

    /// Rewrites a v4 blob as its v3 equivalent: patch the version word and
    /// truncate the mutation-state tail.
    fn downgrade_to_v3(idx: &Hnsw) -> Vec<u8> {
        let mut bytes = idx.to_bytes();
        bytes[8..12].copy_from_slice(&3u32.to_le_bytes());
        bytes.truncate(bytes.len() - mut_sect(idx));
        bytes
    }

    #[test]
    fn round_trip_preserves_tombstones_and_epoch() {
        let mut idx = sample_index();
        for id in [3u32, 77, 410, 599] {
            assert!(idx.remove(id));
        }
        let back = Hnsw::from_bytes(&idx.to_bytes()).expect("v4 round trip");
        assert_eq!(back.live_len(), idx.live_len());
        assert_eq!(back.mutation_epoch(), idx.mutation_epoch());
        for id in 0..idx.len() as u32 {
            assert_eq!(back.is_live(id), idx.is_live(id), "tombstone {id}");
        }
        back.validate().expect("loaded tombstoned index is valid");
        // deleted ids stay filtered after the round trip
        let q = idx.vectors().get(77);
        assert!(back.search(q, 5, 48).0.iter().all(|h| h.id != 77));
    }

    #[test]
    fn legacy_v3_blob_loads_all_live_at_epoch_zero() {
        let idx = sample_index();
        let back = Hnsw::from_bytes(&downgrade_to_v3(&idx)).expect("v3 blob loads");
        assert_eq!(back.live_len(), back.len());
        assert_eq!(back.mutation_epoch(), 0);
        back.validate().expect("legacy v3 load is validator-clean");
        for i in (0..600).step_by(67) {
            let q = idx.vectors().get(i);
            assert_eq!(idx.search(q, 5, 48).0, back.search(q, 5, 48).0, "query {i}");
        }
    }

    #[test]
    fn legacy_v2_blob_recomputes_entry_set() {
        let idx = sample_index();
        let back = Hnsw::from_bytes(&downgrade_to_v2(&idx)).expect("v2 blob loads");
        assert_eq!(back.config().entry_beam, HnswConfig::default().entry_beam);
        assert_eq!(
            back.entry_set(),
            idx.entry_set(),
            "recomputed entry set must match the fresh build's"
        );
        back.validate().expect("legacy load is validator-clean");
        // and searches answer bit-identically to the fresh build
        for i in (0..600).step_by(67) {
            let q = idx.vectors().get(i);
            let (a, _) = idx.search(q, 5, 48);
            let (b, _) = back.search(q, 5, 48);
            assert_eq!(a.len(), b.len(), "query {i}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.id, y.id, "query {i}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "query {i}");
            }
        }
    }

    #[test]
    fn corrupted_entry_set_member_rejected() {
        let idx = sample_index();
        let mut bytes = idx.to_bytes();
        assert!(!idx.entry_set().is_empty());
        let first = bytes.len() - mut_sect(&idx) - 4 * idx.entry_set().len();
        bytes[first..first + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = Hnsw::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, LoadError::Format(_)));
    }

    #[test]
    fn preserves_metric() {
        let data = synth::deep_like(200, 8, 78);
        let idx = Hnsw::build(data, Distance::Cosine, HnswConfig::with_m(4).seed(78));
        let back =
            Hnsw::from_bytes(&idx.to_bytes()).expect("decode of just-encoded index succeeds");
        assert_eq!(back.distance(), Distance::Cosine);
    }
}
