//! Distributed KD-tree engine over `fastann-mpisim` — the PANDA-style
//! baseline of the paper's Table III.
//!
//! **Construction** (mirrors the paper's description of [1]): worker ranks
//! start with equal slices of the dataset; the group recursively halves —
//! agree on the widest dimension (all-gather of per-rank bounds), agree on
//! the coordinate median (weighted median of per-rank medians), shuffle
//! rows with `Alltoallv` so the left half of the ranks holds the left
//! half-space, and recurse. Each worker ends up with one partition and
//! builds a local [`KdTree`]; the split skeleton is assembled bottom-up and
//! shipped to the master.
//!
//! **Search** is exact and two-phase:
//! 1. the master routes each query to its *home* partition, which returns
//!    its local k-NN and thereby a k-th-distance radius;
//! 2. the master fans the query out to every other partition whose cell
//!    intersects that ball (the fan-out explodes with dimension — the
//!    paper's core argument against KD trees for high-dimensional data),
//!    seeds those searches with the current candidates, and merges.

use bytes::{Bytes, BytesMut};
use fastann_data::{Neighbor, TopK, VectorSet};
use fastann_mpisim::{wire, Cluster, Comm, Rank, SimConfig};

use crate::local::{KdTree, KdTreeConfig};
use crate::skeleton::KdSkeletonBuilder;

/// Seed neighbours are tagged with this bit so their (global) ids cannot
/// collide with local-tree row ids inside a worker's `TopK`.
const SEED_BIT: u32 = 1 << 31;

const TAG_P1: u64 = 1;
const TAG_P2: u64 = 2;
const TAG_R1: u64 = 3;
const TAG_R2: u64 = 4;
const TAG_END: u64 = 5;
const TAG_SKEL: u64 = 6;
const TAG_SUBTREE: u64 = 7;

/// Virtual cost of one scalar comparison/scan step (ns) during tree walks.
const SCAN_NS: f64 = 0.3;

/// Configuration of a distributed KD run.
#[derive(Clone, Debug)]
pub struct DistKdConfig {
    /// Worker ranks = partitions (power of two). Total simulated cores is
    /// `n_partitions + 1` (one master).
    pub n_partitions: usize,
    /// Neighbours per query.
    pub k: usize,
    /// Leaf bucket size of the local trees.
    pub bucket_size: usize,
    /// Simulated-cluster parameters (network, cost model, topology).
    pub sim: SimConfig,
}

impl DistKdConfig {
    /// Defaults for `n_partitions` workers.
    pub fn new(n_partitions: usize) -> Self {
        assert!(
            n_partitions.is_power_of_two(),
            "partitions must be a power of two"
        );
        Self {
            n_partitions,
            k: 10,
            bucket_size: 32,
            sim: SimConfig::new(n_partitions + 1),
        }
    }
}

/// Outcome of a distributed KD run.
#[derive(Clone, Debug)]
pub struct DistKdReport {
    /// Exact k-NN per query (global row ids).
    pub results: Vec<Vec<Neighbor>>,
    /// Virtual time of the construction phase (ns).
    pub build_ns: f64,
    /// Virtual time of the query phase (ns): master start → all results
    /// merged.
    pub query_ns: f64,
    /// Mean number of partitions searched per query (home + fan-out).
    pub mean_fanout: f64,
    /// Queries processed per worker rank.
    pub per_worker_queries: Vec<u64>,
    /// Sum of distance evaluations across workers.
    pub total_ndist: u64,
}

/// Runs construction + batch search on a simulated cluster and reports
/// results with virtual-time accounting.
///
/// # Panics
/// Panics on configuration errors (non-power-of-two partitions, empty
/// data/queries, dimension mismatch).
pub fn run(data: &VectorSet, queries: &VectorSet, cfg: &DistKdConfig) -> DistKdReport {
    assert!(
        !data.is_empty() && !queries.is_empty(),
        "need data and queries"
    );
    assert_eq!(data.dim(), queries.dim(), "dimension mismatch");
    assert!(
        data.len() >= cfg.n_partitions * 2,
        "too few points ({}) for {} partitions",
        data.len(),
        cfg.n_partitions
    );
    let mut sim = cfg.sim.clone();
    sim.n_ranks = cfg.n_partitions + 1;
    let cluster = Cluster::new(sim);
    let nq = queries.len();
    let k = cfg.k;
    let dim = data.dim();

    // Host-side handles shared read-only into the rank threads.
    let data_ref = data;
    let queries_ref = queries;
    let cfg_ref = cfg;

    let outcomes = cluster.run(move |rank| worker_or_master(rank, data_ref, queries_ref, cfg_ref));

    // Rank 0 carries the merged report.
    let mut results = Vec::new();
    let mut build_ns = 0.0;
    let mut query_ns = 0.0;
    let mut mean_fanout = 0.0;
    let mut per_worker_queries = vec![0u64; cfg.n_partitions];
    let mut total_ndist = 0u64;
    for o in outcomes {
        match o {
            Outcome::Master {
                results: r,
                build_ns: b,
                query_ns: q,
                mean_fanout: f,
            } => {
                results = r;
                build_ns = b;
                query_ns = q;
                mean_fanout = f;
            }
            Outcome::Worker {
                idx,
                queries,
                ndist,
                build_end_ns,
            } => {
                per_worker_queries[idx] = queries;
                total_ndist += ndist;
                build_ns = build_ns.max(build_end_ns);
            }
        }
    }
    assert_eq!(results.len(), nq);
    for r in &results {
        debug_assert!(r.len() <= k);
    }
    let _ = dim;
    DistKdReport {
        results,
        build_ns,
        query_ns,
        mean_fanout,
        per_worker_queries,
        total_ndist,
    }
}

enum Outcome {
    Master {
        results: Vec<Vec<Neighbor>>,
        build_ns: f64,
        query_ns: f64,
        mean_fanout: f64,
    },
    Worker {
        idx: usize,
        queries: u64,
        ndist: u64,
        build_end_ns: f64,
    },
}

fn worker_or_master(
    rank: &mut Rank,
    data: &VectorSet,
    queries: &VectorSet,
    cfg: &DistKdConfig,
) -> Outcome {
    let world = rank.world();
    let workers = world.subset(1, world.size());
    if rank.rank() == 0 {
        master(rank, queries, cfg)
    } else {
        worker(rank, &workers, data, cfg)
    }
}

// ---------------------------------------------------------------------
// construction
// ---------------------------------------------------------------------

/// Serialized subtree: preorder, leaf = [0, partition], inner =
/// [1, dim, split, left.., right..].
fn encode_subtree_leaf(partition: u32) -> BytesMut {
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, 0);
    wire::put_u32(&mut b, partition);
    b
}

fn encode_subtree_inner(dim: u32, split: f32, left: &[u8], right: &[u8]) -> BytesMut {
    let mut b = BytesMut::new();
    wire::put_u32(&mut b, 1);
    wire::put_u32(&mut b, dim);
    wire::put_f32(&mut b, split);
    b.extend_from_slice(left);
    b.extend_from_slice(right);
    b
}

fn decode_subtree(buf: &mut Bytes, b: &mut KdSkeletonBuilder) -> u32 {
    let tag = wire::get_u32(buf);
    if tag == 0 {
        let p = wire::get_u32(buf);
        b.leaf(p)
    } else {
        let dim = wire::get_u32(buf);
        let split = wire::get_f32(buf);
        let left = decode_subtree(buf, b);
        let right = decode_subtree(buf, b);
        b.inner(dim, split, left, right)
    }
}

/// Rows on the wire: (global id, vector) pairs.
fn encode_rows(buf: &mut BytesMut, ids: &[u32], rows: &VectorSet, take: &[usize]) {
    wire::put_u32(buf, take.len() as u32);
    for &i in take {
        wire::put_u32(buf, ids[i]);
        for &x in rows.get(i) {
            wire::put_f32(buf, x);
        }
    }
}

fn decode_rows(buf: &mut Bytes, dim: usize, ids: &mut Vec<u32>, rows: &mut VectorSet) {
    let n = wire::get_u32(buf) as usize;
    let mut tmp = vec![0f32; dim];
    for _ in 0..n {
        ids.push(wire::get_u32(buf));
        for x in tmp.iter_mut() {
            *x = wire::get_f32(buf);
        }
        rows.push(&tmp);
    }
}

/// Distributed construction on the worker group. Returns this worker's
/// final partition (global ids + rows) and, on worker 0, the serialized
/// skeleton.
fn build_distributed(
    rank: &mut Rank,
    workers: &Comm,
    mut ids: Vec<u32>,
    mut rows: VectorSet,
) -> (Vec<u32>, VectorSet, Option<Bytes>) {
    let dim = rows.dim();
    let mut comm = workers.clone();
    // Stack of (dim, split, right_subtree_src_member) decisions made while
    // descending; used to assemble the skeleton bottom-up.
    let mut path: Vec<(u32, f32, usize)> = Vec::new();

    while comm.size() > 1 {
        let me = comm.my_index(rank);
        let size = comm.size();

        // 1. agree on the widest dimension: all-gather per-rank bounds
        rank.charge(rows.len() as f64 * dim as f64 * SCAN_NS);
        let (lo, hi) = rows
            .bounds()
            .unwrap_or((vec![f32::MAX; dim], vec![f32::MIN; dim]));
        let mut b = BytesMut::new();
        wire::put_f32_slice(&mut b, &lo);
        wire::put_f32_slice(&mut b, &hi);
        let all = comm.all_gather(rank, b.freeze());
        let mut glo = vec![f32::INFINITY; dim];
        let mut ghi = vec![f32::NEG_INFINITY; dim];
        for mut part in all {
            let l = wire::get_f32_vec(&mut part);
            let h = wire::get_f32_vec(&mut part);
            for d in 0..dim {
                glo[d] = glo[d].min(l[d]);
                ghi[d] = ghi[d].max(h[d]);
            }
        }
        let sdim = (0..dim)
            .max_by(|&a, &c| (ghi[a] - glo[a]).total_cmp(&(ghi[c] - glo[c])))
            .expect("dim > 0") as u32;

        // 2. agree on the split: weighted median of per-rank medians
        let mut coords: Vec<f32> = rows.iter().map(|r| r[sdim as usize]).collect();
        rank.charge(coords.len() as f64 * SCAN_NS * 4.0); // quickselect work
        let local_med = if coords.is_empty() {
            f32::NAN
        } else {
            fastann_data::select::median(&mut coords)
        };
        let mut b = BytesMut::new();
        wire::put_f32(&mut b, local_med);
        wire::put_u64(&mut b, rows.len() as u64);
        let pairs = comm.all_gather(rank, b.freeze());
        let mut wm: Vec<(f32, u64)> = pairs
            .into_iter()
            .map(|mut p| (wire::get_f32(&mut p), wire::get_u64(&mut p)))
            .filter(|&(m, w)| w > 0 && m.is_finite())
            .collect();
        let split = fastann_data::select::weighted_median(&mut wm);

        // 3. shuffle: left rows spread over members [0, half), right rows
        // over [half, size)
        let half = size / 2;
        rank.charge(rows.len() as f64 * SCAN_NS);
        let mut left_rows: Vec<usize> = Vec::new();
        let mut right_rows: Vec<usize> = Vec::new();
        for i in 0..rows.len() {
            if rows.get(i)[sdim as usize] <= split {
                left_rows.push(i);
            } else {
                right_rows.push(i);
            }
        }
        let mut payloads: Vec<Bytes> = Vec::with_capacity(size);
        for j in 0..size {
            let (pool, nparts, base) = if j < half {
                (&left_rows, half, 0usize)
            } else {
                (&right_rows, size - half, half)
            };
            // round-robin slice of the pool for member j
            let jd = j - base;
            let take: Vec<usize> = pool.iter().copied().skip(jd).step_by(nparts).collect();
            let mut b = BytesMut::new();
            encode_rows(&mut b, &ids, &rows, &take);
            payloads.push(b.freeze());
        }
        let received = comm.alltoallv(rank, payloads);
        let mut new_ids = Vec::new();
        let mut new_rows = VectorSet::new(dim);
        for mut part in received {
            decode_rows(&mut part, dim, &mut new_ids, &mut new_rows);
        }
        ids = new_ids;
        rows = new_rows;

        // 4. record the decision and recurse into my half
        path.push((sdim, split, half));
        comm = if me < half {
            comm.subset(0, half)
        } else {
            comm.subset(half, size)
        };
    }

    // Each worker now owns exactly one partition: its index in the worker
    // group. Assemble the skeleton bottom-up along the recorded path.
    let my_part = workers.my_index(rank) as u32;
    let mut subtree: BytesMut = encode_subtree_leaf(my_part);
    // Walk the path from deepest to shallowest. At each level, the right
    // subgroup's root sends its subtree to the left subgroup's root (which
    // is the level's root); group roots are identified by member index
    // within the *level's* group.
    // Reconstruct group bounds: replay the descent.
    let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(path.len() + 1);
    {
        let mut lo = 0usize;
        let mut hi = workers.size();
        bounds.push((lo, hi));
        let me = workers.my_index(rank);
        for &(_, _, half) in &path {
            let mid = lo + half;
            if me < mid {
                hi = mid;
            } else {
                lo = mid;
            }
            bounds.push((lo, hi));
        }
    }
    let me = workers.my_index(rank);
    for level in (0..path.len()).rev() {
        let (lo, hi) = bounds[level];
        let (dim, split, half) = path[level];
        let mid = lo + half;
        let _ = hi;
        if me == mid {
            // right root: ship subtree to the level root (member lo)
            rank.send_bytes(workers.ranks()[lo], TAG_SUBTREE, subtree.clone().freeze());
        }
        if me == lo {
            let right = rank
                .recv(Some(workers.ranks()[mid]), Some(TAG_SUBTREE))
                .payload;
            subtree = encode_subtree_inner(dim, split, &subtree, &right);
        }
        if me != lo {
            // non-roots carry no subtree upward
            if me == mid {
                subtree = encode_subtree_leaf(0); // placeholder, unused
            }
        }
    }

    let skel = if me == 0 {
        Some(subtree.freeze())
    } else {
        None
    };
    (ids, rows, skel)
}

// ---------------------------------------------------------------------
// master
// ---------------------------------------------------------------------

fn master(rank: &mut Rank, queries: &VectorSet, cfg: &DistKdConfig) -> Outcome {
    let nworkers = cfg.n_partitions;
    let k = cfg.k;

    // Receive the skeleton from worker 0 (rank 1).
    let mut skel_bytes = rank.recv(Some(1), Some(TAG_SKEL)).payload;
    let mut builder = KdSkeletonBuilder::new();
    let root = decode_subtree(&mut skel_bytes, &mut builder);
    let skel = builder.finish(root);
    let build_ns = rank.now();

    let query_start = rank.now();
    let nq = queries.len();
    let mut tops: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
    let mut pending = vec![0u32; nq];
    let mut homes = vec![0u32; nq];
    let mut fanout_total = 0u64;

    // Phase 1: route every query to its home partition.
    let mut p1_sent: Vec<Vec<u32>> = vec![Vec::new(); nworkers];
    for qi in 0..nq {
        let q = queries.get(qi);
        let (home, cmps) = skel.home_partition(q);
        rank.charge(cmps as f64 * SCAN_NS * 4.0);
        homes[qi] = home;
        let mut b = BytesMut::new();
        wire::put_u32(&mut b, qi as u32);
        wire::put_f32_slice(&mut b, q);
        rank.send_bytes(1 + home as usize, TAG_P1, b.freeze());
        p1_sent[home as usize].push(qi as u32);
        pending[qi] = 1;
        fanout_total += 1;
    }

    // Drain phase-1 replies per worker, in rank order. Workers answer in
    // arrival order and per-pair delivery is FIFO, so the master knows
    // exactly which reply comes next — an earlier version used a wildcard
    // `recv(None, None)` merge loop here, which folded arrivals into the
    // master clock in OS-scheduler order (the PR 1 bug class). A query's
    // phase-2 fan-out only depends on its *own* phase-1 reply, so the
    // per-source drain returns identical results.
    for (w, sent) in p1_sent.iter().enumerate() {
        for &expect_qi in sent {
            let msg = rank.recv(Some(1 + w), Some(TAG_R1));
            let mut payload = msg.payload;
            let qi = wire::get_u32(&mut payload) as usize;
            debug_assert_eq!(
                qi as u32, expect_qi,
                "phase-1 replies arrive in dispatch order"
            );
            let neigh = wire::get_neighbors(&mut payload);
            rank.charge(neigh.len() as f64 * SCAN_NS * 2.0);
            for (id, d) in neigh {
                tops[qi].push(Neighbor::new(id, d));
            }
            pending[qi] -= 1;
        }
    }

    // Phase 2: fan each query out to every other partition its query ball
    // overlaps, then drain the replies per worker in rank order.
    let mut p2_sent = vec![0u32; nworkers];
    for qi in 0..nq {
        let q = queries.get(qi);
        let radius = tops[qi].prune_radius();
        let radius = if radius.is_finite() { radius } else { f32::MAX };
        let fan = skel.partitions_in_ball(q, radius);
        rank.charge(fan.len() as f64 * SCAN_NS * 8.0);
        let seed: Vec<(u32, f32)> = tops[qi]
            .to_sorted()
            .iter()
            .map(|n| (n.id, n.dist))
            .collect();
        for p in fan {
            if p == homes[qi] {
                continue;
            }
            let mut b = BytesMut::new();
            wire::put_u32(&mut b, qi as u32);
            wire::put_f32_slice(&mut b, q);
            wire::put_neighbors(&mut b, &seed);
            rank.send_bytes(1 + p as usize, TAG_P2, b.freeze());
            p2_sent[p as usize] += 1;
            pending[qi] += 1;
            fanout_total += 1;
        }
    }
    for (w, &sent) in p2_sent.iter().enumerate() {
        for _ in 0..sent {
            let msg = rank.recv(Some(1 + w), Some(TAG_R2));
            let mut payload = msg.payload;
            let qi = wire::get_u32(&mut payload) as usize;
            let neigh = wire::get_neighbors(&mut payload);
            rank.charge(neigh.len() as f64 * SCAN_NS * 2.0);
            for (id, d) in neigh {
                tops[qi].push(Neighbor::new(id, d));
            }
            pending[qi] -= 1;
        }
    }
    debug_assert!(pending.iter().all(|&p| p == 0), "every query must settle");

    for w in 0..nworkers {
        rank.send_bytes(1 + w, TAG_END, Bytes::new());
    }
    let query_ns = rank.now() - query_start;

    Outcome::Master {
        results: tops.into_iter().map(TopK::into_sorted).collect(),
        build_ns,
        query_ns,
        mean_fanout: fanout_total as f64 / nq as f64,
    }
}

// ---------------------------------------------------------------------
// worker
// ---------------------------------------------------------------------

fn worker(rank: &mut Rank, workers: &Comm, data: &VectorSet, cfg: &DistKdConfig) -> Outcome {
    let widx = workers.my_index(rank);
    let nworkers = workers.size();
    let dim = data.dim();

    // Initial equi-partition: contiguous slices, as in the paper's setup.
    let n = data.len();
    let base = n / nworkers;
    let extra = n % nworkers;
    let my_start: usize = (0..widx).map(|i| base + usize::from(i < extra)).sum();
    let my_len = base + usize::from(widx < extra);
    let ids: Vec<u32> = (my_start as u32..(my_start + my_len) as u32).collect();
    let mut rows = VectorSet::with_capacity(dim, my_len);
    for &id in &ids {
        rows.push(data.get(id as usize));
    }

    let (ids, rows, skel) = build_distributed(rank, workers, ids, rows);

    // Local index construction: charged as n·log(n/bucket)·dim scans.
    let levels = ((rows.len().max(2) as f64) / cfg.bucket_size as f64)
        .log2()
        .max(1.0);
    rank.charge(rows.len() as f64 * levels * dim as f64 * SCAN_NS);
    let tree = if rows.is_empty() {
        None
    } else {
        Some(KdTree::build(
            rows,
            KdTreeConfig {
                bucket_size: cfg.bucket_size,
            },
        ))
    };

    if let Some(skel) = skel {
        rank.send_bytes(0, TAG_SKEL, skel);
    }
    let build_end_ns = rank.now();

    let mut nq = 0u64;
    let mut ndist = 0u64;
    loop {
        let msg = rank.recv(Some(0), None);
        match msg.tag {
            TAG_END => break,
            TAG_P1 | TAG_P2 => {
                let mut payload = msg.payload;
                let qi = wire::get_u32(&mut payload);
                let q = wire::get_f32_vec(&mut payload);
                let seed: Vec<Neighbor> = if msg.tag == TAG_P2 {
                    wire::get_neighbors(&mut payload)
                        .into_iter()
                        .map(|(id, d)| Neighbor::new(id | SEED_BIT, d))
                        .collect()
                } else {
                    Vec::new()
                };
                let (res, stats) = match &tree {
                    Some(t) => {
                        let (mut r, s) = t.knn_with_seed(&q, cfg.k, &seed);
                        // strip seed entries (they are already at the master)
                        r.retain(|nb| nb.id & SEED_BIT == 0);
                        (r, s)
                    }
                    None => (Vec::new(), Default::default()),
                };
                rank.charge_dists(stats.ndist, dim);
                ndist += stats.ndist;
                nq += 1;
                // translate local ids -> global ids
                let pairs: Vec<(u32, f32)> = res
                    .iter()
                    .map(|nb| (ids[nb.id as usize], nb.dist))
                    .collect();
                let mut b = BytesMut::new();
                wire::put_u32(&mut b, qi);
                wire::put_neighbors(&mut b, &pairs);
                let rtag = if msg.tag == TAG_P1 { TAG_R1 } else { TAG_R2 };
                rank.send_bytes(0, rtag, b.freeze());
            }
            t => panic!("worker {widx}: unexpected tag {t}"),
        }
    }

    Outcome::Worker {
        idx: widx,
        queries: nq,
        ndist,
        build_end_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::{ground_truth, synth, Distance};

    #[test]
    fn distributed_results_are_exact() {
        let data = synth::sift_like(600, 8, 1);
        let queries = synth::queries_near(&data, 12, 0.05, 2);
        let cfg = DistKdConfig::new(4);
        let report = run(&data, &queries, &cfg);
        let gt = ground_truth::brute_force(&data, &queries, cfg.k, Distance::L2);
        for (qi, truth) in gt.iter().enumerate() {
            assert_eq!(
                report.results[qi], *truth,
                "query {qi}: distributed KD must be exact"
            );
        }
    }

    #[test]
    fn seed_ids_do_not_leak_into_results() {
        // seeds are foreign global ids; workers must return only their own
        // rows, yet merged results stay exact (previous test) — here we
        // check id validity
        let data = synth::sift_like(400, 6, 3);
        let queries = synth::queries_near(&data, 8, 0.05, 4);
        let report = run(&data, &queries, &DistKdConfig::new(4));
        for r in &report.results {
            for n in r {
                assert!((n.id as usize) < data.len());
            }
        }
    }

    #[test]
    fn report_accounting_sane() {
        let data = synth::sift_like(500, 8, 5);
        let queries = synth::queries_near(&data, 10, 0.05, 6);
        let report = run(&data, &queries, &DistKdConfig::new(4));
        assert!(report.build_ns > 0.0);
        assert!(report.query_ns > 0.0);
        assert!(report.mean_fanout >= 1.0);
        assert!(report.total_ndist > 0);
        let total_q: u64 = report.per_worker_queries.iter().sum();
        assert!(total_q as f64 >= report.mean_fanout * queries.len() as f64 - 1e-9);
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let data = synth::sift_like(100, 4, 7);
        let queries = synth::queries_near(&data, 5, 0.05, 8);
        let report = run(&data, &queries, &DistKdConfig::new(1));
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        for (qi, truth) in gt.iter().enumerate() {
            assert_eq!(report.results[qi], *truth);
        }
        assert_eq!(report.mean_fanout, 1.0);
    }

    #[test]
    fn fanout_larger_in_high_dim() {
        let lo = {
            let data = synth::deep_like(800, 4, 9);
            let q = synth::queries_near(&data, 10, 0.02, 10);
            run(&data, &q, &DistKdConfig::new(8)).mean_fanout
        };
        let hi = {
            let data = synth::deep_like(800, 48, 9);
            let q = synth::queries_near(&data, 10, 0.02, 10);
            run(&data, &q, &DistKdConfig::new(8)).mean_fanout
        };
        assert!(hi > lo, "fan-out should grow with dimension: {lo} vs {hi}");
    }
}
