//! Batch recommender — the paper's second motivating workload
//! ("queries … can be batched together like in recommender systems").
//!
//! Items and users are embedded in the same unit-normalised space (the
//! usual two-tower setup); nightly, the system computes each user's top-10
//! candidate items. On unit vectors, L2 ordering equals cosine ordering, so
//! the metric-space engine applies directly. The query load is *skewed*
//! (active users cluster around trending content), which is where the
//! paper's replication-based load balancing earns its keep — this example
//! measures the same job with and without it.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use fastann::core::{DistIndex, EngineConfig, RoutingPolicy, SearchOptions, SearchRequest};
use fastann::data::{synth, VectorSet};
use fastann::hnsw::HnswConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 40k items, 64-d unit-norm embeddings.
    let items = synth::deep_like(40_000, 64, 21);

    // 2k user vectors, 80% concentrated near a few trending items.
    let mut rng = SmallRng::seed_from_u64(22);
    let trending: Vec<usize> = (0..4).map(|_| rng.gen_range(0..items.len())).collect();
    let mut users = VectorSet::new(items.dim());
    let mut row = vec![0f32; items.dim()];
    for u in 0..2_000 {
        let base = if u % 5 < 4 {
            items.get(trending[u % trending.len()])
        } else {
            items.get(rng.gen_range(0..items.len()))
        };
        for (d, x) in row.iter_mut().enumerate() {
            *x = base[d] + 0.05 * (rng.gen::<f32>() - 0.5);
        }
        users.push(&row);
    }
    users.normalize_l2();

    // 32 cores in small nodes of 2, so replication workgroups span nodes.
    let config = EngineConfig::new(32, 2).with_hnsw(HnswConfig::with_m(16).ef_construction(60));
    let index = DistIndex::build(&items, config);

    let baseline = SearchRequest::new(&index, &users)
        .opts(SearchOptions::new(10))
        .run();
    let balanced = SearchRequest::new(&index, &users)
        .opts(SearchOptions::new(10).with_routing(RoutingPolicy::Static(4)))
        .run();

    let d0 = baseline.query_distribution();
    let d4 = balanced.query_distribution();
    println!(
        "nightly recommendation batch: {} users x top-10 of {} items",
        users.len(),
        items.len()
    );
    println!(
        "  no replication : {:.2} virtual ms, busiest core handled {} queries (max/mean {:.1})",
        baseline.total_ns / 1e6,
        d0.max,
        d0.imbalance()
    );
    println!(
        "  replication r=4: {:.2} virtual ms, busiest core handled {} queries (max/mean {:.1})",
        balanced.total_ns / 1e6,
        d4.max,
        d4.imbalance()
    );
    println!(
        "  speedup from load balancing: {:.2}x (extra memory: {:.1} MiB -> {:.1} MiB max/node)",
        baseline.total_ns / balanced.total_ns,
        index
            .node_memory_bytes(1)
            .iter()
            .max()
            .unwrap_or(&0)
            .to_owned() as f64
            / (1 << 20) as f64,
        index
            .node_memory_bytes(4)
            .iter()
            .max()
            .unwrap_or(&0)
            .to_owned() as f64
            / (1 << 20) as f64,
    );

    // The recommendations themselves (first two users).
    for (u, res) in balanced.results.iter().take(2).enumerate() {
        let recs: Vec<u32> = res.iter().take(5).map(|n| n.id).collect();
        println!("  user {u}: recommend items {recs:?}");
    }
}
