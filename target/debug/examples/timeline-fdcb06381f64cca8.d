/root/repo/target/debug/examples/timeline-fdcb06381f64cca8.d: examples/timeline.rs

/root/repo/target/debug/examples/timeline-fdcb06381f64cca8: examples/timeline.rs

examples/timeline.rs:
