/root/repo/target/debug/deps/fastann_kdtree-d7730bb946935797.d: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

/root/repo/target/debug/deps/fastann_kdtree-d7730bb946935797: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs

crates/kdtree/src/lib.rs:
crates/kdtree/src/dist.rs:
crates/kdtree/src/local.rs:
crates/kdtree/src/skeleton.rs:
