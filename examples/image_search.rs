//! Image similarity search — the workload the paper's intro motivates.
//!
//! A photo service holds millions of images, each represented by a SIFT
//! descriptor; a nightly batch job finds, for every newly uploaded image,
//! the 10 most similar catalogue images (for dedup and related-image
//! links). Batched k-NN with no real-time requirement: exactly the high-
//! throughput regime the paper targets.
//!
//! ```sh
//! cargo run --release --example image_search
//! ```

use fastann::core::{DistIndex, EngineConfig, SearchOptions, SearchRequest};
use fastann::data::{ground_truth, synth, Distance};
use fastann::hnsw::HnswConfig;
use fastann::vptree::RouteConfig;

fn main() {
    // The "catalogue": 50k images as 128-d SIFT-like descriptors.
    let catalogue = synth::sift_like(50_000, 128, 7);
    // Tonight's "uploads": 1k new images, similar to catalogue content.
    let uploads = synth::queries_near(&catalogue, 1_000, 0.03, 8);

    // 32 cores, 8 per node; M = 16 HNSW graphs inside the partitions, a
    // generous routing margin for quality.
    let config = EngineConfig::new(32, 8)
        .with_hnsw(HnswConfig::with_m(16).ef_construction(80))
        .with_route(RouteConfig {
            margin_frac: 0.25,
            max_partitions: 4,
        });
    let index = DistIndex::build(&catalogue, config);

    println!(
        "catalogue indexed: {} partitions, sizes {}..{}",
        index.n_partitions(),
        index.build_stats.partition_sizes.iter().min().unwrap(),
        index.build_stats.partition_sizes.iter().max().unwrap(),
    );

    let opts = SearchOptions::new(10).with_ef(96);
    let report = SearchRequest::new(&index, &uploads).opts(opts).run();

    // Quality control: sample 100 uploads against exact search.
    let sample: Vec<usize> = (0..100).map(|i| i * 10).collect();
    let mut sample_queries = fastann::data::VectorSet::new(uploads.dim());
    for &i in &sample {
        sample_queries.push(uploads.get(i));
    }
    let gt = ground_truth::brute_force(&catalogue, &sample_queries, 10, Distance::L2);
    let sampled: Vec<_> = sample.iter().map(|&i| report.results[i].clone()).collect();
    let recall = ground_truth::recall_at_k(&sampled, &gt, 10);

    println!(
        "batch of {} uploads matched in {:.1} virtual ms ({:.0}/s), recall@10 = {:.3}",
        uploads.len(),
        report.total_ns / 1e6,
        report.throughput_qps(),
        recall.mean,
    );
    let (compute, comm, idle) = report.breakdown();
    println!(
        "cluster utilisation: {:.0}% compute, {:.0}% communication, {:.0}% idle",
        compute * 100.0,
        comm * 100.0,
        idle * 100.0
    );

    // Show the related-images links for the first three uploads.
    for (u, res) in report.results.iter().take(3).enumerate() {
        let ids: Vec<u32> = res.iter().take(5).map(|n| n.id).collect();
        println!("upload {u}: related catalogue images {ids:?}");
    }
}
