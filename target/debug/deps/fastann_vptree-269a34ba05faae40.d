/root/repo/target/debug/deps/fastann_vptree-269a34ba05faae40.d: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

/root/repo/target/debug/deps/libfastann_vptree-269a34ba05faae40.rlib: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

/root/repo/target/debug/deps/libfastann_vptree-269a34ba05faae40.rmeta: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

crates/vptree/src/lib.rs:
crates/vptree/src/partition.rs:
crates/vptree/src/tree.rs:
crates/vptree/src/vantage.rs:
