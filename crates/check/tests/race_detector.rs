//! End-to-end tests of the schedule-perturbation race detector.
//!
//! The positive case reconstructs the PR 1 bug class: a master that
//! drains worker replies with a wildcard-source receive observes them in
//! whatever order the OS scheduler (here: the seeded perturbation)
//! happens to deliver, so its event stream diverges across interleavings.
//! The fixed protocol — per-source, tag-exact drains in rank order — is
//! schedule-neutral by construction, and the detector must report it
//! clean under the same seeds.

use std::time::Duration;

use bytes::Bytes;
use fastann_check::race;
use fastann_mpisim::{Cluster, SchedPerturb, SimConfig};

const N_SENDERS: usize = 4;
const MSGS_PER_SENDER: usize = 2;
const TAG_DATA: u64 = 1;

/// Runs the mini master/sender protocol under one perturbation seed and
/// returns the master's receive log. `wildcard` selects the racy
/// (wildcard-source) or fixed (per-source drain) receive strategy.
fn mini_protocol(seed: u64, wildcard: bool) -> Vec<String> {
    let cfg = SimConfig::new(N_SENDERS + 1).sched(SchedPerturb::seeded(seed));
    let cluster = Cluster::new(cfg);
    let outs: Vec<Vec<String>> = cluster.run(|rank| {
        let me = rank.rank();
        if me == 0 {
            // Let every sender's traffic arrive before the first match, so
            // the perturbed wildcard matcher has the full choice of heads
            // (real-time sleep; virtual clocks are unaffected).
            std::thread::sleep(Duration::from_millis(120));
            let mut events = Vec::new();
            if wildcard {
                for _ in 0..N_SENDERS * MSGS_PER_SENDER {
                    let m = rank.recv(None, None);
                    events.push(format!("src={} payload={:?}", m.src, &m.payload[..]));
                }
            } else {
                for src in 1..=N_SENDERS {
                    for _ in 0..MSGS_PER_SENDER {
                        let m = rank.recv(Some(src), Some(TAG_DATA));
                        events.push(format!("src={} payload={:?}", m.src, &m.payload[..]));
                    }
                }
            }
            events
        } else {
            // Stagger senders in real time so the baseline arrival order
            // is stable across runs.
            std::thread::sleep(Duration::from_millis(15 * me as u64));
            for j in 0..MSGS_PER_SENDER {
                let payload = Bytes::from(vec![me as u8, j as u8]);
                rank.send_bytes(0, TAG_DATA, payload);
            }
            Vec::new()
        }
    });
    outs.into_iter().flatten().collect()
}

#[test]
fn wildcard_master_diverges_under_perturbation() {
    // PR 1 regression: the wildcard-receive merge loop is a race and the
    // detector must catch it within a K=8 exploration.
    let report = race::explore(8, 0x1234, |seed| mini_protocol(seed, true));
    assert!(
        !report.is_clean(),
        "wildcard-source drain must diverge under perturbed schedules"
    );
    let d = &report.divergences[0];
    assert!(d.seed != 0, "divergence records the perturbation seed");
    assert!(
        !d.baseline_window.is_empty() && !d.perturbed_window.is_empty(),
        "divergence carries both interleavings' event windows"
    );
    assert_ne!(
        d.baseline_window.last(),
        d.perturbed_window.last(),
        "the windows end at the first diverging event"
    );
}

#[test]
fn per_source_drain_is_schedule_neutral() {
    let report = race::explore(8, 0x1234, |seed| mini_protocol(seed, false));
    assert!(
        report.is_clean(),
        "per-source drain diverged: {}",
        report.render()
    );
    assert_eq!(report.baseline_len, N_SENDERS * MSGS_PER_SENDER);
}

#[test]
fn engine_fault_free_k8_is_clean() {
    // The production fault-free path must be schedule-neutral: K=8
    // perturbed interleavings of the same batch, identical reports.
    let workload = race::engine_workload();
    let report = race::explore(8, 0x5EED, workload);
    assert!(
        report.is_clean(),
        "fault-free search_batch diverged: {}",
        report.render()
    );
}
