/root/repo/target/debug/deps/simulation-49aa0d0d6f6bdc00.d: tests/simulation.rs

/root/repo/target/debug/deps/simulation-49aa0d0d6f6bdc00: tests/simulation.rs

tests/simulation.rs:
