/root/repo/target/debug/deps/fastann-5f05aab6a44e36a6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfastann-5f05aab6a44e36a6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
