//! Seeded fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] describes which messages misbehave (drop / delay /
//! duplicate, scoped by source, destination and tag) and which ranks fail
//! (crash at a virtual-time point, or stall once for a fixed duration).
//! The plan is **pure data + a seed**: every per-message decision is a
//! deterministic hash of `(seed, src, dst, tag, seq, rule)`, where `seq`
//! is the sender's message counter. Two runs of the same simulated program
//! under the same plan therefore inject *exactly* the same faults at the
//! same virtual times — chaos tests are reproducible bit-for-bit, and a
//! failing seed is a complete bug report.
//!
//! Scope of injection:
//!
//! * **Collective traffic is never faulted.** Collectives (tag bit 63 set)
//!   are the simulator's coordination substrate; faulting them would
//!   deadlock the harness rather than the program under test.
//! * **Protected tags are never faulted** ([`FaultPlan::protect`]). A
//!   fault-tolerant protocol registers its control-plane tags (completion
//!   markers, flush/ack) so faults hit the data plane only. This models a
//!   perfect failure detector — the standard oracle assumed by recovery
//!   protocols (cf. ULFM's failure notification in real MPI).
//! * **Crashes are fail-stop for the data plane**: every unprotected send
//!   posted by a crashed rank is suppressed. The rank's thread keeps
//!   running (virtual time must stay coordinated), but
//!   [`crate::Rank::is_crashed`] lets simulated code stop doing work, and
//!   nothing it "sends" is observable by peers.
//!
//! The default plan ([`FaultPlan::none`]) is vacuous: the send path checks
//! one boolean and takes the exact pre-fault code path, so fault support
//! costs nothing when unused.

use crate::rank::COLL_FLAG;

/// What a matching fault rule does to a message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultAction {
    /// The message is never delivered.
    Drop,
    /// Delivery is delayed by this many virtual nanoseconds.
    Delay(f64),
    /// The message is delivered twice (same arrival time).
    Duplicate,
}

/// One message-fault rule: scope (wildcards via `None`) + probability +
/// action. First matching rule wins.
#[derive(Clone, Debug)]
struct FaultRule {
    src: Option<usize>,
    dst: Option<usize>,
    tag: Option<u64>,
    prob: f64,
    action: FaultAction,
}

impl FaultRule {
    fn matches(&self, src: usize, dst: usize, tag: u64) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && self.tag.is_none_or(|t| t == tag)
    }
}

/// The fate the plan assigns to one posted message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fate {
    /// Delivered normally.
    Deliver,
    /// Silently lost.
    Drop,
    /// Delivered `extra` virtual ns late.
    Delay(f64),
    /// Delivered twice.
    Duplicate,
}

/// A deterministic, seeded schedule of message and rank faults.
///
/// Build with [`FaultPlan::new`] + the builder methods; pass to
/// [`crate::SimConfig::fault`]. [`FaultPlan::none`] (also `Default`)
/// injects nothing and costs nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    crashes: Vec<(usize, f64)>,
    stalls: Vec<(usize, f64, f64)>,
    protected: Vec<u64>,
}

impl FaultPlan {
    /// The vacuous plan: no faults, zero overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// An empty plan whose per-message coin flips derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Drops messages matching `(src, dst, tag)` (wildcards via `None`)
    /// with probability `prob` (builder style).
    pub fn drop_msgs(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag: Option<u64>,
        prob: f64,
    ) -> Self {
        self.push_rule(src, dst, tag, prob, FaultAction::Drop);
        self
    }

    /// Delays matching messages by `extra_ns` with probability `prob`
    /// (builder style).
    pub fn delay_msgs(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag: Option<u64>,
        prob: f64,
        extra_ns: f64,
    ) -> Self {
        assert!(extra_ns >= 0.0, "negative delay");
        self.push_rule(src, dst, tag, prob, FaultAction::Delay(extra_ns));
        self
    }

    /// Duplicates matching messages with probability `prob` (builder
    /// style).
    pub fn duplicate_msgs(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag: Option<u64>,
        prob: f64,
    ) -> Self {
        self.push_rule(src, dst, tag, prob, FaultAction::Duplicate);
        self
    }

    fn push_rule(
        &mut self,
        src: Option<usize>,
        dst: Option<usize>,
        tag: Option<u64>,
        prob: f64,
        action: FaultAction,
    ) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "probability out of range: {prob}"
        );
        self.rules.push(FaultRule {
            src,
            dst,
            tag,
            prob,
            action,
        });
    }

    /// Fail-stops `rank`'s data plane from virtual time `at_ns` on
    /// (builder style): unprotected sends posted at or after `at_ns` are
    /// suppressed and [`crate::Rank::is_crashed`] turns true.
    pub fn crash(mut self, rank: usize, at_ns: f64) -> Self {
        assert!(at_ns >= 0.0, "crash time before simulation start");
        self.crashes.push((rank, at_ns));
        self
    }

    /// Stalls `rank` once: the first time its clock reaches `at_ns` it
    /// jumps forward by `dur_ns` (builder style) — a GC pause / OS jitter
    /// stand-in.
    pub fn stall(mut self, rank: usize, at_ns: f64, dur_ns: f64) -> Self {
        assert!(at_ns >= 0.0 && dur_ns >= 0.0, "negative stall parameters");
        self.stalls.push((rank, at_ns, dur_ns));
        self
    }

    /// Marks `tags` as control-plane traffic exempt from all injection,
    /// including crash suppression (builder style).
    pub fn protect(mut self, tags: &[u64]) -> Self {
        self.protected.extend_from_slice(tags);
        self
    }

    /// `true` when the plan injects nothing (the fast-path check in the
    /// send layer).
    #[inline]
    pub fn is_vacuous(&self) -> bool {
        self.rules.is_empty() && self.crashes.is_empty() && self.stalls.is_empty()
    }

    /// Virtual crash time of `rank`, if the plan crashes it.
    pub fn crashed_at(&self, rank: usize) -> Option<f64> {
        self.crashes
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, t)| t)
            .min_by(f64::total_cmp)
    }

    /// One-shot stall of `rank`, if any: `(at_ns, dur_ns)`.
    pub fn stall_of(&self, rank: usize) -> Option<(f64, f64)> {
        self.stalls
            .iter()
            .find(|&&(r, _, _)| r == rank)
            .map(|&(_, at, dur)| (at, dur))
    }

    fn is_exempt(&self, tag: u64) -> bool {
        tag & COLL_FLAG != 0 || self.protected.contains(&tag)
    }

    /// `true` when a send posted by `src` at virtual time `at_ns` with
    /// `tag` must be suppressed because `src` has crashed.
    pub fn send_suppressed(&self, src: usize, at_ns: f64, tag: u64) -> bool {
        if self.is_exempt(tag) {
            return false;
        }
        self.crashed_at(src).is_some_and(|t| at_ns >= t)
    }

    /// The fate of message number `seq` from `src` to `dst` with `tag` —
    /// a pure function of the plan, so replays are exact.
    pub fn fate(&self, src: usize, dst: usize, tag: u64, seq: u64) -> Fate {
        if self.is_exempt(tag) {
            return Fate::Deliver;
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.matches(src, dst, tag) && self.roll(src, dst, tag, seq, i) < rule.prob {
                return match rule.action {
                    FaultAction::Drop => Fate::Drop,
                    FaultAction::Delay(ns) => Fate::Delay(ns),
                    FaultAction::Duplicate => Fate::Duplicate,
                };
            }
        }
        Fate::Deliver
    }

    /// Deterministic uniform draw in `[0, 1)` for one (message, rule)
    /// pair.
    fn roll(&self, src: usize, dst: usize, tag: u64, seq: u64, rule: usize) -> f64 {
        let mut z = self.seed;
        for v in [src as u64, dst as u64, tag, seq, rule as u64] {
            z = (z ^ v).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
        }
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, SimConfig};
    use crate::comm::ReduceOp;
    use bytes::Bytes;

    #[test]
    fn vacuous_plan_is_vacuous() {
        assert!(FaultPlan::none().is_vacuous());
        assert!(FaultPlan::new(7).is_vacuous());
        assert!(!FaultPlan::new(7)
            .drop_msgs(None, None, None, 0.5)
            .is_vacuous());
        assert!(!FaultPlan::new(7).crash(0, 0.0).is_vacuous());
        assert!(!FaultPlan::new(7).stall(0, 0.0, 1.0).is_vacuous());
    }

    #[test]
    fn fate_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1).drop_msgs(None, None, None, 0.5);
        let b = FaultPlan::new(1).drop_msgs(None, None, None, 0.5);
        let c = FaultPlan::new(2).drop_msgs(None, None, None, 0.5);
        let mut diverged = false;
        for seq in 0..256 {
            assert_eq!(a.fate(0, 1, 9, seq), b.fate(0, 1, 9, seq));
            diverged |= a.fate(0, 1, 9, seq) != c.fate(0, 1, 9, seq);
        }
        assert!(diverged, "different seeds should produce different fates");
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let p = FaultPlan::new(42).drop_msgs(None, None, None, 0.3);
        let dropped = (0..10_000)
            .filter(|&seq| p.fate(0, 1, 5, seq) == Fate::Drop)
            .count();
        assert!(
            (2_500..3_500).contains(&dropped),
            "30% drop rule dropped {dropped}/10000"
        );
    }

    #[test]
    fn rule_scoping_matches_src_dst_tag() {
        let p = FaultPlan::new(3).drop_msgs(Some(1), Some(2), Some(7), 1.0);
        assert_eq!(p.fate(1, 2, 7, 0), Fate::Drop);
        assert_eq!(p.fate(0, 2, 7, 0), Fate::Deliver);
        assert_eq!(p.fate(1, 3, 7, 0), Fate::Deliver);
        assert_eq!(p.fate(1, 2, 8, 0), Fate::Deliver);
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan::new(4)
            .drop_msgs(None, None, Some(1), 1.0)
            .delay_msgs(None, None, None, 1.0, 50.0);
        assert_eq!(p.fate(0, 1, 1, 0), Fate::Drop);
        assert_eq!(p.fate(0, 1, 2, 0), Fate::Delay(50.0));
    }

    #[test]
    fn protected_and_collective_tags_are_exempt() {
        let p = FaultPlan::new(5)
            .drop_msgs(None, None, None, 1.0)
            .protect(&[204]);
        assert_eq!(p.fate(0, 1, 204, 0), Fate::Deliver, "protected tag");
        assert_eq!(
            p.fate(0, 1, COLL_FLAG | 3, 0),
            Fate::Deliver,
            "collective tag"
        );
        assert_eq!(p.fate(0, 1, 5, 0), Fate::Drop, "plain tag still faulted");
    }

    #[test]
    fn crash_suppresses_unprotected_sends_only() {
        let p = FaultPlan::new(5).crash(3, 100.0).protect(&[77]);
        assert!(!p.send_suppressed(3, 99.9, 1));
        assert!(p.send_suppressed(3, 100.0, 1));
        assert!(
            !p.send_suppressed(3, 100.0, 77),
            "protected tag survives crash"
        );
        assert!(!p.send_suppressed(2, 100.0, 1), "other ranks unaffected");
        assert_eq!(p.crashed_at(3), Some(100.0));
        assert_eq!(p.crashed_at(2), None);
    }

    #[test]
    fn collectives_complete_under_total_message_loss() {
        // Even a drop-everything plan must not touch collective traffic:
        // the allreduce still completes and computes the right value.
        let plan = FaultPlan::new(6).drop_msgs(None, None, None, 1.0);
        let sums = Cluster::new(SimConfig::new(4).fault(plan)).run(|rank| {
            rank.world()
                .allreduce_f64(rank, rank.rank() as f64, ReduceOp::Sum)
        });
        assert!(sums.iter().all(|&s| s == 6.0));
    }

    #[test]
    fn dropped_p2p_message_never_arrives() {
        let plan = FaultPlan::new(7).drop_msgs(Some(0), Some(1), Some(9), 1.0);
        Cluster::new(SimConfig::new(2).fault(plan)).run(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 9, Bytes::from_static(b"lost"));
                rank.send_bytes(1, 10, Bytes::from_static(b"kept"));
            } else {
                let m = rank.recv(Some(0), None);
                assert_eq!(m.tag, 10, "dropped message must not be delivered");
            }
        });
    }

    #[test]
    fn duplicated_message_arrives_twice() {
        let plan = FaultPlan::new(8).duplicate_msgs(Some(0), Some(1), Some(3), 1.0);
        Cluster::new(SimConfig::new(2).fault(plan)).run(|rank| {
            if rank.rank() == 0 {
                rank.send_bytes(1, 3, Bytes::from_static(b"x"));
            } else {
                let a = rank.recv(Some(0), Some(3));
                let b = rank.recv(Some(0), Some(3));
                assert_eq!(&a.payload[..], b"x");
                assert_eq!(&b.payload[..], b"x");
            }
        });
    }

    #[test]
    fn delayed_message_arrives_late() {
        let base = Cluster::new(SimConfig::new(2)).run(pingpong);
        let plan = FaultPlan::new(9).delay_msgs(Some(0), Some(1), None, 1.0, 5_000.0);
        let delayed = Cluster::new(SimConfig::new(2).fault(plan)).run(pingpong);
        assert!(
            (delayed[1] - base[1] - 5_000.0).abs() < 1e-6,
            "receiver clock should shift by exactly the injected delay: {} vs {}",
            delayed[1],
            base[1]
        );

        fn pingpong(rank: &mut crate::Rank) -> f64 {
            if rank.rank() == 0 {
                rank.send_bytes(1, 1, Bytes::from_static(b"m"));
                0.0
            } else {
                let _ = rank.recv(Some(0), Some(1));
                rank.now()
            }
        }
    }

    #[test]
    fn crashed_rank_flag_and_send_suppression() {
        let plan = FaultPlan::new(10).crash(0, 500.0);
        Cluster::new(SimConfig::new(2).fault(plan)).run(|rank| {
            if rank.rank() == 0 {
                assert!(!rank.is_crashed());
                rank.send_bytes(1, 1, Bytes::from_static(b"pre"));
                rank.charge(1_000.0);
                assert!(rank.is_crashed());
                rank.send_bytes(1, 2, Bytes::from_static(b"post")); // suppressed
                assert_eq!(rank.stats().msgs_dropped, 1);
            } else {
                let m = rank.recv(Some(0), None);
                assert_eq!(m.tag, 1);
                assert!(rank.try_recv(Some(0), None).is_none());
            }
        });
    }

    #[test]
    fn stall_fires_once_at_threshold() {
        let plan = FaultPlan::new(11).stall(0, 1_000.0, 9_000.0);
        let out = Cluster::new(SimConfig::new(1).fault(plan)).run(|rank| {
            rank.charge(500.0);
            assert_eq!(rank.now(), 500.0, "stall must not fire early");
            rank.charge(600.0); // crosses 1000 -> +9000
            let after_first = rank.now();
            rank.charge(100.0); // must not fire again
            (after_first, rank.now(), rank.stats().stall_ns)
        });
        assert_eq!(out[0].0, 10_100.0);
        assert_eq!(out[0].1, 10_200.0);
        assert_eq!(out[0].2, 9_000.0);
    }

    #[test]
    fn vacuous_plan_changes_nothing() {
        let run = |cfg: SimConfig| {
            Cluster::new(cfg).run(|rank| {
                if rank.rank() == 0 {
                    rank.charge(123.0);
                    rank.send_bytes(1, 1, Bytes::from_static(b"abc"));
                    rank.now()
                } else {
                    let _ = rank.recv(Some(0), Some(1));
                    rank.now()
                }
            })
        };
        let base = run(SimConfig::new(2));
        let with_none = run(SimConfig::new(2).fault(FaultPlan::none()));
        assert_eq!(base, with_none);
    }

    #[test]
    #[should_panic]
    fn out_of_range_probability_rejected() {
        let _ = FaultPlan::new(0).drop_msgs(None, None, None, 1.5);
    }
}
