//! # fastann-data
//!
//! Foundation crate for the `fastann` workspace: dense vector storage,
//! distance metrics for general metric spaces, streaming top-k selection,
//! order statistics (quickselect / median-of-medians), `fvecs`/`bvecs`/`ivecs`
//! file IO, synthetic dataset generators (including an MDCGen-style
//! multidimensional cluster generator), and exact brute-force ground truth
//! with recall evaluation.
//!
//! Everything downstream — the HNSW index, the VP tree, the KD-tree baseline
//! and the distributed engine — builds on the types defined here.
//!
//! ## Quick tour
//!
//! ```
//! use fastann_data::{VectorSet, Distance, ground_truth, synth};
//!
//! // 1k SIFT-like 32-dimensional vectors plus 10 queries.
//! let data = synth::sift_like(1_000, 32, 42);
//! let queries = synth::sift_like(10, 32, 43);
//!
//! // Exact 5-NN by brute force.
//! let gt = ground_truth::brute_force(&data, &queries, 5, Distance::L2);
//! assert_eq!(gt.len(), 10);
//! assert_eq!(gt[0].len(), 5);
//! ```

#![forbid(unsafe_code)]

/// Exact brute-force neighbours and recall evaluation.
pub mod ground_truth;
/// `fvecs` / `bvecs` / `ivecs` dataset file IO.
pub mod io;
/// Chunked, auto-vectorization-friendly distance inner loops.
pub mod kernels;
/// Distance metrics over dense `f32` vectors.
pub mod metric;
/// SQ8 scalar quantization with asymmetric distance.
pub mod quant;
/// Order statistics: quickselect and median-of-medians.
pub mod select;
/// Per-dimension dataset statistics.
pub mod stats;
/// Synthetic dataset generators (MDCGen-style and descriptor-shaped).
pub mod synth;
/// Streaming top-k selection and the `Neighbor` type.
pub mod topk;
/// Dense row-major vector storage.
pub mod vector;

pub use ground_truth::{recall_at_k, Recall};
pub use metric::Distance;
pub use stats::{dataset_stats, DatasetStats};
pub use topk::{Neighbor, TopK};
pub use vector::VectorSet;
