//! Textual lint over the workspace source tree.
//!
//! Eight rules, all enforced without a Rust parser — the source
//! conventions of this workspace (one statement per line, one tag-table
//! field per line) are strict enough for a line lint, and a textual pass
//! keeps this crate dependency-free:
//!
//! | rule              | meaning                                                        |
//! |-------------------|----------------------------------------------------------------|
//! | `no-unwrap`       | no bare `unwrap` in non-test library code (`expect` is fine)   |
//! | `no-panic`        | no panicking macro in non-test library code (simulator exempt) |
//! | `wildcard-recv`   | no wildcard-source / untagged receive outside the simulator    |
//! | `tag-registry`    | every `TAG_*` constant and every sent tag is registered        |
//! | `missing-doc`     | every `pub` item of fastann-core / -mpisim / -serve / -obs / -data / -hnsw has a doc |
//! | `no-thread-spawn` | no direct thread spawning outside the simulator — go through the rayon pool |
//! | `search-batch-variant` | no new `pub fn search_batch*` entry points — one `SearchRequest` builder; only `#[deprecated]` shims may keep the old names |
//! | `quantized-traversal` | HNSW traversal code goes through `QueryDist` dispatch — no direct exact-distance kernels in `crates/hnsw/src` outside the re-rank stage |
//!
//! Test modules (`#[cfg(test)] mod …`), `tests/` and `benches/`
//! directories, and `vendor/` stand-ins are out of scope. Justified
//! violations are suppressed by `crates/check/allowlist.txt`, one
//! `path rule reason…` triple per line at file + rule granularity.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// The needles are spliced at compile time so that scanning this very
// file does not self-flag the patterns as violations.
const UNWRAP_PAT: &str = concat!(".unw", "rap()");
const PANIC_PATS: [&str; 4] = [
    concat!("pan", "ic!("),
    concat!("unreach", "able!("),
    concat!("tod", "o!("),
    concat!("unimplem", "ented!("),
];
const RECV_PATS: [&str; 2] = [concat!(".re", "cv("), concat!(".try_", "recv(")];
const SEND_PATS: [&str; 2] = [concat!(".send_", "bytes("), concat!(".send_", "bytes_at(")];
const TAG_CONST_PAT: &str = concat!("const ", "TAG_");
const SPAWN_PATS: [&str; 3] = [
    concat!("thread::", "spawn("),
    concat!(".spawn_", "scoped("),
    concat!("thread::", "Builder::new("),
];
const SEARCH_BATCH_PAT: &str = concat!("pub fn search", "_batch");
const DEPRECATED_PAT: &str = concat!("#[depre", "cated");
const SQL2_PAT: &str = concat!("squared", "_l2(");
const EVAL_PAT: &str = concat!(".ev", "al(");
const TRAVERSAL_FNS: [&str; 2] = [
    concat!("fn greedy", "_step"),
    concat!("fn search", "_layer"),
];

/// Rule identifier: bare `unwrap` in non-test library code.
pub const RULE_UNWRAP: &str = "no-unwrap";
/// Rule identifier: panicking macro in non-test library code.
pub const RULE_PANIC: &str = "no-panic";
/// Rule identifier: wildcard/untagged receive outside the simulator.
pub const RULE_RECV: &str = "wildcard-recv";
/// Rule identifier: unregistered wire tag or non-symbolic send tag.
pub const RULE_TAG: &str = "tag-registry";
/// Rule identifier: undocumented public item.
pub const RULE_DOC: &str = "missing-doc";
/// Rule identifier: direct thread spawning outside the simulator.
pub const RULE_SPAWN: &str = "no-thread-spawn";
/// Rule identifier: a new `search_batch*` public entry point outside the
/// deprecated-shim family.
pub const RULE_SEARCH_BATCH: &str = "search-batch-variant";
/// Rule identifier: direct exact-distance evaluation in HNSW traversal
/// code. Traversal must dispatch through `QueryDist` so the quantized
/// and exact domains stay confined to `Hnsw::d` and the search entry
/// points; the only sanctioned search-time exact-distance consumer is
/// the re-rank stage (allowlisted).
pub const RULE_QUANT: &str = "quantized-traversal";

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// One of the `RULE_*` identifiers.
    pub rule: &'static str,
    /// The offending source line (trimmed) or a description.
    pub text: String,
}

/// One `path rule reason…` allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// File the entry applies to, relative to the workspace root.
    pub path: String,
    /// Rule identifier it suppresses in that file.
    pub rule: String,
    /// Human justification (free text).
    pub reason: String,
}

/// Outcome of a lint pass over the workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist. Non-empty fails CI.
    pub violations: Vec<Violation>,
    /// Findings suppressed by an allowlist entry.
    pub suppressed: usize,
    /// Allowlist entries that suppressed nothing (stale — worth pruning).
    pub unused_allowlist: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when no violation survived the allowlist.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{}:{}: [{}] {}\n", v.file, v.line, v.rule, v.text));
        }
        for e in &self.unused_allowlist {
            out.push_str(&format!("warning: unused allowlist entry: {e}\n"));
        }
        out.push_str(&format!(
            "lint: {} files scanned, {} violations, {} suppressed by allowlist\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressed
        ));
        out
    }
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Scans `crates/*/src/**/*.rs` and `src/**/*.rs`, skipping `tests/`,
/// `benches/`, `vendor/` and `target/`. The tag registry is parsed
/// textually from `crates/core/src/tags.rs`; the allowlist from
/// `crates/check/allowlist.txt` (both optional — missing files simply
/// disable the corresponding mechanism).
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();

    let tag_table = parse_tag_table(&root.join("crates/core/src/tags.rs"))?;
    let allowlist = parse_allowlist(&root.join("crates/check/allowlist.txt"))?;

    let mut all = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let content = fs::read_to_string(path)?;
        lint_file(&rel, &content, &tag_table, &mut all);
    }

    let mut used = vec![false; allowlist.len()];
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for v in all {
        let hit = allowlist
            .iter()
            .position(|e| e.path == v.file && e.rule == v.rule);
        match hit {
            Some(i) => {
                used[i] = true;
                report.suppressed += 1;
            }
            None => report.violations.push(v),
        }
    }
    for (e, used) in allowlist.iter().zip(used) {
        if !used {
            report
                .unused_allowlist
                .push(format!("{} {}", e.path, e.rule));
        }
    }
    Ok(report)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "vendor" | "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses `(name, value)` pairs out of the tag-table source. Relies on
/// the "one field per line" convention documented on `TAG_TABLE`.
fn parse_tag_table(path: &Path) -> io::Result<Vec<(String, u64)>> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let content = fs::read_to_string(path)?;
    let mut pairs = Vec::new();
    let mut cur_name: Option<String> = None;
    for line in content.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("name: \"") {
            if let Some(end) = rest.find('"') {
                cur_name = Some(rest[..end].to_string());
            }
        } else if let Some(rest) = t.strip_prefix("value: ") {
            let num = rest.trim_end_matches(',').trim();
            if let (Some(name), Ok(value)) = (cur_name.take(), num.parse::<u64>()) {
                pairs.push((name, value));
            }
        }
    }
    Ok(pairs)
}

fn parse_allowlist(path: &Path) -> io::Result<Vec<AllowEntry>> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let content = fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for line in content.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.splitn(3, char::is_whitespace);
        if let (Some(path), Some(rule)) = (parts.next(), parts.next()) {
            entries.push(AllowEntry {
                path: path.to_string(),
                rule: rule.to_string(),
                reason: parts.next().unwrap_or("").trim().to_string(),
            });
        }
    }
    Ok(entries)
}

/// Lints one file; appends findings to `out`.
fn lint_file(rel: &str, content: &str, tag_table: &[(String, u64)], out: &mut Vec<Violation>) {
    let is_mpisim = rel.starts_with("crates/mpisim/");
    let is_tags_file = rel == "crates/core/src/tags.rs";
    let is_hnsw = rel.starts_with("crates/hnsw/src");
    let wants_docs = rel.starts_with("crates/core/src")
        || rel.starts_with("crates/mpisim/src")
        || rel.starts_with("crates/serve/src")
        || rel.starts_with("crates/obs/src")
        || rel.starts_with("crates/data/src")
        || rel.starts_with("crates/hnsw/src");

    let lines: Vec<&str> = content.lines().collect();
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut pending_cfg_test = false;
    // quantized-traversal: brace-counted span of an HNSW traversal fn
    // (the multi-line signature has not opened a brace yet, so the span
    // only ends once an opening brace has been seen and depth returns
    // to zero).
    let mut in_traversal = false;
    let mut trav_depth: i64 = 0;
    let mut trav_opened = false;

    for (i, raw) in lines.iter().enumerate() {
        let line_no = i + 1;
        let t = raw.trim();
        let opens = raw.matches('{').count() as i64;
        let closes = raw.matches('}').count() as i64;

        if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if t.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if t.starts_with("#[") {
                continue; // further attributes on the same item
            }
            pending_cfg_test = false;
            if t.starts_with("mod ") || t.starts_with("pub mod ") {
                in_test = true;
                test_depth = opens - closes;
                if test_depth <= 0 {
                    in_test = false;
                }
                continue;
            }
        }

        let is_comment = t.starts_with("//");

        // quantized-traversal: inside greedy_step / search_layer every
        // distance goes through QueryDist dispatch, so a direct metric
        // eval there reintroduces a second distance domain into the beam.
        if in_traversal {
            if !is_comment && t.contains(EVAL_PAT) {
                out.push(violation(rel, line_no, RULE_QUANT, t));
            }
            if opens > 0 {
                trav_opened = true;
            }
            trav_depth += opens - closes;
            if trav_opened && trav_depth <= 0 {
                in_traversal = false;
            }
        } else if is_hnsw && !is_comment && TRAVERSAL_FNS.iter().any(|p| t.contains(p)) {
            in_traversal = true;
            trav_opened = opens > 0;
            trav_depth = opens - closes;
            if trav_opened && trav_depth <= 0 {
                in_traversal = false;
            }
        }

        // quantized-traversal: the raw exact kernel may not be called
        // anywhere in the HNSW crate — the re-rank stage is the one
        // sanctioned consumer and carries the allowlist entry.
        if is_hnsw && !is_comment && t.contains(SQL2_PAT) {
            out.push(violation(rel, line_no, RULE_QUANT, t));
        }

        if !is_comment {
            // no-unwrap
            if t.contains(UNWRAP_PAT) {
                out.push(violation(rel, line_no, RULE_UNWRAP, t));
            }

            // no-panic (the simulator's own internals legitimately panic:
            // a simulated-rank panic is the simulated fault model)
            if !is_mpisim && PANIC_PATS.iter().any(|p| t.contains(p)) {
                out.push(violation(rel, line_no, RULE_PANIC, t));
            }

            // no-thread-spawn: all real parallelism goes through the
            // vendored rayon pool (deterministic, order-preserving) — the
            // only legitimate direct spawner is the cluster simulator's
            // rank scheduler. The vendored pool itself lives under
            // `vendor/`, which the file walk already skips.
            if !is_mpisim && SPAWN_PATS.iter().any(|p| t.contains(p)) {
                out.push(violation(rel, line_no, RULE_SPAWN, t));
            }

            // search-batch-variant: the five legacy entry points survive
            // only as `#[deprecated]` shims over the SearchRequest
            // builder; a new public variant of the family must not
            // appear. A shim is recognized by its deprecation attribute
            // on one of the five preceding lines.
            if t.contains(SEARCH_BATCH_PAT) {
                let shim = lines[i.saturating_sub(5)..i]
                    .iter()
                    .any(|l| l.trim_start().starts_with(DEPRECATED_PAT));
                if !shim {
                    out.push(violation(rel, line_no, RULE_SEARCH_BATCH, t));
                }
            }

            // wildcard-recv
            if !is_mpisim {
                for pat in RECV_PATS {
                    if let Some(pos) = t.find(pat) {
                        let args = call_args(&t[pos + pat.len()..]);
                        if args.contains("None") {
                            out.push(violation(rel, line_no, RULE_RECV, t));
                            break;
                        }
                    }
                }
            }

            // tag-registry, part 1: declarations must match the table
            if !is_mpisim && !is_tags_file {
                if let Some(pos) = t.find(TAG_CONST_PAT) {
                    let name_start = pos + TAG_CONST_PAT.len() - 4; // keep "TAG_"
                    let rest = &t[name_start..];
                    if let Some(colon) = rest.find(':') {
                        let name = rest[..colon].trim();
                        let value = rest
                            .split('=')
                            .nth(1)
                            .and_then(|v| v.trim().trim_end_matches(';').parse::<u64>().ok());
                        if let Some(value) = value {
                            let registered =
                                tag_table.iter().any(|(n, v)| n == name && *v == value);
                            if !registered {
                                out.push(Violation {
                                    file: rel.to_string(),
                                    line: line_no,
                                    rule: RULE_TAG,
                                    text: format!(
                                        "{name} = {value} is not registered in core/src/tags.rs TAG_TABLE"
                                    ),
                                });
                            }
                        }
                    }
                }

                // tag-registry, part 2: sent tags must be symbolic
                for pat in SEND_PATS {
                    if let Some(pos) = t.find(pat) {
                        let joined = lines[i..lines.len().min(i + 3)].join(" ");
                        let jpos = joined.find(pat).map(|p| p + pat.len()).unwrap_or(0);
                        let args: Vec<&str> = joined[jpos..].splitn(3, ',').collect();
                        let tag_ok = args
                            .get(1)
                            .map(|a| a.contains("TAG_") || a.to_lowercase().contains("tag"))
                            .unwrap_or(false);
                        if !tag_ok {
                            out.push(Violation {
                                file: rel.to_string(),
                                line: line_no,
                                rule: RULE_TAG,
                                text: format!(
                                    "tag argument is not a TAG_* identifier: {}",
                                    &t[pos..]
                                ),
                            });
                        }
                        break;
                    }
                }
            }
        }

        // missing-doc
        if wants_docs && !is_comment && is_pub_item(t) {
            let mut j = i;
            let mut documented = false;
            while j > 0 {
                j -= 1;
                let prev = lines[j].trim();
                if prev.starts_with("///") {
                    documented = true;
                    break;
                }
                // walk through attributes (including wrapped ones)
                if prev.starts_with("#[") || prev.starts_with("#![") || prev.ends_with(")]") {
                    continue;
                }
                break;
            }
            if !documented {
                out.push(Violation {
                    file: rel.to_string(),
                    line: line_no,
                    rule: RULE_DOC,
                    text: format!("undocumented public item: {}", first_words(t, 6)),
                });
            }
        }
    }
}

fn violation(rel: &str, line: usize, rule: &'static str, text: &str) -> Violation {
    Violation {
        file: rel.to_string(),
        line,
        rule,
        text: text.to_string(),
    }
}

/// The argument span of a call: `rest` starts just past the opening
/// parenthesis; the span ends at the matching close (or end of line for
/// calls that wrap).
fn call_args(rest: &str) -> &str {
    let mut depth = 1usize;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return &rest[..i];
                }
            }
            _ => {}
        }
    }
    rest
}

/// Is this line the head of a `pub` item that needs a doc comment?
/// `pub(crate)` and `pub use` are exempt.
fn is_pub_item(t: &str) -> bool {
    const HEADS: [&str; 10] = [
        "pub fn ",
        "pub async fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub mod ",
        "pub union ",
    ];
    HEADS.iter().any(|h| t.starts_with(h))
}

fn first_words(t: &str, n: usize) -> String {
    t.split_whitespace().take(n).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<Violation> {
        let table = vec![("TAG_GOOD".to_string(), 7u64)];
        let mut out = Vec::new();
        lint_file(rel, src, &table, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_outside_tests() {
        let src = "fn f() {\n    let x = g().unwrap();\n}\n";
        let v = lint_str("crates/data/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNWRAP);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn ignores_test_modules_and_comments() {
        let src = "\
// a comment mentioning x.unwrap() and rank.recv(None, None)
#[cfg(test)]
mod tests {
    fn f() {
        let x = g().unwrap();
        panic!(\"in tests this is fine\");
    }
}
";
        assert!(lint_str("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_panics_except_in_mpisim() {
        let src = "fn f() {\n    panic!(\"boom\");\n    unreachable!();\n}\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == RULE_PANIC));
        assert!(lint_str("crates/mpisim/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_wildcard_and_untagged_receives() {
        let src = "fn f(rank: &mut Rank) {\n    let a = rank.recv(None, Some(3));\n    let b = rank.recv(Some(1), None);\n    let c = rank.recv(Some(1), Some(3));\n    let d = rank.try_recv(None, None);\n}\n";
        let v = lint_str("crates/kdtree/src/x.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == RULE_RECV));
    }

    #[test]
    fn flags_direct_thread_spawns_except_in_mpisim() {
        let src = "fn f() {\n    let h = std::thread::spawn(|| {});\n    let b = std::thread::Builder::new();\n    scope.spawn_scoped(s, || {});\n}\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == RULE_SPAWN));
        // the simulator's rank scheduler is the legitimate spawner
        assert!(lint_str("crates/mpisim/src/x.rs", src).is_empty());
        // pool-mediated parallelism does not trip the rule
        let good = "fn f() {\n    rayon::with_num_threads(4, || xs.par_iter().for_each(g));\n}\n";
        assert!(lint_str("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn flags_unregistered_tag_constants() {
        let good = "const TAG_GOOD: u64 = 7;\n";
        assert!(lint_str("crates/kdtree/src/x.rs", good).is_empty());
        let wrong_value = "const TAG_GOOD: u64 = 8;\n";
        assert_eq!(
            lint_str("crates/kdtree/src/x.rs", wrong_value)[0].rule,
            RULE_TAG
        );
        let unknown = "pub const TAG_ROGUE: u64 = 9;\n";
        assert_eq!(
            lint_str("crates/kdtree/src/x.rs", unknown)[0].rule,
            RULE_TAG
        );
    }

    #[test]
    fn flags_non_symbolic_send_tags() {
        let bad = "fn f(r: &mut Rank) {\n    r.send_bytes(0, 42, payload);\n}\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_TAG);
        let good = "fn f(r: &mut Rank) {\n    r.send_bytes(0, TAG_GOOD, payload);\n    r.send_bytes(0, rtag, payload);\n}\n";
        assert!(lint_str("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn flags_undocumented_pub_items_in_registered_crates_only() {
        let src = "pub fn naked() {}\n\n/// Documented.\npub fn clothed() {}\n\npub use other::thing;\npub(crate) fn internal() {}\n";
        // core, mpisim, serve, obs, data and hnsw are registered under
        // the doc rule
        for dir in [
            "crates/core/src",
            "crates/mpisim/src",
            "crates/serve/src",
            "crates/obs/src",
            "crates/data/src",
            "crates/hnsw/src",
        ] {
            let v = lint_str(&format!("{dir}/x.rs"), src);
            assert_eq!(v.len(), 1, "{dir}: {v:?}");
            assert_eq!(v[0].rule, RULE_DOC);
            assert_eq!(v[0].line, 1);
        }
        // other crates are not under the doc rule
        assert!(lint_str("crates/vptree/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_new_search_batch_variants_but_not_deprecated_shims() {
        let fresh = format!("/// Documented, but still a new variant.\n{SEARCH_BATCH_PAT}_faster(q: &Q) -> R {{}}\n");
        let v = lint_str("crates/core/src/x.rs", &fresh);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_SEARCH_BATCH);
        // the deprecation attribute (within five lines above) marks a shim
        let shim = format!(
            "/// Old entry point.\n{DEPRECATED_PAT}(note = \"use the builder\")]\n{SEARCH_BATCH_PAT}(q: &Q) -> R {{}}\n"
        );
        assert!(lint_str("crates/core/src/x.rs", &shim).is_empty());
        // mentions in comments and `pub use` re-exports are fine
        let bench = format!("// docs may mention {SEARCH_BATCH_PAT}\n");
        assert!(lint_str("crates/bench/src/x.rs", &bench).is_empty());
    }

    #[test]
    fn flags_exact_kernels_in_hnsw_but_not_elsewhere() {
        let src =
            format!("fn f(a: &[f32], b: &[f32]) -> f32 {{\n    kernels::{SQL2_PAT}a, b)\n}}\n");
        let v = lint_str("crates/hnsw/src/x.rs", &src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_QUANT);
        assert_eq!(v[0].line, 2);
        // the same call is fine outside the HNSW crate and in comments
        assert!(lint_str("crates/core/src/x.rs", &src).is_empty());
        let doc = format!("// re-ranking uses {SQL2_PAT}..)\n");
        assert!(lint_str("crates/hnsw/src/x.rs", &doc).is_empty());
    }

    #[test]
    fn flags_metric_eval_inside_traversal_spans_only() {
        let trav = TRAVERSAL_FNS[1];
        let src = format!(
            "impl Hnsw {{\n    {trav}(\n        &self,\n        q: &QueryDist<'_>,\n    ) -> Vec<Neighbor> {{\n        let d = self.dist{EVAL_PAT}q, v);\n        d\n    }}\n\n    fn link_back(&self) {{\n        let d = self.dist{EVAL_PAT}a, b);\n    }}\n}}\n"
        );
        let v = lint_str("crates/hnsw/src/x.rs", &src);
        assert_eq!(v.len(), 1, "construction-time evals stay legal: {v:?}");
        assert_eq!(v[0].rule, RULE_QUANT);
        assert_eq!(v[0].line, 6);
        // traversal fns that stick to QueryDist dispatch are clean
        let good = format!(
            "impl Hnsw {{\n    {trav}(&self, q: &QueryDist<'_>) -> Vec<Neighbor> {{\n        let d = self.d(q, id, scratch);\n        d\n    }}\n}}\n"
        );
        assert!(lint_str("crates/hnsw/src/x.rs", &good).is_empty());
    }

    #[test]
    fn doc_rule_sees_through_attributes() {
        let src = "/// Documented.\n#[derive(Clone)]\n#[repr(C)]\npub struct S;\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_suppresses_at_file_rule_granularity() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join(format!("fastann-check-lint-{}", std::process::id()));
        let src_dir = dir.join("crates/x/src");
        fs::create_dir_all(&src_dir).expect("temp tree is creatable");
        fs::create_dir_all(dir.join("crates/check")).expect("temp tree is creatable");
        let mut f = fs::File::create(src_dir.join("lib.rs")).expect("temp file is creatable");
        writeln!(f, "fn f() {{\n    g().unwrap();\n    h().unwrap();\n}}").expect("write succeeds");
        fs::write(
            dir.join("crates/check/allowlist.txt"),
            "crates/x/src/lib.rs no-unwrap temp fixture\ncrates/x/src/lib.rs no-panic stale entry\n",
        )
        .expect("allowlist is writable");
        let report = run(&dir).expect("lint runs");
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.suppressed, 2);
        assert_eq!(
            report.unused_allowlist,
            vec!["crates/x/src/lib.rs no-panic".to_string()]
        );
        fs::remove_dir_all(&dir).ok();
    }
}
