//! Link storage for the layered HNSW graph.
//!
//! Adjacency is stored per node as one `Vec<u32>` per layer the node
//! participates in, behind a `parking_lot::RwLock` so that bulk construction
//! can insert nodes concurrently (readers of settled neighbourhoods do not
//! block each other).

use parking_lot::RwLock;

/// Per-node adjacency: `layers[l]` holds the node's neighbours at layer `l`,
/// for `l <= level(node)`.
#[derive(Debug, Default)]
pub(crate) struct NodeLinks {
    pub layers: Vec<Vec<u32>>,
}

impl NodeLinks {
    /// Pre-sizes one node's adjacency for a draw of `level`: capacity
    /// `m_max0` at layer 0 and `m` at each upper layer.
    pub fn with_level(level: usize, m: usize, m_max0: usize) -> Self {
        let mut layers = Vec::with_capacity(level + 1);
        layers.push(Vec::with_capacity(m_max0));
        for _ in 1..=level {
            layers.push(Vec::with_capacity(m));
        }
        Self { layers }
    }
}

/// The whole graph's adjacency, indexed by node id.
#[derive(Debug, Default)]
pub(crate) struct Graph {
    pub nodes: Vec<RwLock<NodeLinks>>,
}

impl Graph {
    /// Pre-allocates adjacency for `levels[i]`-level nodes.
    pub fn for_levels(levels: &[u8], m: usize, m_max0: usize) -> Self {
        let nodes = levels
            .iter()
            .map(|&l| RwLock::new(NodeLinks::with_level(l as usize, m, m_max0)))
            .collect();
        Self { nodes }
    }

    /// Copies node `u`'s neighbour list at `layer`.
    #[inline]
    pub fn neighbors(&self, u: u32, layer: usize) -> Vec<u32> {
        let guard = self.nodes[u as usize].read();
        guard.layers.get(layer).cloned().unwrap_or_default()
    }

    /// Visits node `u`'s neighbour list at `layer` without copying.
    #[inline]
    pub fn with_neighbors<R>(&self, u: u32, layer: usize, f: impl FnOnce(&[u32]) -> R) -> R {
        let guard = self.nodes[u as usize].read();
        f(guard.layers.get(layer).map_or(&[][..], |v| v.as_slice()))
    }

    /// Replaces node `u`'s neighbour list at `layer`.
    #[inline]
    pub fn set_neighbors(&self, u: u32, layer: usize, links: Vec<u32>) {
        let mut guard = self.nodes[u as usize].write();
        guard.layers[layer] = links;
    }

    /// Removes `v` from node `u`'s neighbour list at `layer` (no-op when
    /// absent). Used by symmetric pruning: dropping `u -> v` must drop
    /// `v -> u` too, or the graph drifts away from link symmetry.
    #[inline]
    pub fn remove_neighbor(&self, u: u32, layer: usize, v: u32) {
        let mut guard = self.nodes[u as usize].write();
        if let Some(links) = guard.layers.get_mut(layer) {
            links.retain(|&x| x != v);
        }
    }

    /// Appends storage for one new node participating up to `level`.
    pub fn push_node(&mut self, level: usize, m: usize, m_max0: usize) {
        self.nodes
            .push(RwLock::new(NodeLinks::with_level(level, m, m_max0)));
    }

    /// Total number of directed edges (for memory accounting / tests).
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.read().layers.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_levels_allocates_layers() {
        let g = Graph::for_levels(&[0, 2, 1], 4, 8);
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.nodes[0].read().layers.len(), 1);
        assert_eq!(g.nodes[1].read().layers.len(), 3);
        assert_eq!(g.nodes[2].read().layers.len(), 2);
    }

    #[test]
    fn set_and_get_neighbors() {
        let g = Graph::for_levels(&[1, 1], 4, 8);
        g.set_neighbors(0, 1, vec![1]);
        assert_eq!(g.neighbors(0, 1), vec![1]);
        assert_eq!(g.neighbors(0, 0), Vec::<u32>::new());
        // out-of-range layer yields empty, not panic
        assert_eq!(g.neighbors(0, 5), Vec::<u32>::new());
    }

    #[test]
    fn edge_count_sums_layers() {
        let g = Graph::for_levels(&[1, 0], 4, 8);
        g.set_neighbors(0, 0, vec![1]);
        g.set_neighbors(0, 1, vec![1]);
        g.set_neighbors(1, 0, vec![0]);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn with_neighbors_borrows() {
        let g = Graph::for_levels(&[0], 2, 4);
        g.set_neighbors(0, 0, vec![7, 8]);
        let sum = g.with_neighbors(0, 0, |ns| ns.iter().sum::<u32>());
        assert_eq!(sum, 15);
    }
}
