/root/repo/target/release/deps/fastann_data-8d4ec550f057c279.d: crates/data/src/lib.rs crates/data/src/ground_truth.rs crates/data/src/io.rs crates/data/src/metric.rs crates/data/src/quant.rs crates/data/src/select.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/descriptors.rs crates/data/src/synth/mdcgen.rs crates/data/src/topk.rs crates/data/src/vector.rs

/root/repo/target/release/deps/fastann_data-8d4ec550f057c279: crates/data/src/lib.rs crates/data/src/ground_truth.rs crates/data/src/io.rs crates/data/src/metric.rs crates/data/src/quant.rs crates/data/src/select.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/descriptors.rs crates/data/src/synth/mdcgen.rs crates/data/src/topk.rs crates/data/src/vector.rs

crates/data/src/lib.rs:
crates/data/src/ground_truth.rs:
crates/data/src/io.rs:
crates/data/src/metric.rs:
crates/data/src/quant.rs:
crates/data/src/select.rs:
crates/data/src/stats.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/descriptors.rs:
crates/data/src/synth/mdcgen.rs:
crates/data/src/topk.rs:
crates/data/src/vector.rs:
