//! Virtual thread pools: modelled intra-node OpenMP-style workers.
//!
//! The paper's worker processes spawn a fixed set of OpenMP threads; queries
//! arriving at a compute node are picked up by whichever thread is free
//! (Algorithm 4), which balances load *within* a node. A [`VThreadPool`]
//! models exactly that queueing behaviour in virtual time: each incoming
//! task is assigned to the earliest-available virtual thread, yielding the
//! task's completion timestamp.

/// A pool of `T` virtual worker threads, each with its own availability
/// clock.
#[derive(Clone, Debug)]
pub struct VThreadPool {
    clocks: Vec<f64>,
    busy_ns: f64,
}

impl VThreadPool {
    /// Creates a pool of `threads` workers all available from `start_ns`.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize, start_ns: f64) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        Self {
            clocks: vec![start_ns; threads],
            busy_ns: 0.0,
        }
    }

    /// Number of virtual threads.
    pub fn threads(&self) -> usize {
        self.clocks.len()
    }

    /// Schedules a task that becomes ready at `ready_ns` and costs
    /// `cost_ns`: it runs on the earliest-available thread, starting no
    /// earlier than `ready_ns`. Returns the completion time.
    pub fn assign(&mut self, ready_ns: f64, cost_ns: f64) -> f64 {
        debug_assert!(cost_ns >= 0.0);
        let (idx, _) = self
            .clocks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty pool");
        let start = self.clocks[idx].max(ready_ns);
        let done = start + cost_ns;
        self.clocks[idx] = done;
        self.busy_ns += cost_ns;
        done
    }

    /// Time at which every scheduled task has finished.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Total task time executed (excludes waiting for arrivals and
    /// inter-task idle).
    pub fn busy(&self) -> f64 {
        self.busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_serialises() {
        let mut p = VThreadPool::new(1, 0.0);
        assert_eq!(p.assign(0.0, 10.0), 10.0);
        assert_eq!(p.assign(0.0, 10.0), 20.0);
        assert_eq!(p.makespan(), 20.0);
    }

    #[test]
    fn parallel_threads_overlap() {
        let mut p = VThreadPool::new(4, 0.0);
        for _ in 0..4 {
            assert_eq!(p.assign(0.0, 10.0), 10.0);
        }
        // fifth task queues behind one of them
        assert_eq!(p.assign(0.0, 10.0), 20.0);
        assert_eq!(p.makespan(), 20.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut p = VThreadPool::new(2, 0.0);
        assert_eq!(p.assign(100.0, 5.0), 105.0);
        // the other thread is free at 0 but the task is not ready until 100
        assert_eq!(p.assign(100.0, 5.0), 105.0);
    }

    #[test]
    fn start_offset_respected() {
        let mut p = VThreadPool::new(2, 50.0);
        assert_eq!(p.assign(0.0, 10.0), 60.0);
    }

    #[test]
    fn dynamic_assignment_balances_uneven_tasks() {
        // one long task then many short ones: the short ones should all run
        // on the other thread (dynamic balancing), not round-robin
        let mut p = VThreadPool::new(2, 0.0);
        p.assign(0.0, 100.0);
        let mut last = 0.0;
        for _ in 0..10 {
            last = p.assign(0.0, 5.0);
        }
        assert_eq!(last, 50.0, "short tasks avoid the busy thread");
        assert_eq!(p.makespan(), 100.0);
    }

    #[test]
    fn busy_sums_task_costs_only() {
        let mut p = VThreadPool::new(2, 100.0);
        p.assign(0.0, 10.0);
        p.assign(500.0, 30.0); // long wait before start must not count
        assert_eq!(p.busy(), 40.0);
    }

    #[test]
    #[should_panic]
    fn zero_threads_panics() {
        let _ = VThreadPool::new(0, 0.0);
    }
}
