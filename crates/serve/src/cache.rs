//! The serving result cache: an LRU keyed by quantized query bytes.
//!
//! Keys are `(Sq8 codes of the query, k, metric)` — the SQ8 grid
//! ([`fastann_data::quant::Sq8`]) collapses a query to one byte per
//! dimension, so an exact re-submission always maps to the same key and
//! near-duplicate queries (within a grid cell per dimension) coalesce onto
//! one entry. Because the key is deliberately lossy, every entry also
//! stores the *exact* query it was filled with, and a lookup only hits
//! when the stored query equals the incoming one bit for bit; a key
//! collision between distinct queries is counted and treated as a miss, so
//! a cache hit is always byte-identical to the cold search it replaced.
//!
//! Coherence with index rebuilds is epoch-based: the runtime bumps the
//! cache epoch when a new index is installed
//! ([`crate::ServeRuntime::install_index`]), and entries from an older
//! epoch are dropped lazily on first touch — a rebuilt index can never
//! serve a stale hit, without an eager flush pause.
//!
//! Recency is tracked with a deterministic stamp counter and a
//! `BTreeMap<stamp, key>` (not hash-iteration order), so eviction order —
//! and therefore every counter in [`CacheStats`] — replays identically
//! from the same request stream.

use std::collections::{BTreeMap, HashMap};

use fastann_data::quant::Sq8;
use fastann_data::{Distance, Neighbor};

/// Hit/miss/eviction counters, all monotonic over the cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable (includes stale and collision).
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped on touch because their epoch predated the current
    /// index.
    pub stale_drops: u64,
    /// Lookups that found a key whose stored query differed from the
    /// incoming one (quantization collision; served as a miss).
    pub collisions: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    qbytes: Vec<u8>,
    k: usize,
    metric: &'static str,
}

struct Entry {
    stamp: u64,
    epoch: u64,
    query: Vec<f32>,
    results: Vec<Neighbor>,
}

/// The LRU result cache. See the module docs for key and coherence
/// semantics.
pub struct ResultCache {
    codec: Sq8,
    capacity: usize,
    epoch: u64,
    stamp: u64,
    map: HashMap<CacheKey, Entry>,
    lru: BTreeMap<u64, CacheKey>,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, keyed through `codec`'s
    /// quantization grid. `capacity == 0` disables the cache (every lookup
    /// misses, inserts are dropped).
    pub fn new(codec: Sq8, capacity: usize) -> Self {
        Self {
            codec,
            capacity,
            epoch: 0,
            stamp: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Invalidates every cached entry by advancing the epoch; entries are
    /// dropped lazily on next touch. Called when a rebuilt index is
    /// installed.
    pub fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live entries (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up the results for `(query, k, metric)`. Returns a clone of
    /// the cached neighbours only when the entry is current-epoch and its
    /// stored query equals `query` exactly; refreshes recency on hit.
    pub fn lookup(&mut self, query: &[f32], k: usize, metric: Distance) -> Option<Vec<Neighbor>> {
        if self.capacity == 0 {
            self.stats.misses += 1;
            return None;
        }
        let key = self.key(query, k, metric);
        let Some(entry) = self.map.get(&key) else {
            self.stats.misses += 1;
            return None;
        };
        if entry.epoch != self.epoch {
            let old = self.map.remove(&key).map(|e| e.stamp);
            if let Some(stamp) = old {
                self.lru.remove(&stamp);
            }
            self.stats.stale_drops += 1;
            self.stats.misses += 1;
            return None;
        }
        if entry.query != query {
            self.stats.collisions += 1;
            self.stats.misses += 1;
            return None;
        }
        // refresh recency: move the entry to the newest stamp
        let new_stamp = self.next_stamp();
        let entry = self.map.get_mut(&key).expect("entry checked above");
        self.lru.remove(&entry.stamp);
        entry.stamp = new_stamp;
        self.lru.insert(new_stamp, key);
        self.stats.hits += 1;
        Some(entry.results.clone())
    }

    /// Stores `results` for `(query, k, metric)`, evicting the least
    /// recently used entry when full. Overwrites an existing entry for the
    /// same key (e.g. after a collision or an epoch bump).
    pub fn insert(&mut self, query: &[f32], k: usize, metric: Distance, results: Vec<Neighbor>) {
        if self.capacity == 0 {
            return;
        }
        let key = self.key(query, k, metric);
        let stamp = self.next_stamp();
        if let Some(old) = self.map.insert(
            key.clone(),
            Entry {
                stamp,
                epoch: self.epoch,
                query: query.to_vec(),
                results,
            },
        ) {
            self.lru.remove(&old.stamp);
        }
        self.lru.insert(stamp, key);
        self.stats.insertions += 1;
        while self.map.len() > self.capacity {
            let Some((&oldest, _)) = self.lru.iter().next() else {
                break;
            };
            let Some(victim) = self.lru.remove(&oldest) else {
                break;
            };
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    fn key(&self, query: &[f32], k: usize, metric: Distance) -> CacheKey {
        CacheKey {
            qbytes: self.codec.encode_query(query),
            k,
            metric: metric.name(),
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;

    fn codec() -> Sq8 {
        Sq8::encode(&synth::sift_like(200, 8, 42))
    }

    fn nb(id: u32) -> Vec<Neighbor> {
        vec![Neighbor::new(id, id as f32)]
    }

    #[test]
    fn hit_requires_exact_query_and_k_and_metric() {
        let mut c = ResultCache::new(codec(), 8);
        let q = vec![10.0; 8];
        c.insert(&q, 5, Distance::L2, nb(1));
        assert_eq!(c.lookup(&q, 5, Distance::L2), Some(nb(1)));
        assert_eq!(c.lookup(&q, 6, Distance::L2), None, "different k");
        assert_eq!(c.lookup(&q, 5, Distance::L1), None, "different metric");
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn collision_is_a_miss_never_a_wrong_answer() {
        let cdc = codec();
        let q1 = vec![10.0; 8];
        // perturb below the grid step: same quantized key, different query
        let mut q2 = q1.clone();
        q2[0] += 1e-6;
        assert_eq!(
            cdc.encode_query(&q1),
            cdc.encode_query(&q2),
            "perturbation must stay inside one grid cell for this test"
        );
        let mut c = ResultCache::new(cdc, 8);
        c.insert(&q1, 5, Distance::L2, nb(1));
        assert_eq!(c.lookup(&q2, 5, Distance::L2), None, "collision -> miss");
        assert_eq!(c.stats().collisions, 1);
        assert_eq!(c.lookup(&q1, 5, Distance::L2), Some(nb(1)));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(codec(), 2);
        let qa = vec![1.0; 8];
        let qb = vec![50.0; 8];
        let qc = vec![100.0; 8];
        c.insert(&qa, 5, Distance::L2, nb(1));
        c.insert(&qb, 5, Distance::L2, nb(2));
        // touch A so B becomes the LRU victim
        assert!(c.lookup(&qa, 5, Distance::L2).is_some());
        c.insert(&qc, 5, Distance::L2, nb(3));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(&qa, 5, Distance::L2).is_some(), "A survived");
        assert!(c.lookup(&qb, 5, Distance::L2).is_none(), "B evicted");
        assert!(c.lookup(&qc, 5, Distance::L2).is_some(), "C present");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn epoch_bump_invalidates_lazily() {
        let mut c = ResultCache::new(codec(), 8);
        let q = vec![10.0; 8];
        c.insert(&q, 5, Distance::L2, nb(1));
        c.bump_epoch();
        assert_eq!(c.len(), 1, "invalidation is lazy");
        assert_eq!(c.lookup(&q, 5, Distance::L2), None, "stale entry dropped");
        assert_eq!(c.stats().stale_drops, 1);
        assert_eq!(c.len(), 0, "touch removed it");
        // re-inserting under the new epoch serves again
        c.insert(&q, 5, Distance::L2, nb(9));
        assert_eq!(c.lookup(&q, 5, Distance::L2), Some(nb(9)));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(codec(), 0);
        let q = vec![10.0; 8];
        c.insert(&q, 5, Distance::L2, nb(1));
        assert_eq!(c.lookup(&q, 5, Distance::L2), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn overwrite_same_key_keeps_len_and_lru_consistent() {
        let mut c = ResultCache::new(codec(), 2);
        let q = vec![10.0; 8];
        c.insert(&q, 5, Distance::L2, nb(1));
        c.insert(&q, 5, Distance::L2, nb(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&q, 5, Distance::L2), Some(nb(2)));
        // the stale LRU stamp from the first insert must not evict the
        // overwritten entry later
        let qb = vec![50.0; 8];
        c.insert(&qb, 5, Distance::L2, nb(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
    }
}
