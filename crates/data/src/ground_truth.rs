//! Exact ground truth by parallel brute force, and recall evaluation.
//!
//! The paper measures accuracy as *recall*: the fraction of true k-nearest
//! neighbours present in the approximate result (Section V-D). We compute
//! exact neighbours with a rayon-parallel brute-force scan — the host-side
//! equivalent of the ground-truth files shipped with the TEXMEX corpora.

use rayon::prelude::*;

use crate::metric::Distance;
use crate::topk::{Neighbor, TopK};
use crate::vector::VectorSet;

/// Exact k-NN for every query by brute force over `data`, parallelised over
/// queries. Results are sorted by ascending distance.
///
/// # Panics
/// Panics if `data` is empty, dimensions mismatch, or `k == 0`.
pub fn brute_force(
    data: &VectorSet,
    queries: &VectorSet,
    k: usize,
    dist: Distance,
) -> Vec<Vec<Neighbor>> {
    assert!(!data.is_empty(), "brute force over empty dataset");
    assert_eq!(data.dim(), queries.dim(), "dimension mismatch");
    (0..queries.len())
        .into_par_iter()
        .map(|qi| brute_force_one(data, queries.get(qi), k, dist))
        .collect()
}

/// Exact k-NN of a single query.
pub fn brute_force_one(data: &VectorSet, query: &[f32], k: usize, dist: Distance) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for (i, row) in data.iter().enumerate() {
        top.push(Neighbor::new(i as u32, dist.eval(query, row)));
    }
    top.into_sorted()
}

/// Recall statistics over a query batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recall {
    /// Mean recall@k over queries.
    pub mean: f64,
    /// Minimum per-query recall.
    pub min: f64,
    /// Number of queries evaluated.
    pub n_queries: usize,
}

/// Computes recall@k of `approx` against exact `truth`.
///
/// For each query, recall is `|approx ∩ truth| / k` where both lists are
/// truncated to `k` entries. Matching is by id; this is the definition in
/// the paper's Section V-D.
///
/// # Panics
/// Panics if the two batches have different lengths or are empty.
pub fn recall_at_k(approx: &[Vec<Neighbor>], truth: &[Vec<Neighbor>], k: usize) -> Recall {
    assert_eq!(approx.len(), truth.len(), "result batch size mismatch");
    assert!(!truth.is_empty(), "empty batch");
    let mut sum = 0f64;
    let mut min = f64::INFINITY;
    for (a, t) in approx.iter().zip(truth) {
        let truth_ids: Vec<u32> = t.iter().take(k).map(|n| n.id).collect();
        let hit = a
            .iter()
            .take(k)
            .filter(|n| truth_ids.contains(&n.id))
            .count();
        let denom = truth_ids.len().min(k).max(1);
        let r = hit as f64 / denom as f64;
        sum += r;
        if r < min {
            min = r;
        }
    }
    Recall {
        mean: sum / truth.len() as f64,
        min,
        n_queries: truth.len(),
    }
}

/// Recall computed against plain id lists (e.g. loaded from `.ivecs`
/// ground-truth files).
pub fn recall_against_ids(approx: &[Vec<Neighbor>], truth_ids: &[Vec<u32>], k: usize) -> Recall {
    assert_eq!(approx.len(), truth_ids.len(), "result batch size mismatch");
    assert!(!truth_ids.is_empty(), "empty batch");
    let mut sum = 0f64;
    let mut min = f64::INFINITY;
    for (a, t) in approx.iter().zip(truth_ids) {
        let t: Vec<u32> = t.iter().take(k).copied().collect();
        let hit = a.iter().take(k).filter(|n| t.contains(&n.id)).count();
        let r = hit as f64 / t.len().min(k).max(1) as f64;
        sum += r;
        if r < min {
            min = r;
        }
    }
    Recall {
        mean: sum / truth_ids.len() as f64,
        min,
        n_queries: truth_ids.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn brute_force_finds_self() {
        let data = synth::sift_like(100, 8, 1);
        let res = brute_force(&data, &data, 1, Distance::L2);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r[0].id, i as u32, "nearest neighbour of a point is itself");
            assert_eq!(r[0].dist, 0.0);
        }
    }

    #[test]
    fn results_sorted_ascending() {
        let data = synth::sift_like(200, 8, 2);
        let q = synth::sift_like(5, 8, 3);
        let res = brute_force(&data, &q, 10, Distance::L2);
        for r in &res {
            assert_eq!(r.len(), 10);
            for w in r.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
        }
    }

    #[test]
    fn perfect_recall_is_one() {
        let data = synth::sift_like(100, 8, 4);
        let q = synth::sift_like(10, 8, 5);
        let gt = brute_force(&data, &q, 5, Distance::L2);
        let r = recall_at_k(&gt, &gt, 5);
        assert_eq!(r.mean, 1.0);
        assert_eq!(r.min, 1.0);
        assert_eq!(r.n_queries, 10);
    }

    #[test]
    fn recall_counts_partial_overlap() {
        let truth = vec![vec![
            Neighbor::new(0, 0.0),
            Neighbor::new(1, 1.0),
            Neighbor::new(2, 2.0),
            Neighbor::new(3, 3.0),
        ]];
        let approx = vec![vec![
            Neighbor::new(0, 0.0),
            Neighbor::new(9, 0.5),
            Neighbor::new(2, 2.0),
            Neighbor::new(8, 9.0),
        ]];
        let r = recall_at_k(&approx, &truth, 4);
        assert!((r.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_respects_k_truncation() {
        let truth = vec![vec![Neighbor::new(0, 0.0), Neighbor::new(1, 1.0)]];
        let approx = vec![vec![Neighbor::new(1, 1.0), Neighbor::new(0, 0.0)]];
        // k=1: approx top-1 is id 1, truth top-1 is id 0 -> recall 0
        let r = recall_at_k(&approx, &truth, 1);
        assert_eq!(r.mean, 0.0);
        // k=2: both present -> recall 1
        let r = recall_at_k(&approx, &truth, 2);
        assert_eq!(r.mean, 1.0);
    }

    #[test]
    fn recall_against_id_lists() {
        let approx = vec![vec![Neighbor::new(3, 0.1), Neighbor::new(5, 0.2)]];
        let truth = vec![vec![3u32, 7]];
        let r = recall_against_ids(&approx, &truth, 2);
        assert!((r.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn brute_force_one_matches_batch() {
        let data = synth::deep_like(50, 12, 6);
        let q = synth::deep_like(3, 12, 7);
        let batch = brute_force(&data, &q, 4, Distance::L2);
        for (i, expected) in batch.iter().enumerate() {
            let one = brute_force_one(&data, q.get(i), 4, Distance::L2);
            assert_eq!(&one, expected);
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_whole_dataset() {
        let data = synth::sift_like(5, 8, 8);
        let q = synth::sift_like(2, 8, 9);
        let res = brute_force(&data, &q, 50, Distance::L2);
        for r in &res {
            assert_eq!(r.len(), 5, "k > n clamps to the dataset size");
            for w in r.windows(2) {
                assert!(w[0].dist <= w[1].dist);
            }
            let mut ids: Vec<u32> = r.iter().map(|n| n.id).collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3, 4], "every point appears exactly once");
        }
        // recall of a k>n result against itself is still perfect
        let rec = recall_at_k(&res, &res, 50);
        assert_eq!(rec.mean, 1.0);
    }

    #[test]
    #[should_panic]
    fn brute_force_rejects_k_zero() {
        let data = synth::sift_like(10, 4, 10);
        let _ = brute_force(&data, &data, 0, Distance::L2);
    }

    #[test]
    fn recall_at_k_zero_is_zero_without_panicking() {
        let lists = vec![vec![Neighbor::new(0, 0.0)]];
        let r = recall_at_k(&lists, &lists, 0);
        assert_eq!(r.mean, 0.0, "k = 0 truncates both lists to nothing");
        assert_eq!(r.n_queries, 1);
        let r = recall_against_ids(&lists, &[vec![0u32]], 0);
        assert_eq!(r.mean, 0.0);
    }

    #[test]
    fn recall_with_empty_truth_list_is_zero() {
        // an empty per-query truth list (e.g. an empty partition's ground
        // truth) must not divide by zero
        let approx = vec![vec![Neighbor::new(1, 0.5)]];
        let truth: Vec<Vec<Neighbor>> = vec![vec![]];
        let r = recall_at_k(&approx, &truth, 3);
        assert_eq!(r.mean, 0.0);
        let r = recall_against_ids(&approx, &[vec![]], 3);
        assert_eq!(r.mean, 0.0);
    }

    #[test]
    fn duplicate_distances_match_by_id_not_distance() {
        // two points equidistant from the query: recall is defined over ids
        // (Section V-D), so returning the *other* tied point is a miss
        let truth = vec![vec![Neighbor::new(0, 1.0), Neighbor::new(1, 1.0)]];
        let wrong_tie = vec![vec![Neighbor::new(2, 1.0), Neighbor::new(0, 1.0)]];
        let r = recall_at_k(&wrong_tie, &truth, 2);
        assert!((r.mean - 0.5).abs() < 1e-12, "one of two tied ids matched");
        let r1 = recall_at_k(&wrong_tie, &truth, 1);
        assert_eq!(r1.mean, 0.0, "top-1 tie resolved to a different id");
    }

    #[test]
    fn brute_force_is_deterministic_under_duplicate_points() {
        // duplicated rows ⇒ duplicate distances; the id tie-break must make
        // the exact result reproducible
        let base = synth::sift_like(20, 6, 11);
        let mut data = crate::vector::VectorSet::new(6);
        for i in 0..20 {
            data.push(base.get(i));
            data.push(base.get(i)); // exact duplicate, different id
        }
        let q = synth::sift_like(4, 6, 12);
        let a = brute_force(&data, &q, 8, Distance::L2);
        let b = brute_force(&data, &q, 8, Distance::L2);
        assert_eq!(a, b);
        for r in &a {
            for w in r.windows(2) {
                assert!(
                    w[0].dist < w[1].dist || (w[0].dist == w[1].dist && w[0].id < w[1].id),
                    "ties must be ordered by id"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_batches_panic() {
        let a = vec![vec![Neighbor::new(0, 0.0)]];
        let t = vec![vec![Neighbor::new(0, 0.0)], vec![Neighbor::new(1, 0.0)]];
        let _ = recall_at_k(&a, &t, 1);
    }
}
