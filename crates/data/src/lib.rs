//! # fastann-data
//!
//! Foundation crate for the `fastann` workspace: dense vector storage,
//! distance metrics for general metric spaces, streaming top-k selection,
//! order statistics (quickselect / median-of-medians), `fvecs`/`bvecs`/`ivecs`
//! file IO, synthetic dataset generators (including an MDCGen-style
//! multidimensional cluster generator), and exact brute-force ground truth
//! with recall evaluation.
//!
//! Everything downstream — the HNSW index, the VP tree, the KD-tree baseline
//! and the distributed engine — builds on the types defined here.
//!
//! ## Quick tour
//!
//! ```
//! use fastann_data::{VectorSet, Distance, ground_truth, synth};
//!
//! // 1k SIFT-like 32-dimensional vectors plus 10 queries.
//! let data = synth::sift_like(1_000, 32, 42);
//! let queries = synth::sift_like(10, 32, 43);
//!
//! // Exact 5-NN by brute force.
//! let gt = ground_truth::brute_force(&data, &queries, 5, Distance::L2);
//! assert_eq!(gt.len(), 10);
//! assert_eq!(gt[0].len(), 5);
//! ```

#![forbid(unsafe_code)]

pub mod ground_truth;
pub mod io;
pub mod metric;
pub mod quant;
pub mod select;
pub mod stats;
pub mod synth;
pub mod topk;
pub mod vector;

pub use ground_truth::{recall_at_k, Recall};
pub use metric::Distance;
pub use stats::{dataset_stats, DatasetStats};
pub use topk::{Neighbor, TopK};
pub use vector::VectorSet;
