/root/repo/target/debug/deps/fastann_core-fb63ebc3f1718c32.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs

/root/repo/target/debug/deps/libfastann_core-fb63ebc3f1718c32.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs

/root/repo/target/debug/deps/libfastann_core-fb63ebc3f1718c32.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/local.rs crates/core/src/owner.rs crates/core/src/persist.rs crates/core/src/router.rs crates/core/src/stats.rs crates/core/src/tune.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/local.rs:
crates/core/src/owner.rs:
crates/core/src/persist.rs:
crates/core/src/router.rs:
crates/core/src/stats.rs:
crates/core/src/tune.rs:
