/root/repo/target/debug/deps/fastann-50a04eee85ce9fbe.d: src/lib.rs

/root/repo/target/debug/deps/libfastann-50a04eee85ce9fbe.rlib: src/lib.rs

/root/repo/target/debug/deps/libfastann-50a04eee85ce9fbe.rmeta: src/lib.rs

src/lib.rs:
