/root/repo/target/release/deps/fastann_vptree-39b3760b90a62653.d: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

/root/repo/target/release/deps/libfastann_vptree-39b3760b90a62653.rlib: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

/root/repo/target/release/deps/libfastann_vptree-39b3760b90a62653.rmeta: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs

crates/vptree/src/lib.rs:
crates/vptree/src/partition.rs:
crates/vptree/src/tree.rs:
crates/vptree/src/vantage.rs:
