/root/repo/target/debug/deps/simulator-705d0af9d6f6357f.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-705d0af9d6f6357f.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
