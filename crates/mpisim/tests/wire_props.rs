//! Property tests for the wire codec: everything that goes in comes back
//! out, byte-exact, including empty payloads and maximum-size headers.

use bytes::{Buf, BytesMut};
use fastann_mpisim::wire;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scalars_round_trip(
        a in 0u32..u32::MAX,
        b in 0u64..u64::MAX,
        fb in 0u32..u32::MAX,
        db in 0u64..u64::MAX,
    ) {
        // floats from raw bits: covers -0.0, infinities, NaN payloads
        let f = f32::from_bits(fb);
        let d = f64::from_bits(db);
        let mut buf = BytesMut::new();
        wire::put_u32(&mut buf, a);
        wire::put_u64(&mut buf, b);
        wire::put_f32(&mut buf, f);
        wire::put_f64(&mut buf, d);
        let mut r = buf.freeze();
        prop_assert_eq!(wire::get_u32(&mut r), a);
        prop_assert_eq!(wire::get_u64(&mut r), b);
        prop_assert_eq!(wire::get_f32(&mut r).to_bits(), f.to_bits());
        prop_assert_eq!(wire::get_f64(&mut r).to_bits(), d.to_bits());
        prop_assert!(!r.has_remaining());
    }

    #[test]
    fn byte_strings_round_trip(payload in proptest::collection::vec(0u8..u8::MAX, 0..257)) {
        let mut buf = BytesMut::new();
        wire::put_bytes(&mut buf, &payload);
        prop_assert_eq!(buf.len(), 4 + payload.len(), "4-byte header + body");
        let mut r = buf.freeze();
        prop_assert_eq!(&wire::get_bytes(&mut r)[..], &payload[..]);
        prop_assert!(!r.has_remaining());
    }

    #[test]
    fn u32_slices_round_trip(v in proptest::collection::vec(0u32..u32::MAX, 0..64)) {
        let mut buf = BytesMut::new();
        wire::put_u32_slice(&mut buf, &v);
        let mut r = buf.freeze();
        prop_assert_eq!(wire::get_u32_vec(&mut r), v);
        prop_assert!(!r.has_remaining());
    }

    #[test]
    fn f32_slices_round_trip(bits in proptest::collection::vec(0u32..u32::MAX, 0..64)) {
        let v: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let mut buf = BytesMut::new();
        wire::put_f32_slice(&mut buf, &v);
        let mut r = buf.freeze();
        let back = wire::get_f32_vec(&mut r);
        prop_assert_eq!(back.len(), v.len());
        for (x, y) in back.iter().zip(&v) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert!(!r.has_remaining());
    }

    #[test]
    fn neighbors_round_trip(
        pairs in proptest::collection::vec((0u32..u32::MAX, 0.0f32..1e9), 0..48)
    ) {
        let mut buf = BytesMut::new();
        wire::put_neighbors(&mut buf, &pairs);
        prop_assert_eq!(buf.len(), 4 + 8 * pairs.len());
        let mut r = buf.freeze();
        prop_assert_eq!(wire::get_neighbors(&mut r), pairs);
        prop_assert!(!r.has_remaining());
    }

    #[test]
    fn mixed_composite_messages_round_trip(
        qid in 0u32..u32::MAX,
        part in 0u32..4096,
        q in proptest::collection::vec(-1e6f32..1e6, 0..32),
        tail in proptest::collection::vec(0u8..u8::MAX, 0..32),
    ) {
        // shape of an engine work item followed by opaque trailing bytes
        let mut buf = BytesMut::new();
        wire::put_u32(&mut buf, qid);
        wire::put_u32(&mut buf, part);
        wire::put_f32_slice(&mut buf, &q);
        wire::put_bytes(&mut buf, &tail);
        let mut r = buf.freeze();
        prop_assert_eq!(wire::get_u32(&mut r), qid);
        prop_assert_eq!(wire::get_u32(&mut r), part);
        prop_assert_eq!(wire::get_f32_vec(&mut r), q);
        prop_assert_eq!(&wire::get_bytes(&mut r)[..], &tail[..]);
        prop_assert!(!r.has_remaining());
    }
}

#[test]
fn empty_payloads_round_trip() {
    let mut buf = BytesMut::new();
    wire::put_bytes(&mut buf, &[]);
    wire::put_f32_slice(&mut buf, &[]);
    wire::put_u32_slice(&mut buf, &[]);
    wire::put_neighbors(&mut buf, &[]);
    assert_eq!(
        buf.len(),
        16,
        "an empty payload is exactly its 4-byte header"
    );
    let mut r = buf.freeze();
    assert!(wire::get_bytes(&mut r).is_empty());
    assert!(wire::get_f32_vec(&mut r).is_empty());
    assert!(wire::get_u32_vec(&mut r).is_empty());
    assert!(wire::get_neighbors(&mut r).is_empty());
    assert!(!r.has_remaining());
}

#[test]
fn max_value_headers_round_trip() {
    // the length prefix is a u32; its wire form must survive the extremes
    let mut buf = BytesMut::new();
    wire::put_u32(&mut buf, u32::MAX);
    wire::put_u32(&mut buf, 0);
    wire::put_u64(&mut buf, u64::MAX);
    let mut r = buf.freeze();
    assert_eq!(wire::get_u32(&mut r), u32::MAX);
    assert_eq!(wire::get_u32(&mut r), 0);
    assert_eq!(wire::get_u64(&mut r), u64::MAX);
}

#[test]
fn large_payload_header_is_exact() {
    // a megabyte-scale payload: header must carry the exact byte count
    let payload = vec![0xA5u8; 1 << 20];
    let mut buf = BytesMut::new();
    wire::put_bytes(&mut buf, &payload);
    let mut r = buf.freeze();
    let header = wire::get_u32(&mut r);
    assert_eq!(header, 1 << 20);
    assert_eq!(r.len(), 1 << 20);
    assert!(r.iter().all(|&b| b == 0xA5));
}
