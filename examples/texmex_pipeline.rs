//! File-based pipeline in the TEXMEX formats the real corpora ship in:
//! write a base set as `.fvecs`, load it back, auto-tune the routing for a
//! recall target, search, and emit the results as `.ivecs` (the ground-
//! truth format). Swap the synthetic writer for your downloaded
//! `sift_base.fvecs` to run against the real thing.
//!
//! ```sh
//! cargo run --release --example texmex_pipeline
//! ```

use fastann::core::{tune_routing, DistIndex, EngineConfig, SearchOptions, SearchRequest};
use fastann::data::{dataset_stats, io, synth, Distance};
use fastann::hnsw::HnswConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("fastann_texmex_demo");
    std::fs::create_dir_all(&dir)?;
    let base_path = dir.join("base.fvecs");
    let query_path = dir.join("query.fvecs");
    let out_path = dir.join("results.ivecs");

    // 1. Materialise a synthetic corpus on disk in the interchange format.
    io::write_fvecs(&base_path, &synth::sift_like(25_000, 64, 99))?;
    io::write_fvecs(
        &query_path,
        &synth::queries_near(&synth::sift_like(25_000, 64, 99), 200, 0.02, 100),
    )?;

    // 2. Load (cap at 25k rows; real files can be partially loaded too).
    let base = io::read_fvecs(&base_path, Some(25_000))?;
    let queries = io::read_fvecs(&query_path, None)?;
    let s = dataset_stats(&base, Distance::L2, 150, 101);
    println!(
        "loaded {} x {}d base vectors (intrinsic dim ~{:.1}, NN contrast {:.2})",
        base.len(),
        base.dim(),
        s.intrinsic_dim,
        s.contrast
    );

    // 3. Build and auto-tune for recall >= 0.9 on a held-out slice.
    let index = DistIndex::build(
        &base,
        EngineConfig::new(16, 4).with_hnsw(HnswConfig::with_m(16).ef_construction(60)),
    );
    let tune_sample = synth::queries_near(&base, 50, 0.02, 102);
    let opts = SearchOptions::new(10).with_ef(96);
    let outcome = tune_routing(&index, &base, &tune_sample, &opts, 0.9);
    println!(
        "tuned routing: margin {:.2}, <= {} partitions/query -> recall {:.3} (target met: {})",
        outcome.route.margin_frac, outcome.route.max_partitions, outcome.recall, outcome.met_target
    );

    // 4. Run the real batch with the tuned policy and persist the results.
    let tuned = index.with_route(outcome.route);
    let report = SearchRequest::new(&tuned, &queries).opts(opts).run();
    let id_lists: Vec<Vec<u32>> = report
        .results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    let mut f = std::io::BufWriter::new(std::fs::File::create(&out_path)?);
    io::write_ivecs_to(&mut f, &id_lists)?;
    println!(
        "answered {} queries in {:.2} virtual ms; neighbour ids written to {}",
        queries.len(),
        report.total_ns / 1e6,
        out_path.display()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
