//! Virtual thread pools: modelled intra-node OpenMP-style workers — plus
//! the seeded schedule perturbation the race detector drives through them.
//!
//! The paper's worker processes spawn a fixed set of OpenMP threads; queries
//! arriving at a compute node are picked up by whichever thread is free
//! (Algorithm 4), which balances load *within* a node. A [`VThreadPool`]
//! models exactly that queueing behaviour in virtual time: each incoming
//! task is assigned to the earliest-available virtual thread, yielding the
//! task's completion timestamp.

/// Seeded scheduler perturbation, the knob `fastann-check race` turns.
///
/// A perturbed run must produce *identical observable results* for a
/// race-free program — otherwise every divergence the race detector reports
/// would be a false positive. The three perturbations are therefore chosen
/// to be virtual-time-neutral for correct programs:
///
/// * **randomized ready-queue pops** — when a wildcard-source receive could
///   match queued messages from several senders, the winner is chosen by a
///   seeded hash instead of mailbox arrival order (per-sender FIFO is
///   preserved, mirroring MPI's non-overtaking guarantee). A program whose
///   virtual-time folding depends on that order — the PR 1 wildcard-receive
///   bug class — diverges; one that drains per source in a fixed order does
///   not.
/// * **biased stalls** — seeded *real-time* sleeps injected at receive
///   boundaries. They reshuffle which messages are physically enqueued when
///   a mailbox is inspected without ever touching a virtual clock.
/// * **tie-break shuffling** in [`VThreadPool::assign`] — when several
///   virtual threads are free at exactly the same instant the pick is
///   hashed instead of lowest-index. The chosen clock value is identical by
///   construction, so this perturbs the schedule shape, never the result.
///
/// The zero seed is the identity: `SchedPerturb::none()` runs the exact
/// deterministic schedule every test has always used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedPerturb {
    seed: u64,
}

impl SchedPerturb {
    /// The identity perturbation (deterministic baseline schedule).
    pub fn none() -> Self {
        Self { seed: 0 }
    }

    /// A perturbation driven by `seed`; `0` is the identity.
    pub fn seeded(seed: u64) -> Self {
        Self { seed }
    }

    /// `true` when this perturbation actually changes anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.seed != 0
    }

    /// splitmix64 of the seed and a caller-supplied salt.
    #[inline]
    fn hash(&self, salt: u64) -> u64 {
        let mut x = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Picks one of `n` equivalent choices (`0` when inactive or `n <= 1`).
    #[inline]
    pub fn pick(&self, salt: u64, n: usize) -> usize {
        if !self.is_active() || n <= 1 {
            return 0;
        }
        (self.hash(salt) % n as u64) as usize
    }

    /// Real-time stall to inject at a receive boundary, if any: roughly one
    /// receive in four sleeps up to ~127 µs. Virtual clocks never see it.
    #[inline]
    pub fn stall_micros(&self, salt: u64) -> Option<u64> {
        if !self.is_active() {
            return None;
        }
        let h = self.hash(salt ^ 0x5741_4954); // "WAIT"
        (h & 3 == 0).then_some(h >> 2 & 0x7f)
    }
}

/// A pool of `T` virtual worker threads, each with its own availability
/// clock.
#[derive(Clone, Debug)]
pub struct VThreadPool {
    clocks: Vec<f64>,
    busy_ns: f64,
    perturb: SchedPerturb,
    assigns: u64,
}

impl VThreadPool {
    /// Creates a pool of `threads` workers all available from `start_ns`.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize, start_ns: f64) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        Self {
            clocks: vec![start_ns; threads],
            busy_ns: 0.0,
            perturb: SchedPerturb::none(),
            assigns: 0,
        }
    }

    /// Installs a schedule perturbation: ready-queue pops with tied
    /// availability clocks are hashed instead of lowest-index. The assigned
    /// completion times are identical either way (ties share one clock
    /// value), so this shuffles schedule shape without touching results.
    pub fn set_perturb(&mut self, perturb: SchedPerturb) {
        self.perturb = perturb;
    }

    /// Number of virtual threads.
    pub fn threads(&self) -> usize {
        self.clocks.len()
    }

    /// Schedules a task that becomes ready at `ready_ns` and costs
    /// `cost_ns`: it runs on the earliest-available thread, starting no
    /// earlier than `ready_ns`. Returns the completion time.
    pub fn assign(&mut self, ready_ns: f64, cost_ns: f64) -> f64 {
        debug_assert!(cost_ns >= 0.0);
        let (mut idx, min_clock) = self
            .clocks
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty pool");
        if self.perturb.is_active() {
            let tied: Vec<usize> = (0..self.clocks.len())
                .filter(|&i| self.clocks[i] == min_clock)
                .collect();
            idx = tied[self.perturb.pick(self.assigns, tied.len())];
        }
        self.assigns += 1;
        let start = self.clocks[idx].max(ready_ns);
        let done = start + cost_ns;
        self.clocks[idx] = done;
        self.busy_ns += cost_ns;
        done
    }

    /// Time at which every scheduled task has finished.
    pub fn makespan(&self) -> f64 {
        self.clocks.iter().copied().fold(0.0, f64::max)
    }

    /// Total task time executed (excludes waiting for arrivals and
    /// inter-task idle).
    pub fn busy(&self) -> f64 {
        self.busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_serialises() {
        let mut p = VThreadPool::new(1, 0.0);
        assert_eq!(p.assign(0.0, 10.0), 10.0);
        assert_eq!(p.assign(0.0, 10.0), 20.0);
        assert_eq!(p.makespan(), 20.0);
    }

    #[test]
    fn parallel_threads_overlap() {
        let mut p = VThreadPool::new(4, 0.0);
        for _ in 0..4 {
            assert_eq!(p.assign(0.0, 10.0), 10.0);
        }
        // fifth task queues behind one of them
        assert_eq!(p.assign(0.0, 10.0), 20.0);
        assert_eq!(p.makespan(), 20.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut p = VThreadPool::new(2, 0.0);
        assert_eq!(p.assign(100.0, 5.0), 105.0);
        // the other thread is free at 0 but the task is not ready until 100
        assert_eq!(p.assign(100.0, 5.0), 105.0);
    }

    #[test]
    fn start_offset_respected() {
        let mut p = VThreadPool::new(2, 50.0);
        assert_eq!(p.assign(0.0, 10.0), 60.0);
    }

    #[test]
    fn dynamic_assignment_balances_uneven_tasks() {
        // one long task then many short ones: the short ones should all run
        // on the other thread (dynamic balancing), not round-robin
        let mut p = VThreadPool::new(2, 0.0);
        p.assign(0.0, 100.0);
        let mut last = 0.0;
        for _ in 0..10 {
            last = p.assign(0.0, 5.0);
        }
        assert_eq!(last, 50.0, "short tasks avoid the busy thread");
        assert_eq!(p.makespan(), 100.0);
    }

    #[test]
    fn busy_sums_task_costs_only() {
        let mut p = VThreadPool::new(2, 100.0);
        p.assign(0.0, 10.0);
        p.assign(500.0, 30.0); // long wait before start must not count
        assert_eq!(p.busy(), 40.0);
    }

    #[test]
    #[should_panic]
    fn zero_threads_panics() {
        let _ = VThreadPool::new(0, 0.0);
    }

    #[test]
    fn zero_seed_perturbation_is_identity() {
        let p = SchedPerturb::none();
        assert!(!p.is_active());
        assert_eq!(p.pick(123, 8), 0);
        assert_eq!(p.stall_micros(5), None);
        assert_eq!(SchedPerturb::seeded(0), SchedPerturb::none());
    }

    #[test]
    fn perturbed_pick_is_deterministic_and_in_range() {
        let p = SchedPerturb::seeded(99);
        for salt in 0..64 {
            let a = p.pick(salt, 5);
            assert_eq!(a, p.pick(salt, 5), "same salt must pick same index");
            assert!(a < 5);
        }
        // different salts spread across the choices
        let distinct: std::collections::HashSet<usize> =
            (0..64).map(|salt| p.pick(salt, 5)).collect();
        assert!(distinct.len() > 1, "perturbation never varies its pick");
    }

    #[test]
    fn perturbed_pool_keeps_completion_times() {
        // tie-break shuffling must not change any assigned completion time
        let mut base = VThreadPool::new(4, 0.0);
        let mut pert = VThreadPool::new(4, 0.0);
        pert.set_perturb(SchedPerturb::seeded(7));
        for i in 0..32 {
            let (ready, cost) = ((i % 5) as f64 * 10.0, (i % 3) as f64 * 7.0);
            assert_eq!(base.assign(ready, cost), pert.assign(ready, cost));
        }
        assert_eq!(base.makespan(), pert.makespan());
        assert_eq!(base.busy(), pert.busy());
    }
}
