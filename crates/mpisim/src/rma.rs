//! One-sided communication: RMA windows with `Get_accumulate` semantics.
//!
//! Models the paper's Section IV-C1: the master exposes a window of result
//! slots (`MPI_Win_create`), workers open a shared-mode passive epoch
//! (`MPI_Win_lock(MPI_LOCK_SHARED)`) and deposit local k-NN results with
//! atomic read-modify-write operations (`MPI_Get_accumulate`). The defining
//! property — and the reason the optimisation removes the master-side
//! bottleneck — is that **only the origin pays CPU time**; the target's
//! clock is untouched. The target later synchronises to the latest slot
//! arrival time before reading ([`Window::owner_sync`]).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::comm::Comm;
use crate::rank::Rank;

struct Slot<T> {
    value: T,
    last_arrival: f64,
}

type Slots<T> = Arc<Vec<Mutex<Slot<T>>>>;

/// A window of `T` slots owned by one rank, writable by every member of the
/// creating communicator via atomic accumulate operations.
pub struct Window<T> {
    owner: usize,
    slots: Slots<T>,
}

impl<T> Clone for Window<T> {
    fn clone(&self) -> Self {
        Self {
            owner: self.owner,
            slots: Arc::clone(&self.slots),
        }
    }
}

impl<T: Send + Sync + 'static> Window<T> {
    /// Collective creation over `comm` (every member must call). The member
    /// with index `owner_idx` allocates `n_slots` slots initialised with
    /// `init(slot_index)`; everyone receives a handle.
    pub fn create(
        rank: &mut Rank,
        comm: &Comm,
        owner_idx: usize,
        n_slots: usize,
        init: impl Fn(usize) -> T,
    ) -> Window<T> {
        let me = comm.my_index(rank);
        let owner_rank = comm.ranks()[owner_idx];
        let key = if me == owner_idx {
            let slots: Slots<T> = Arc::new(
                (0..n_slots)
                    .map(|i| {
                        Mutex::new(Slot {
                            value: init(i),
                            last_arrival: 0.0,
                        })
                    })
                    .collect(),
            );
            let key = rank.registry_put(Box::new(slots));
            let mut b = bytes::BytesMut::with_capacity(8);
            crate::wire::put_u64(&mut b, key);
            comm.bcast(rank, owner_idx, Some(b.freeze()))
        } else {
            comm.bcast(rank, owner_idx, None)
        };
        let mut key = key;
        let key = crate::wire::get_u64(&mut key);
        let any = rank.registry_get(key);
        let slots = any
            .downcast::<Slots<T>>()
            .unwrap_or_else(|_| panic!("window registry type mismatch"));
        Window {
            owner: owner_rank,
            slots: Slots::clone(&slots),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the window has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Global rank owning the memory.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// Origin-side atomic read-modify-write of `slot` (models
    /// `MPI_Get_accumulate` under a shared lock). `payload_bytes` sizes the
    /// transfer for the network model. Only the **origin's** clock advances;
    /// the data is considered applied at the target at
    /// `origin_now + α + bytes·β`.
    pub fn accumulate(
        &self,
        rank: &mut Rank,
        slot: usize,
        payload_bytes: usize,
        f: impl FnOnce(&mut T),
    ) {
        let (rma_overhead, xfer) = {
            let cfg = &rank.shared.cfg;
            (
                cfg.net.rma_overhead_ns,
                cfg.net
                    .xfer_ns(&cfg.topology, rank.rank(), self.owner, payload_bytes),
            )
        };
        rank.clock += rma_overhead;
        rank.stats.rma_cpu_ns += rma_overhead;
        rank.stats.rma_ops += 1;
        let arrival = rank.clock + xfer;
        let mut guard = self.slots[slot].lock();
        f(&mut guard.value);
        if arrival > guard.last_arrival {
            guard.last_arrival = arrival;
        }
    }

    /// Like [`Window::accumulate`], but issued by a *virtual worker thread*
    /// at virtual time `at_time` (e.g. a [`crate::VThreadPool`] completion):
    /// the rank's progress clock is untouched and the update lands at the
    /// target at `at_time + rma_overhead + α + bytes·β`.
    pub fn accumulate_at(
        &self,
        rank: &mut Rank,
        slot: usize,
        payload_bytes: usize,
        at_time: f64,
        f: impl FnOnce(&mut T),
    ) {
        let (rma_overhead, xfer) = {
            let cfg = &rank.shared.cfg;
            (
                cfg.net.rma_overhead_ns,
                cfg.net
                    .xfer_ns(&cfg.topology, rank.rank(), self.owner, payload_bytes),
            )
        };
        rank.stats.rma_cpu_ns += rma_overhead;
        rank.stats.rma_ops += 1;
        let arrival = at_time.max(0.0) + rma_overhead + xfer;
        let mut guard = self.slots[slot].lock();
        f(&mut guard.value);
        if arrival > guard.last_arrival {
            guard.last_arrival = arrival;
        }
    }

    /// Owner-side read of one slot (no synchronisation — pair with
    /// [`Window::owner_sync`] after remote writers are known to be done).
    pub fn read<R>(&self, slot: usize, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.slots[slot].lock();
        f(&guard.value)
    }

    /// Latest modelled arrival time over all slots.
    pub fn max_arrival(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.lock().last_arrival)
            .fold(0.0, f64::max)
    }

    /// Advances the owner's clock past every deposited update — the moment
    /// all one-sided traffic has landed. Call once remote writers have
    /// signalled completion (e.g. via point-to-point "done" messages).
    pub fn owner_sync(&self, rank: &mut Rank) {
        assert_eq!(rank.rank(), self.owner, "owner_sync called by non-owner");
        let t = self.max_arrival();
        if t > rank.clock {
            rank.stats.wait_ns += t - rank.clock;
            rank.clock = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, SimConfig};
    use crate::ReduceOp;

    #[test]
    fn accumulate_merges_from_all_workers() {
        let out = Cluster::new(SimConfig::new(5)).run(|rank| {
            let comm = rank.world();
            let win: Window<Vec<u32>> = Window::create(rank, &comm, 0, 3, |_| Vec::new());
            if rank.rank() != 0 {
                let r = rank.rank() as u32;
                win.accumulate(rank, (r as usize - 1) % 3, 8, |v| v.push(r));
                // signal done
                rank.send_bytes(0, 99, bytes::Bytes::new());
                0
            } else {
                for _ in 0..4 {
                    let _ = rank.recv(None, Some(99));
                }
                win.owner_sync(rank);
                let mut total = 0u32;
                for s in 0..3 {
                    total += win.read(s, |v| v.iter().sum::<u32>());
                }
                total
            }
        });
        assert_eq!(out[0], 1 + 2 + 3 + 4);
    }

    #[test]
    fn target_cpu_not_charged_by_rma() {
        let out = Cluster::new(SimConfig::new(2)).run(|rank| {
            let comm = rank.world();
            let win: Window<u64> = Window::create(rank, &comm, 0, 1, |_| 0);
            if rank.rank() == 1 {
                for _ in 0..100 {
                    win.accumulate(rank, 0, 8, |v| *v += 1);
                }
                rank.send_bytes(0, 1, bytes::Bytes::new());
                rank.stats().rma_ops
            } else {
                let before = rank.stats().recv_cpu_ns;
                let _ = rank.recv(None, Some(1));
                let after = rank.stats().recv_cpu_ns;
                win.owner_sync(rank);
                assert_eq!(win.read(0, |v| *v), 100);
                // the master paid for exactly ONE two-sided receive (the
                // done signal), not for the 100 RMA deposits
                let paid = after - before;
                assert!(paid <= 251.0, "master paid {paid} ns of recv CPU");
                0
            }
        });
        assert_eq!(out[1], 100);
    }

    #[test]
    fn owner_sync_advances_clock_to_arrivals() {
        let out = Cluster::new(SimConfig::new(2)).run(|rank| {
            let comm = rank.world();
            let win: Window<u64> = Window::create(rank, &comm, 0, 1, |_| 0);
            if rank.rank() == 1 {
                rank.charge(5_000_000.0); // origin is far in virtual future
                win.accumulate(rank, 0, 8, |v| *v = 42);
                rank.send_bytes(0, 1, bytes::Bytes::new());
                0.0
            } else {
                let _ = rank.recv(None, Some(1));
                win.owner_sync(rank);
                rank.now()
            }
        });
        assert!(
            out[0] > 5_000_000.0,
            "owner clock {} must pass the deposit time",
            out[0]
        );
    }

    #[test]
    fn window_usable_alongside_collectives() {
        let out = Cluster::new(SimConfig::new(3)).run(|rank| {
            let comm = rank.world();
            let win: Window<f64> = Window::create(rank, &comm, 0, 1, |_| 0.0);
            win.accumulate(rank, 0, 8, |v| *v += 1.0);
            comm.barrier(rank);
            let total = comm.allreduce_f64(rank, 0.0, ReduceOp::Sum);
            if rank.rank() == 0 {
                win.owner_sync(rank);
                win.read(0, |v| *v) + total
            } else {
                total
            }
        });
        assert_eq!(out[0], 3.0);
    }

    #[test]
    #[should_panic]
    fn non_owner_sync_panics() {
        Cluster::new(SimConfig::new(2)).run(|rank| {
            let comm = rank.world();
            let win: Window<u64> = Window::create(rank, &comm, 0, 1, |_| 0);
            if rank.rank() == 1 {
                win.owner_sync(rank);
            }
        });
    }
}
