#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the workspace root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> fastann-check lint"
cargo run -q -p fastann-check -- lint

echo "==> invariant validators are exercised"
for crate in hnsw vptree mpisim; do
    if ! grep -rq "fn validator_" "crates/$crate/src"; then
        echo "no validator_* test exercises crates/$crate" >&2
        exit 1
    fi
done

echo "==> schedule-perturbation race smoke (K=8)"
cargo run -q -p fastann-check -- race --k 8

echo "CI green."
