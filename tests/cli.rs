//! End-to-end test of the `fastann` command-line binary: build → search →
//! ground truth → eval, all through the TEXMEX file formats.

use std::process::Command;

fn fastann() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fastann"))
}

fn write_fvecs(path: &std::path::Path, data: &fastann::data::VectorSet) {
    fastann::data::io::write_fvecs(path, data).expect("write fvecs");
}

#[test]
fn cli_full_pipeline() {
    let dir = std::env::temp_dir().join(format!("fastann_cli_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.fvecs");
    let queries = dir.join("q.fvecs");
    let idx = dir.join("x.idx");
    let approx = dir.join("approx.ivecs");
    let truth = dir.join("truth.ivecs");

    let data = fastann::data::synth::sift_like(2_000, 12, 501);
    write_fvecs(&base, &data);
    write_fvecs(
        &queries,
        &fastann::data::synth::queries_near(&data, 30, 0.02, 502),
    );

    let ok = |mut c: Command| {
        let out = c.output().expect("spawn fastann CLI");
        assert!(
            out.status.success(),
            "command failed: {}\n{}",
            String::from_utf8_lossy(&out.stderr),
            String::from_utf8_lossy(&out.stdout)
        );
        out
    };

    let mut c = fastann();
    c.args(["build", base.to_str().unwrap(), idx.to_str().unwrap()])
        .args(["--cores", "8", "--per-node", "2", "--m", "8", "--efc", "40"]);
    ok(c);
    assert!(idx.exists(), "index file written");

    let mut c = fastann();
    c.args([
        "search",
        idx.to_str().unwrap(),
        queries.to_str().unwrap(),
        approx.to_str().unwrap(),
    ])
    .args(["--k", "5", "--ef", "64"]);
    ok(c);

    let mut c = fastann();
    c.args([
        "gt",
        base.to_str().unwrap(),
        queries.to_str().unwrap(),
        truth.to_str().unwrap(),
    ])
    .args(["--k", "5"]);
    ok(c);

    let mut c = fastann();
    c.args([
        "eval",
        approx.to_str().unwrap(),
        truth.to_str().unwrap(),
        "--k",
        "5",
    ]);
    let out = ok(c);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let recall: f64 = stdout
        .split("mean ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("cannot parse recall from: {stdout}"));
    assert!(recall > 0.5, "CLI pipeline recall too low: {recall}");

    // stats smoke test
    let mut c = fastann();
    c.args(["stats", base.to_str().unwrap(), "--sample", "50"]);
    let out = ok(c);
    assert!(String::from_utf8_lossy(&out.stdout).contains("intrinsic dim"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_unknown_command() {
    let out = fastann().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn cli_usage_on_no_args() {
    let out = fastann().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
