//! Integration tests of the virtual-time model: physical knobs (network
//! parameters, cost model, topology) must move the reported times in the
//! physically expected directions.

use fastann::core::{DistIndex, EngineConfig, SearchOptions, SearchRequest};
use fastann::data::synth;
use fastann::hnsw::HnswConfig;
use fastann::mpisim::{CostModel, NetModel};

fn base_cfg(seed: u64) -> EngineConfig {
    EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
        .with_seed(seed)
}

#[test]
fn slower_network_means_slower_queries() {
    let data = synth::sift_like(3_000, 16, 301);
    let queries = synth::queries_near(&data, 30, 0.02, 302);

    let fast = DistIndex::build(&data, base_cfg(301));
    let slow_net = NetModel {
        alpha_inter_ns: 50_000.0, // 50 µs latency interconnect
        beta_inter_ns_per_byte: 1.0,
        ..NetModel::default()
    };
    let mut slow_cfg = base_cfg(301);
    slow_cfg.net = slow_net;
    let slow = DistIndex::build(&data, slow_cfg);

    let rf = SearchRequest::new(&fast, &queries)
        .opts(SearchOptions::new(10))
        .run();
    let rs = SearchRequest::new(&slow, &queries)
        .opts(SearchOptions::new(10))
        .run();
    assert_eq!(
        rf.results, rs.results,
        "network speed must not change answers"
    );
    assert!(
        rs.total_ns > rf.total_ns,
        "slow net {:.0} should exceed fast net {:.0}",
        rs.total_ns,
        rf.total_ns
    );
}

#[test]
fn pricier_compute_means_slower_queries() {
    let data = synth::sift_like(3_000, 16, 303);
    let queries = synth::queries_near(&data, 30, 0.02, 304);

    let cheap = DistIndex::build(&data, base_cfg(303));
    let mut costly_cfg = base_cfg(303);
    costly_cfg.cost = CostModel {
        base_ns: 80.0,
        per_dim_ns: 1.0,
    };
    let costly = DistIndex::build(&data, costly_cfg);

    let rc = SearchRequest::new(&cheap, &queries)
        .opts(SearchOptions::new(10))
        .run();
    let rx = SearchRequest::new(&costly, &queries)
        .opts(SearchOptions::new(10))
        .run();
    assert_eq!(rc.results, rx.results);
    assert!(rx.total_ns > rc.total_ns);
    assert!(rx.node_busy_ns.iter().sum::<f64>() > rc.node_busy_ns.iter().sum::<f64>());
}

#[test]
fn build_times_scale_down_with_more_cores() {
    // Table II's trend as an invariant: HNSW construction virtual time
    // decreases when the same data is split over more partitions.
    let data = synth::sift_like(6_000, 16, 305);
    let t4 = DistIndex::build(&data, {
        let mut c = base_cfg(305);
        c.n_cores = 4;
        c.cores_per_node = 2;
        c
    });
    let t16 = DistIndex::build(&data, {
        let mut c = base_cfg(305);
        c.n_cores = 16;
        c.cores_per_node = 2;
        c
    });
    assert!(
        t16.build_stats.hnsw_ns < t4.build_stats.hnsw_ns,
        "HNSW phase must shrink: {:.0} vs {:.0}",
        t16.build_stats.hnsw_ns,
        t4.build_stats.hnsw_ns
    );
}

#[test]
fn more_queries_take_longer() {
    let data = synth::sift_like(3_000, 16, 307);
    let q_small = synth::queries_near(&data, 10, 0.02, 308);
    let q_large = synth::queries_near(&data, 200, 0.02, 308);
    let index = DistIndex::build(&data, base_cfg(307));
    let small = SearchRequest::new(&index, &q_small)
        .opts(SearchOptions::new(10))
        .run();
    let large = SearchRequest::new(&index, &q_large)
        .opts(SearchOptions::new(10))
        .run();
    assert!(large.total_ns > small.total_ns);
    // throughput should not degrade drastically with batch size
    assert!(large.throughput_qps() > small.throughput_qps() * 0.5);
}

#[test]
fn virtual_times_are_independent_of_host_load() {
    // Two identical runs must produce close virtual totals (the model is
    // counted work + modelled messages, not wall time). The only
    // nondeterminism is the order in which simultaneously queued messages
    // are received, which permutes the `max(clock, arrival) + overhead`
    // fold at the receivers — bounded by (#messages × recv overhead), a few
    // microseconds here, exactly as in a real MPI run. Results must be
    // identical; times must agree within that bound.
    let data = synth::sift_like(2_000, 16, 309);
    let queries = synth::queries_near(&data, 20, 0.02, 310);
    let index = DistIndex::build(&data, base_cfg(309));
    let a = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10))
        .run();
    let b = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10))
        .run();
    assert_eq!(a.results, b.results);
    let bound_ns = 20_000.0; // ~80 messages x 250 ns, with slack
    assert!(
        (a.total_ns - b.total_ns).abs() < bound_ns,
        "virtual time varied by {:.1} µs between runs",
        (a.total_ns - b.total_ns).abs() / 1e3
    );
}

#[test]
fn network_jitter_preserves_results_and_bounds_slowdown() {
    let data = synth::sift_like(2_500, 16, 311);
    let queries = synth::queries_near(&data, 25, 0.02, 312);

    let calm = DistIndex::build(&data, base_cfg(311));
    let mut jit_cfg = base_cfg(311);
    jit_cfg.net = NetModel {
        jitter_frac: 0.5,
        ..NetModel::default()
    };
    let jittery = DistIndex::build(&data, jit_cfg);

    let rc = SearchRequest::new(&calm, &queries)
        .opts(SearchOptions::new(10))
        .run();
    let rj = SearchRequest::new(&jittery, &queries)
        .opts(SearchOptions::new(10))
        .run();
    assert_eq!(rc.results, rj.results, "jitter must not change answers");
    // 50% per-message jitter cannot slow a latency-tolerant pipeline by
    // more than ~50% + scheduling slack
    assert!(
        rj.total_ns <= rc.total_ns * 1.8,
        "{} vs {}",
        rj.total_ns,
        rc.total_ns
    );
    assert!(rj.total_ns >= rc.total_ns * 0.9);
}
