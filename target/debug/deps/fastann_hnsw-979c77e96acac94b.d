/root/repo/target/debug/deps/fastann_hnsw-979c77e96acac94b.d: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

/root/repo/target/debug/deps/fastann_hnsw-979c77e96acac94b: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

crates/hnsw/src/lib.rs:
crates/hnsw/src/config.rs:
crates/hnsw/src/graph.rs:
crates/hnsw/src/index.rs:
crates/hnsw/src/scratch.rs:
crates/hnsw/src/select.rs:
crates/hnsw/src/serialize.rs:
