/root/repo/target/debug/examples/timeline-a3e773732cf79b2c.d: examples/timeline.rs Cargo.toml

/root/repo/target/debug/examples/libtimeline-a3e773732cf79b2c.rmeta: examples/timeline.rs Cargo.toml

examples/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
