//! `search-batch-variant` and `quantized-traversal`: the API-surface
//! rules.
//!
//! The five legacy `search_batch*` entry points were deleted in favour
//! of the `SearchRequest` builder; a new public variant of the family
//! must not appear (un-deprecated — the multiple-owner algorithm keeps
//! its allowlisted name). In `crates/hnsw/src`,
//! traversal code (`greedy_step` / `search_layer`) must dispatch every
//! distance through `QueryDist`, and the raw exact kernel may not be
//! called anywhere in the crate — the re-rank stage is the one
//! sanctioned consumer and carries the allowlist entry.

use crate::engine::FileCtx;
use crate::lint::{Violation, RULE_QUANT, RULE_SEARCH_BATCH};

/// HNSW traversal functions whose bodies are under `QueryDist`-only
/// dispatch.
const TRAVERSAL_FNS: [&str; 2] = ["greedy_step", "search_layer"];

/// Runs both rules over one file.
pub fn check(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let is_hnsw = ctx.rel.starts_with("crates/hnsw/src");
    for ci in 0..ctx.n() {
        if ctx.in_test(ci) {
            continue;
        }
        // pub fn search_batch* without a #[deprecated] attribute
        if ctx.is_ident(ci, "pub")
            && ctx.is_ident(ci + 1, "fn")
            && ctx
                .ident(ci + 2)
                .is_some_and(|n| n.starts_with("search_batch"))
        {
            let mut deprecated = false;
            ctx.walk_back_attrs(ci, |lo, hi| {
                if (lo..hi).any(|cj| ctx.is_ident(cj, "deprecated")) {
                    deprecated = true;
                }
            });
            if !deprecated {
                ctx.flag(out, ci, RULE_SEARCH_BATCH);
            }
        }
        if !is_hnsw {
            continue;
        }
        // the raw exact kernel is off-limits crate-wide
        if ctx.is_ident(ci, "squared_l2") && ctx.is_punct(ci + 1, "(") {
            ctx.flag(out, ci, RULE_QUANT);
        }
        // inside a traversal fn body, no direct metric .eval( calls
        if ctx.is_ident(ci, "fn") && TRAVERSAL_FNS.iter().any(|f| ctx.is_ident(ci + 1, f)) {
            let mut open = ci + 2;
            while open < ctx.n() && !ctx.is_punct(open, "{") {
                open += 1;
            }
            let close = ctx.match_delim(open);
            for cj in open..close {
                if ctx.is_punct(cj, ".")
                    && ctx.is_ident(cj + 1, "eval")
                    && ctx.is_punct(cj + 2, "(")
                {
                    ctx.flag(out, cj + 1, RULE_QUANT);
                }
            }
        }
    }
}
