/root/repo/target/debug/deps/fastann_kdtree-f433acf5ab5fb7d5.d: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_kdtree-f433acf5ab5fb7d5.rmeta: crates/kdtree/src/lib.rs crates/kdtree/src/dist.rs crates/kdtree/src/local.rs crates/kdtree/src/skeleton.rs Cargo.toml

crates/kdtree/src/lib.rs:
crates/kdtree/src/dist.rs:
crates/kdtree/src/local.rs:
crates/kdtree/src/skeleton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
