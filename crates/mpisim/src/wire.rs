//! Minimal binary wire codec over [`bytes`].
//!
//! The simulated programs exchange small structured payloads (queries,
//! result lists, tree nodes). Rather than pull in a serde format crate, we
//! hand-roll little-endian put/get helpers; every composite message in the
//! workspace is encoded with these.
//!
//! All `get_*` functions panic on underflow — a malformed simulated message
//! is a program bug, not a recoverable condition.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Appends a `u32` (little endian).
#[inline]
pub fn put_u32(buf: &mut BytesMut, v: u32) {
    buf.put_u32_le(v);
}

/// Reads a `u32`.
#[inline]
pub fn get_u32(buf: &mut impl Buf) -> u32 {
    buf.get_u32_le()
}

/// Appends a `u64`.
#[inline]
pub fn put_u64(buf: &mut BytesMut, v: u64) {
    buf.put_u64_le(v);
}

/// Reads a `u64`.
#[inline]
pub fn get_u64(buf: &mut impl Buf) -> u64 {
    buf.get_u64_le()
}

/// Appends an `f32`.
#[inline]
pub fn put_f32(buf: &mut BytesMut, v: f32) {
    buf.put_f32_le(v);
}

/// Reads an `f32`.
#[inline]
pub fn get_f32(buf: &mut impl Buf) -> f32 {
    buf.get_f32_le()
}

/// Appends an `f64`.
#[inline]
pub fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_f64_le(v);
}

/// Reads an `f64`.
#[inline]
pub fn get_f64(buf: &mut impl Buf) -> f64 {
    buf.get_f64_le()
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(buf: &mut BytesMut, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.put_slice(v);
}

/// Reads a length-prefixed byte string.
pub fn get_bytes(buf: &mut Bytes) -> Bytes {
    let n = get_u32(buf) as usize;
    buf.split_to(n)
}

/// Appends a length-prefixed `f32` slice.
pub fn put_f32_slice(buf: &mut BytesMut, v: &[f32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        buf.put_f32_le(x);
    }
}

/// Reads a length-prefixed `f32` vector.
pub fn get_f32_vec(buf: &mut impl Buf) -> Vec<f32> {
    let n = get_u32(buf) as usize;
    (0..n).map(|_| buf.get_f32_le()).collect()
}

/// Appends a length-prefixed `u32` slice.
pub fn put_u32_slice(buf: &mut BytesMut, v: &[u32]) {
    put_u32(buf, v.len() as u32);
    for &x in v {
        buf.put_u32_le(x);
    }
}

/// Reads a length-prefixed `u32` vector.
pub fn get_u32_vec(buf: &mut impl Buf) -> Vec<u32> {
    let n = get_u32(buf) as usize;
    (0..n).map(|_| buf.get_u32_le()).collect()
}

/// Appends `(id, dist)` pairs — the wire form of a neighbour list.
pub fn put_neighbors(buf: &mut BytesMut, pairs: &[(u32, f32)]) {
    put_u32(buf, pairs.len() as u32);
    for &(id, d) in pairs {
        buf.put_u32_le(id);
        buf.put_f32_le(d);
    }
}

/// Reads `(id, dist)` pairs.
pub fn get_neighbors(buf: &mut impl Buf) -> Vec<(u32, f32)> {
    let n = get_u32(buf) as usize;
    (0..n)
        .map(|_| (buf.get_u32_le(), buf.get_f32_le()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut b = BytesMut::new();
        put_u32(&mut b, 7);
        put_u64(&mut b, u64::MAX);
        put_f32(&mut b, -1.5);
        put_f64(&mut b, std::f64::consts::PI);
        let mut r = b.freeze();
        assert_eq!(get_u32(&mut r), 7);
        assert_eq!(get_u64(&mut r), u64::MAX);
        assert_eq!(get_f32(&mut r), -1.5);
        assert_eq!(get_f64(&mut r), std::f64::consts::PI);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_round_trip() {
        let mut b = BytesMut::new();
        put_f32_slice(&mut b, &[1.0, 2.0, 3.0]);
        put_u32_slice(&mut b, &[9, 8]);
        put_bytes(&mut b, b"abc");
        let mut r = b.freeze();
        assert_eq!(get_f32_vec(&mut r), vec![1.0, 2.0, 3.0]);
        assert_eq!(get_u32_vec(&mut r), vec![9, 8]);
        assert_eq!(&get_bytes(&mut r)[..], b"abc");
    }

    #[test]
    fn empty_slices_round_trip() {
        let mut b = BytesMut::new();
        put_f32_slice(&mut b, &[]);
        put_neighbors(&mut b, &[]);
        let mut r = b.freeze();
        assert!(get_f32_vec(&mut r).is_empty());
        assert!(get_neighbors(&mut r).is_empty());
    }

    #[test]
    fn neighbors_round_trip() {
        let pairs = vec![(1u32, 0.5f32), (42, 7.25)];
        let mut b = BytesMut::new();
        put_neighbors(&mut b, &pairs);
        let mut r = b.freeze();
        assert_eq!(get_neighbors(&mut r), pairs);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r = Bytes::from_static(&[1, 2]);
        let _ = get_u32(&mut r);
    }
}
