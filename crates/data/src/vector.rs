//! Flat, cache-friendly storage for sets of dense `f32` vectors.
//!
//! A [`VectorSet`] stores `n` vectors of a fixed dimension `dim` contiguously
//! in one `Vec<f32>` (structure-of-arrays at the vector granularity). All
//! indexes handed around the workspace are `u32` row ids into a `VectorSet`.

use std::fmt;

/// A set of dense vectors with a fixed dimension, stored contiguously.
///
/// Row `i` occupies `data[i*dim .. (i+1)*dim]`. The contiguous layout keeps
/// brute-force scans and index construction memory-bandwidth friendly, which
/// matters for the distance kernels in [`crate::metric`].
#[derive(Clone, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Creates an empty set of vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty set with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds a set from a flat buffer of length `n*dim`.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim` or `dim == 0`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { dim, data }
    }

    /// Builds a set from row slices; all rows must share one dimension.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let dim = rows[0].len();
        let mut out = Self::with_capacity(dim, rows.len());
        for r in rows {
            out.push(r);
        }
        out
    }

    /// Number of vectors stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The common dimension of every vector in the set.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows vector `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        let s = i * self.dim;
        &self.data[s..s + self.dim]
    }

    /// Mutably borrows vector `i`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        let s = i * self.dim;
        &mut self.data[s..s + self.dim]
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != dim()`.
    #[inline]
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimension");
        self.data.extend_from_slice(v);
    }

    /// Appends every vector of `other` (same dimension required).
    pub fn extend_from(&mut self, other: &VectorSet) {
        assert_eq!(self.dim, other.dim, "dimension mismatch in extend_from");
        self.data.extend_from_slice(&other.data);
    }

    /// Iterates over the rows in index order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the set, returning the flat buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Returns a new set containing the rows selected by `ids`, in order.
    ///
    /// This is the primitive used to materialise data partitions.
    pub fn gather(&self, ids: &[u32]) -> VectorSet {
        let mut out = VectorSet::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.get(id as usize));
        }
        out
    }

    /// Splits the set into `parts` nearly-equal contiguous chunks.
    ///
    /// The first `len % parts` chunks receive one extra row, matching the
    /// initial equi-partitioning of the dataset across processes in the
    /// paper's Section IV.
    pub fn split_even(&self, parts: usize) -> Vec<VectorSet> {
        assert!(parts > 0, "cannot split into zero parts");
        let n = self.len();
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let sz = base + usize::from(p < extra);
            let mut vs = VectorSet::with_capacity(self.dim, sz);
            for i in start..start + sz {
                vs.push(self.get(i));
            }
            start += sz;
            out.push(vs);
        }
        out
    }

    /// In-place Euclidean normalisation of every row; zero rows are left
    /// untouched. Used by the DEEP1B-style generator (CNN descriptors are
    /// unit-normalised).
    pub fn normalize_l2(&mut self) {
        let dim = self.dim;
        for row in self.data.chunks_exact_mut(dim) {
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in row.iter_mut() {
                    *x /= norm;
                }
            }
        }
    }

    /// Per-dimension (min, max) bounds over all rows; `None` when empty.
    pub fn bounds(&self) -> Option<(Vec<f32>, Vec<f32>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.get(0).to_vec();
        let mut hi = lo.clone();
        for row in self.iter().skip(1) {
            for (d, &x) in row.iter().enumerate() {
                if x < lo[d] {
                    lo[d] = x;
                }
                if x > hi[d] {
                    hi[d] = x;
                }
            }
        }
        Some((lo, hi))
    }
}

impl fmt::Debug for VectorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VectorSet")
            .field("len", &self.len())
            .field("dim", &self.dim)
            .finish()
    }
}

impl std::ops::Index<usize> for VectorSet {
    type Output = [f32];
    #[inline]
    fn index(&self, i: usize) -> &[f32] {
        self.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VectorSet {
        VectorSet::from_flat(2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
    }

    #[test]
    fn len_and_dim() {
        let v = sample();
        assert_eq!(v.len(), 3);
        assert_eq!(v.dim(), 2);
        assert!(!v.is_empty());
        assert!(VectorSet::new(4).is_empty());
    }

    #[test]
    fn get_returns_rows() {
        let v = sample();
        assert_eq!(v.get(0), &[0.0, 1.0]);
        assert_eq!(v.get(2), &[4.0, 5.0]);
        assert_eq!(&v[1], &[2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn get_out_of_bounds_panics() {
        let v = sample();
        let _ = v.get(3);
    }

    #[test]
    #[should_panic]
    fn push_wrong_dim_panics() {
        let mut v = sample();
        v.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn from_flat_ragged_panics() {
        let _ = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn push_and_iter() {
        let mut v = VectorSet::new(3);
        v.push(&[1.0, 2.0, 3.0]);
        v.push(&[4.0, 5.0, 6.0]);
        let rows: Vec<_> = v.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
    }

    #[test]
    fn gather_selects_rows() {
        let v = sample();
        let g = v.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(0), &[4.0, 5.0]);
        assert_eq!(g.get(1), &[0.0, 1.0]);
    }

    #[test]
    fn split_even_distributes_remainder() {
        let mut v = VectorSet::new(1);
        for i in 0..7 {
            v.push(&[i as f32]);
        }
        let parts = v.split_even(3);
        assert_eq!(
            parts.iter().map(VectorSet::len).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        assert_eq!(parts[0].get(2), &[2.0]);
        assert_eq!(parts[2].get(0), &[5.0]);
    }

    #[test]
    fn split_even_more_parts_than_rows() {
        let mut v = VectorSet::new(1);
        v.push(&[1.0]);
        let parts = v.split_even(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 1);
        assert_eq!(parts[1].len(), 0);
    }

    #[test]
    fn normalize_l2_unit_norm() {
        let mut v = VectorSet::from_flat(2, vec![3.0, 4.0, 0.0, 0.0]);
        v.normalize_l2();
        assert!((v.get(0)[0] - 0.6).abs() < 1e-6);
        assert!((v.get(0)[1] - 0.8).abs() < 1e-6);
        // zero row untouched
        assert_eq!(v.get(1), &[0.0, 0.0]);
    }

    #[test]
    fn bounds_cover_all_rows() {
        let v = sample();
        let (lo, hi) = v.bounds().expect("non-empty set has bounds");
        assert_eq!(lo, vec![0.0, 1.0]);
        assert_eq!(hi, vec![4.0, 5.0]);
        assert!(VectorSet::new(2).bounds().is_none());
    }

    #[test]
    fn extend_from_appends() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.get(5), &[4.0, 5.0]);
    }

    #[test]
    fn from_rows_builds() {
        let v = VectorSet::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.dim(), 2);
    }
}
