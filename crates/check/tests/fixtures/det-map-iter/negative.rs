use std::collections::{BTreeMap, HashMap};

fn lookup(counts: &HashMap<u64, usize>, k: u64) -> usize {
    counts.get(&k).copied().unwrap_or(0)
}

fn sorted_keys(counts: &HashMap<u64, usize>) -> Vec<u64> {
    // det:sort — collected and sorted before anything is reported
    let mut ks: Vec<u64> = counts.keys().copied().collect();
    ks.sort_unstable();
    ks
}

fn fold_commutes(hits: &HashMap<u64, usize>, slots: &mut [usize]) {
    for (n, c) in hits.iter() { // det:fold — += into disjoint slots commutes
        slots[*n as usize] += c;
    }
}

fn ordered(ranks: &BTreeMap<u64, usize>) -> Vec<u64> {
    ranks.keys().copied().collect()
}
