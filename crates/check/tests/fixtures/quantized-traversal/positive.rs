fn greedy_step(q: &QueryDist, metric: &Metric, cand: &[u32]) -> f32 {
    let mut best = f32::INFINITY;
    for &c in cand {
        let d = metric.eval(q, c);
        if d < best {
            best = d;
        }
    }
    best
}

fn helper(a: &[f32], b: &[f32]) -> f32 {
    squared_l2(a, b)
}
