//! Offline stand-in for the `rayon` crate — now with a real thread pool.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the parallel-iterator API subset it uses — `par_iter()` on
//! slices and `into_par_iter()` on ranges/vecs, with `map`/`map_init`/
//! `collect`/`for_each`/`for_each_init`/`sum`/`count`. Unlike the original
//! sequential stub, execution is genuinely parallel: each consuming call
//! materialises the input, splits it into contiguous chunks, and drives the
//! chunks through scoped `std::thread` workers that pull work off a shared
//! atomic cursor. Results are reassembled in input order, so every adapter
//! is order-preserving and deterministic for pure per-item closures.
//!
//! Differences from upstream rayon, on purpose:
//!
//! * No global pool. Workers are scoped threads spawned per consuming call
//!   (`collect`/`for_each`/...), which keeps the crate `forbid(unsafe_code)`
//!   and dependency-free. Spawn cost is microseconds; call sites here are
//!   coarse-grained (index builds, query batches), so this is noise.
//! * Closures take `Fn + Sync` (not `FnMut`) because they genuinely run
//!   concurrently now. `for_each_init`/`map_init` provide per-worker
//!   mutable state, matching upstream's contract.
//! * Thread count comes from, in precedence order: a scoped
//!   [`with_num_threads`] override, the `FASTANN_THREADS` or
//!   `RAYON_NUM_THREADS` environment variables, then
//!   `std::thread::available_parallelism()`.
//! * Nested parallel iterators inside a worker run sequentially (upstream
//!   would cooperatively schedule them; we must not spawn threads
//!   quadratically).

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The traits call sites import via `use rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Scoped thread-count override (set by `with_num_threads`, and pinned
    /// to 1 inside pool workers so nested parallelism stays sequential).
    static NUM_THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Default thread count: `FASTANN_THREADS`, else `RAYON_NUM_THREADS`, else
/// the machine's available parallelism. Read once per process.
fn default_num_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let from_env = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
        };
        from_env("FASTANN_THREADS")
            .or_else(|| from_env("RAYON_NUM_THREADS"))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of threads parallel iterators on this thread will use.
pub fn current_num_threads() -> usize {
    NUM_THREADS_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(default_num_threads)
}

/// Index of the current pool worker (`0..threads`), or `None` when called
/// outside a parallel-iterator worker. Lets callers keep per-thread
/// counters without locks.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// Runs `f` with parallel iterators on this thread capped at `n` threads
/// (`n = 1` forces sequential execution). Restores the previous setting on
/// exit, including on unwind.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            NUM_THREADS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(NUM_THREADS_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// The parallel engine: runs `f` over every item with per-worker state from
/// `init`, returning results in input order.
///
/// Items are pre-split into `4 * threads` contiguous chunks (capped at the
/// item count); workers claim chunks off an atomic cursor, so a slow chunk
/// does not stall the rest of the pool. With one thread (or one item) the
/// whole batch runs inline on the caller with a single `init()` — the exact
/// behaviour of the old sequential stub.
fn run_chunked<T, S, INIT, F, R>(items: Vec<T>, init: INIT, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|item| f(&mut state, item)).collect();
    }

    // Pre-split into contiguous chunks so output order is recoverable from
    // chunk order alone.
    let chunk_count = (threads * 4).min(n);
    let base = n / chunk_count;
    let extra = n % chunk_count;
    let mut iter = items.into_iter();
    let tasks: Vec<Mutex<Option<Vec<T>>>> = (0..chunk_count)
        .map(|i| {
            let len = base + usize::from(i < extra);
            Mutex::new(Some(iter.by_ref().take(len).collect()))
        })
        .collect();
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunk_count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let (tasks, slots, cursor, init, f) = (&tasks, &slots, &cursor, &init, &f);
        for w in 0..threads {
            scope.spawn(move || {
                WORKER_INDEX.with(|c| c.set(Some(w)));
                // Nested parallel iterators inside a worker run inline.
                NUM_THREADS_OVERRIDE.with(|c| c.set(Some(1)));
                let mut state = init();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= chunk_count {
                        break;
                    }
                    let chunk = tasks[idx]
                        .lock()
                        .expect("chunk mutex poisoned")
                        .take()
                        .expect("chunk claimed twice");
                    let out: Vec<R> = chunk.into_iter().map(|item| f(&mut state, item)).collect();
                    *slots[idx].lock().expect("slot mutex poisoned") = Some(out);
                }
            });
        }
    });

    slots
        .into_iter()
        .flat_map(|s| {
            s.into_inner()
                .expect("slot mutex poisoned")
                .expect("worker exited without filling its slot")
        })
        .collect()
}

/// A parallel iterator over a not-yet-materialised sequential source.
pub struct ParIter<I> {
    inner: I,
}

/// Conversion into a [`ParIter`] by value (subset of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Conversion into a borrowing [`ParIter`] (subset of
/// `rayon::iter::IntoParallelRefIterator`, which backs `slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: 'a + Send;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Borrows as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// Lazy `map` adapter — the closure runs on pool workers at consumption.
pub struct Map<P, F> {
    base: P,
    f: F,
}

/// Lazy `map_init` adapter — like [`Map`] but with per-worker scratch state.
pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

/// The adapter/consumer methods call sites use (subset of
/// `rayon::iter::ParallelIterator` + `IndexedParallelIterator`). All
/// consumers preserve input order.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Drives the pipeline: applies `f` (with per-worker state from `init`)
    /// to every element on the pool and returns results in input order.
    /// Adapters compose by wrapping `f`; consumers below are sugar over
    /// this single entry point.
    fn exec<S, INIT, F, R>(self, init: INIT, f: F) -> Vec<R>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send;

    /// Maps each element.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Maps each element with per-worker scratch state from `init`.
    fn map_init<S, INIT, F, R>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Consumes every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.exec(|| (), |(), item| f(item));
    }

    /// Consumes every element with per-worker scratch state. The
    /// initialiser runs once per worker thread that participates.
    fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) + Sync,
    {
        self.exec(init, |state, item| f(state, item));
    }

    /// Collects into any `FromIterator` container, in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.exec(|| (), |(), item| item).into_iter().collect()
    }

    /// Sums the elements. Elements are produced in parallel but summed in
    /// input order on the caller, so float sums are deterministic.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.exec(|| (), |(), item| item).into_iter().sum()
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.exec(|| (), |(), _| ()).len()
    }
}

impl<I> ParallelIterator for ParIter<I>
where
    I: Iterator,
    I::Item: Send,
{
    type Item = I::Item;

    fn exec<S, INIT, F, R>(self, init: INIT, f: F) -> Vec<R>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send,
    {
        run_chunked(self.inner.collect(), init, f)
    }
}

impl<P, F, T> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> T + Sync,
    T: Send,
{
    type Item = T;

    fn exec<S, INIT, G, R>(self, init: INIT, g: G) -> Vec<R>
    where
        INIT: Fn() -> S + Sync,
        G: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send,
    {
        let f = self.f;
        self.base.exec(init, move |state, item| g(state, f(item)))
    }
}

impl<P, S1, INIT1, F, T> ParallelIterator for MapInit<P, INIT1, F>
where
    P: ParallelIterator,
    INIT1: Fn() -> S1 + Sync,
    F: Fn(&mut S1, P::Item) -> T + Sync,
    T: Send,
{
    type Item = T;

    fn exec<S, INIT, G, R>(self, init: INIT, g: G) -> Vec<R>
    where
        INIT: Fn() -> S + Sync,
        G: Fn(&mut S, Self::Item) -> R + Sync,
        R: Send,
    {
        let MapInit {
            base,
            init: my_init,
            f,
        } = self;
        base.exec(
            move || (my_init(), init()),
            move |(s1, s2), item| g(s2, f(s1, item)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn slice_par_iter_for_each_init() {
        let data: Vec<u32> = (1..=100).collect();
        let sum = AtomicU32::new(0);
        data[..].par_iter().for_each_init(
            || 10u32,
            |scratch, &x| {
                assert_eq!(*scratch, 10, "every worker gets a fresh init value");
                sum.fetch_add(x, Ordering::Relaxed);
            },
        );
        assert_eq!(sum.into_inner(), 5050);
    }

    #[test]
    fn preserves_order() {
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x - 1).collect();
        assert_eq!(v, vec![2, 0, 1]);
    }

    #[test]
    fn preserves_order_at_scale() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        let expect: Vec<usize> = (0..10_000).map(|x| x * 2).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn map_init_threads_scratch_state() {
        let data: Vec<usize> = (0..257).collect();
        let v: Vec<usize> = data
            .par_iter()
            .map_init(|| 7usize, |scratch, &x| x + *scratch)
            .collect();
        let expect: Vec<usize> = (0..257).map(|x| x + 7).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        Vec::<u8>::new()
            .into_par_iter()
            .for_each(|_| panic!("closure must not run on empty input"));
    }

    #[test]
    fn single_thread_override_runs_inline() {
        super::with_num_threads(1, || {
            let caller = std::thread::current().id();
            let hits = AtomicUsize::new(0);
            (0..64usize).into_par_iter().for_each(|_| {
                assert_eq!(
                    std::thread::current().id(),
                    caller,
                    "threads=1 must run on the calling thread"
                );
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.into_inner(), 64);
            assert_eq!(super::current_num_threads(), 1);
        });
    }

    #[test]
    fn more_threads_than_items() {
        super::with_num_threads(64, || {
            let v: Vec<usize> = (0..3usize).into_par_iter().map(|x| x + 1).collect();
            assert_eq!(v, vec![1, 2, 3]);
        });
    }

    #[test]
    fn with_num_threads_restores_previous() {
        let before = super::current_num_threads();
        super::with_num_threads(3, || {
            assert_eq!(super::current_num_threads(), 3);
            super::with_num_threads(2, || assert_eq!(super::current_num_threads(), 2));
            assert_eq!(super::current_num_threads(), 3);
        });
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn worker_index_is_set_inside_and_unset_outside() {
        assert_eq!(super::current_thread_index(), None);
        super::with_num_threads(4, || {
            let threads = super::current_num_threads();
            (0..1024usize).into_par_iter().for_each(|_| {
                let idx = super::current_thread_index();
                if threads > 1 {
                    let idx = idx.expect("worker index set inside the pool");
                    assert!(idx < threads);
                }
            });
        });
        assert_eq!(super::current_thread_index(), None);
    }

    #[test]
    fn nested_parallelism_runs_sequentially() {
        super::with_num_threads(4, || {
            let data: Vec<usize> = (0..16).collect();
            let sums: Vec<usize> = data
                .par_iter()
                .map(|&x| {
                    // Inside a worker the nested iterator must not spawn.
                    assert_eq!(super::current_num_threads(), 1);
                    (0..x + 1).into_par_iter().sum::<usize>()
                })
                .collect();
            let expect: Vec<usize> = (0..16).map(|x| x * (x + 1) / 2).collect();
            assert_eq!(sums, expect);
        });
    }

    #[test]
    fn sum_and_count() {
        let s: u64 = (0..100u64).into_par_iter().sum();
        assert_eq!(s, 4950);
        assert_eq!((0..37usize).into_par_iter().count(), 37);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        // With enough items and threads >= 2 the pool must run on more than
        // one OS thread. Use a barrier-free detection: record distinct
        // thread ids.
        super::with_num_threads(4, || {
            if super::current_num_threads() < 2 {
                return; // single-core machine: nothing to assert
            }
            let ids = std::sync::Mutex::new(std::collections::HashSet::new());
            (0..4096usize).into_par_iter().for_each(|i| {
                // Enough per-item work that chunks outlast worker spawn
                // latency, so several workers actually claim chunks.
                let mut acc = i as u64;
                for k in 0..5_000u64 {
                    acc =
                        std::hint::black_box(acc.wrapping_mul(6364136223846793005).wrapping_add(k));
                }
                std::hint::black_box(acc);
                ids.lock()
                    .expect("id set poisoned")
                    .insert(std::thread::current().id());
            });
            let distinct = ids.into_inner().expect("id set poisoned").len();
            assert!(
                distinct >= 2,
                "expected >= 2 worker threads, saw {distinct}"
            );
        });
    }
}
