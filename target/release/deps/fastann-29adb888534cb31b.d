/root/repo/target/release/deps/fastann-29adb888534cb31b.d: src/bin/fastann.rs

/root/repo/target/release/deps/fastann-29adb888534cb31b: src/bin/fastann.rs

src/bin/fastann.rs:
