//! Readers and writers for the TEXMEX vector file formats.
//!
//! The datasets the paper evaluates on (ANN_SIFT1B, DEEP1B, ANN_GIST1M) ship
//! in the `.fvecs` / `.bvecs` / `.ivecs` formats from the INRIA TEXMEX
//! corpus: each vector is stored as a little-endian `i32` dimension header
//! followed by `dim` components (`f32`, `u8`, or `i32` respectively).
//!
//! We implement the formats so users with the real corpora can load them
//! directly; the test-suite and benchmarks use the synthetic generators in
//! [`crate::synth`] instead (billion-point files do not fit this host).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::vector::VectorSet;

/// Errors raised by the vector-file codecs.
#[derive(Debug)]
pub enum VecsError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem in the file (bad header, truncation, mixed dims).
    Format(String),
}

impl std::fmt::Display for VecsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VecsError::Io(e) => write!(f, "io error: {e}"),
            VecsError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for VecsError {}

impl From<io::Error> for VecsError {
    fn from(e: io::Error) -> Self {
        VecsError::Io(e)
    }
}

fn read_dim_header(r: &mut impl Read) -> Result<Option<usize>, VecsError> {
    let mut hdr = [0u8; 4];
    match r.read_exact(&mut hdr) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let d = i32::from_le_bytes(hdr);
    if d <= 0 {
        return Err(VecsError::Format(format!(
            "non-positive dimension header {d}"
        )));
    }
    Ok(Some(d as usize))
}

/// Reads an `.fvecs` file (`f32` components). `limit` caps the number of
/// vectors read (`None` reads all).
pub fn read_fvecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<VectorSet, VecsError> {
    let mut r = BufReader::new(File::open(path)?);
    read_fvecs_from(&mut r, limit)
}

/// Reads `.fvecs` data from any reader.
pub fn read_fvecs_from(r: &mut impl Read, limit: Option<usize>) -> Result<VectorSet, VecsError> {
    let mut out: Option<VectorSet> = None;
    let mut buf: Vec<u8> = Vec::new();
    let mut count = 0usize;
    while limit.is_none_or(|l| count < l) {
        let Some(dim) = read_dim_header(r)? else {
            break;
        };
        buf.resize(dim * 4, 0);
        r.read_exact(&mut buf)
            .map_err(|_| VecsError::Format("truncated vector body".into()))?;
        let vs = out.get_or_insert_with(|| VectorSet::new(dim));
        if vs.dim() != dim {
            return Err(VecsError::Format(format!(
                "mixed dimensions: {} then {}",
                vs.dim(),
                dim
            )));
        }
        let row: Vec<f32> = buf
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        vs.push(&row);
        count += 1;
    }
    out.ok_or_else(|| VecsError::Format("empty fvecs stream".into()))
}

/// Reads a `.bvecs` file (`u8` components, e.g. ANN_SIFT1B base vectors),
/// widening to `f32`.
pub fn read_bvecs(path: impl AsRef<Path>, limit: Option<usize>) -> Result<VectorSet, VecsError> {
    let mut r = BufReader::new(File::open(path)?);
    read_bvecs_from(&mut r, limit)
}

/// Reads `.bvecs` data from any reader.
pub fn read_bvecs_from(r: &mut impl Read, limit: Option<usize>) -> Result<VectorSet, VecsError> {
    let mut out: Option<VectorSet> = None;
    let mut buf: Vec<u8> = Vec::new();
    let mut count = 0usize;
    while limit.is_none_or(|l| count < l) {
        let Some(dim) = read_dim_header(r)? else {
            break;
        };
        buf.resize(dim, 0);
        r.read_exact(&mut buf)
            .map_err(|_| VecsError::Format("truncated vector body".into()))?;
        let vs = out.get_or_insert_with(|| VectorSet::new(dim));
        if vs.dim() != dim {
            return Err(VecsError::Format(format!(
                "mixed dimensions: {} then {}",
                vs.dim(),
                dim
            )));
        }
        let row: Vec<f32> = buf.iter().map(|&b| b as f32).collect();
        vs.push(&row);
        count += 1;
    }
    out.ok_or_else(|| VecsError::Format("empty bvecs stream".into()))
}

/// Reads an `.ivecs` file — the TEXMEX ground-truth format: each record is
/// the list of true neighbour ids for one query.
pub fn read_ivecs(
    path: impl AsRef<Path>,
    limit: Option<usize>,
) -> Result<Vec<Vec<u32>>, VecsError> {
    let mut r = BufReader::new(File::open(path)?);
    read_ivecs_from(&mut r, limit)
}

/// Reads `.ivecs` data from any reader.
pub fn read_ivecs_from(
    r: &mut impl Read,
    limit: Option<usize>,
) -> Result<Vec<Vec<u32>>, VecsError> {
    let mut out = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    while limit.is_none_or(|l| out.len() < l) {
        let Some(dim) = read_dim_header(r)? else {
            break;
        };
        buf.resize(dim * 4, 0);
        r.read_exact(&mut buf)
            .map_err(|_| VecsError::Format("truncated record body".into()))?;
        let row: Vec<u32> = buf
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u32)
            .collect();
        out.push(row);
    }
    if out.is_empty() {
        return Err(VecsError::Format("empty ivecs stream".into()));
    }
    Ok(out)
}

/// Writes a [`VectorSet`] in `.fvecs` format.
pub fn write_fvecs(path: impl AsRef<Path>, vs: &VectorSet) -> Result<(), VecsError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_fvecs_to(&mut w, vs)
}

/// Writes `.fvecs` data to any writer.
pub fn write_fvecs_to(w: &mut impl Write, vs: &VectorSet) -> Result<(), VecsError> {
    let dim = vs.dim() as i32;
    for row in vs.iter() {
        w.write_all(&dim.to_le_bytes())?;
        for &x in row {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes ground-truth id lists in `.ivecs` format.
pub fn write_ivecs_to(w: &mut impl Write, rows: &[Vec<u32>]) -> Result<(), VecsError> {
    for row in rows {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &id in row {
            w.write_all(&(id as i32).to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fvecs_round_trip() {
        let vs = VectorSet::from_flat(3, vec![1.0, 2.0, 3.0, -4.5, 0.0, 7.25]);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).expect("write to Vec never fails");
        let back = read_fvecs_from(&mut Cursor::new(buf), None).expect("round-trip read succeeds");
        assert_eq!(back, vs);
    }

    #[test]
    fn fvecs_limit_caps_rows() {
        let vs = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).expect("write to Vec never fails");
        let back = read_fvecs_from(&mut Cursor::new(buf), Some(2)).expect("bounded read succeeds");
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(1), &[3.0, 4.0]);
    }

    #[test]
    fn ivecs_round_trip() {
        let rows = vec![vec![1u32, 2, 3], vec![9, 8, 7]];
        let mut buf = Vec::new();
        write_ivecs_to(&mut buf, &rows).expect("write to Vec never fails");
        let back = read_ivecs_from(&mut Cursor::new(buf), None).expect("round-trip read succeeds");
        assert_eq!(back, rows);
    }

    #[test]
    fn bvecs_widen_to_f32() {
        // hand-build a bvecs stream: dim=2, bytes [5, 250]
        let mut buf = Vec::new();
        buf.extend_from_slice(&2i32.to_le_bytes());
        buf.extend_from_slice(&[5u8, 250u8]);
        let back = read_bvecs_from(&mut Cursor::new(buf), None).expect("round-trip read succeeds");
        assert_eq!(back.get(0), &[5.0, 250.0]);
    }

    #[test]
    fn truncated_body_is_format_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes()); // only 1 of 3 floats
        let err = read_fvecs_from(&mut Cursor::new(buf), None).unwrap_err();
        assert!(matches!(err, VecsError::Format(_)));
    }

    #[test]
    fn negative_dim_is_format_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(-1i32).to_le_bytes());
        let err = read_fvecs_from(&mut Cursor::new(buf), None).unwrap_err();
        assert!(matches!(err, VecsError::Format(_)));
    }

    #[test]
    fn mixed_dims_is_format_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2i32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2.0f32.to_le_bytes());
        let err = read_fvecs_from(&mut Cursor::new(buf), None).unwrap_err();
        assert!(matches!(err, VecsError::Format(_)));
    }

    #[test]
    fn empty_stream_is_error() {
        let err = read_fvecs_from(&mut Cursor::new(Vec::new()), None).unwrap_err();
        assert!(matches!(err, VecsError::Format(_)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fastann_io_test");
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        let path = dir.join("t.fvecs");
        let vs = VectorSet::from_flat(4, (0..16).map(|i| i as f32).collect());
        write_fvecs(&path, &vs).expect("write to temp file succeeds");
        let back = read_fvecs(&path, None).expect("read back from temp file succeeds");
        assert_eq!(back, vs);
        std::fs::remove_file(&path).ok();
    }
}
