#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from the workspace root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q (real thread pool, FASTANN_THREADS=4)"
# Same tier-1 suite with the vendored rayon pool defaulting to 4 real
# threads: the determinism contract says every reported number must stay
# bit-identical, so the whole suite must stay green.
FASTANN_THREADS=4 cargo test -q

echo "==> fastann-check lint (findings archived to target/lint_findings.json)"
cargo run -q -p fastann-check -- lint --json target/lint_findings.json
test -s target/lint_findings.json

echo "==> invariant validators are exercised"
for crate in hnsw vptree mpisim; do
    if ! grep -rq "fn validator_" "crates/$crate/src"; then
        echo "no validator_* test exercises crates/$crate" >&2
        exit 1
    fi
done

echo "==> schedule-perturbation race smoke (K=8)"
cargo run -q -p fastann-check -- race --k 8

echo "==> BENCH_*.json perf smoke + quantized recall-delta gate"
# --gate fails the run if quantized recall@10 trails the exact path by
# more than 0.01 on the same graph; both invocations also assert that
# quantized search answers bit-identically at 1 and at N threads.
cargo build -q --release -p fastann-bench
./target/release/perf --smoke --threads 1 --gate --out target
./target/release/perf --smoke --threads 4 --gate --out target
test -s target/BENCH_SYN_SMOKE.json

echo "==> MDC_32K clustered recall gate (exact-recall floor, bit-identity)"
# The clustered workload where single-seed greedy descent used to collapse
# exact recall@10 to ~0.44 (ROADMAP item 1, DESIGN.md §13). --gate enforces
# the workload's absolute exact-recall floor (0.90) on top of the recall
# delta, and the perf harness asserts the clustered search results are
# bit-identical at 1 and at N threads on both legs.
FASTANN_THREADS=1 ./target/release/perf --only MDC_32K --threads 1 --gate --out target
FASTANN_THREADS=4 ./target/release/perf --only MDC_32K --threads 4 --gate --out target
test -s target/BENCH_MDC_32K.json

echo "==> churn leg (live mutation: 90/5/5 read/insert/delete, recall gates)"
# Deletes 20% of the corpus through MutationRequest while serving reads,
# then compacts. --gate enforces survivor recall@10 >= 0.90 on the
# tombstoned index and within 0.02 of a from-scratch rebuild after
# compaction; the leg itself asserts no deleted id is ever served. The
# emitted JSON holds only virtual/deterministic fields plus an FNV
# fingerprint of every outcome and neighbor, so the cmp below is a
# full-trajectory bit-identity check across FASTANN_THREADS settings.
rm -rf target/churn_a target/churn_b
mkdir -p target/churn_a target/churn_b
FASTANN_THREADS=1 ./target/release/perf --churn --threads 1 --gate --out target/churn_a
FASTANN_THREADS=4 ./target/release/perf --churn --threads 4 --gate --out target/churn_b
cmp target/churn_a/BENCH_churn_SMOKE.json target/churn_b/BENCH_churn_SMOKE.json
test -s target/churn_a/BENCH_churn_SMOKE.json

echo "==> serve + obs smoke (seed-stable report, golden metrics)"
# The load generator asserts nonzero throughput and request conservation
# internally; CI additionally pins the determinism contract: two runs
# with the same seed — at different thread counts — must emit
# byte-identical reports (embedded FNV fingerprints and the obs
# MetricsSnapshot included), and the Prometheus rendering must match the
# committed golden exactly. Regenerate the golden with:
#   ./target/release/serveload --smoke --metrics --out crates/bench/golden
rm -rf target/serve_a target/serve_b
mkdir -p target/serve_a target/serve_b
./target/release/serveload --smoke --metrics --out target/serve_a
FASTANN_THREADS=4 ./target/release/serveload --smoke --metrics --out target/serve_b
cmp target/serve_a/BENCH_serve_SMOKE.json target/serve_b/BENCH_serve_SMOKE.json
cmp target/serve_a/METRICS_serve_SMOKE.prom target/serve_b/METRICS_serve_SMOKE.prom
diff -u crates/bench/golden/METRICS_serve_SMOKE.prom target/serve_a/METRICS_serve_SMOKE.prom

echo "==> zipf skewed serveload (adaptive replication gate, bit-identity)"
# The Zipf-skewed open-loop trace runs twice per invocation: once under
# static round-robin replication and once under the adaptive controller.
# --gate asserts the static leg actually sheds on the hot partition, that
# the controller raises at least one replica, and that the adaptive leg
# beats static on both rejection rate and p99 latency. The cmp pins the
# determinism contract (reports and metrics bit-identical across
# FASTANN_THREADS), and the diffs pin the committed artifacts.
# Regenerate after an intentional change with:
#   ./target/release/serveload --only zipf --gate --metrics --out .
#   mv METRICS_serve_zipf.prom crates/bench/golden/
rm -rf target/zipf_a target/zipf_b
mkdir -p target/zipf_a target/zipf_b
FASTANN_THREADS=1 ./target/release/serveload --only zipf --gate --metrics --out target/zipf_a
FASTANN_THREADS=4 ./target/release/serveload --only zipf --gate --metrics --out target/zipf_b
cmp target/zipf_a/BENCH_serve_zipf.json target/zipf_b/BENCH_serve_zipf.json
cmp target/zipf_a/METRICS_serve_zipf.prom target/zipf_b/METRICS_serve_zipf.prom
diff -u BENCH_serve_zipf.json target/zipf_a/BENCH_serve_zipf.json
diff -u crates/bench/golden/METRICS_serve_zipf.prom target/zipf_a/METRICS_serve_zipf.prom

echo "CI green."
