const TAG_ROGUE: u64 = 99;

fn send(world: &World, peer: usize, payload: &[u8]) {
    world.send_bytes(peer, 3, payload);
}
