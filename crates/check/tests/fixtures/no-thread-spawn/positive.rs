use std::thread;

fn run() -> usize {
    let h = thread::spawn(|| 1 + 1);
    let b = thread::Builder::new();
    let _ = b;
    h.join().unwrap_or(0)
}
