//! Quickstart: build a distributed index over a synthetic dataset and
//! answer a query batch.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fastann::core::{DistIndex, EngineConfig, SearchOptions, SearchRequest};
use fastann::data::{synth, Distance};

fn main() {
    // 20k SIFT-style 64-dimensional descriptors and 100 queries drawn near
    // the data (held-out descriptors from the same source).
    let data = synth::sift_like(20_000, 64, 42);
    let queries = synth::queries_near(&data, 100, 0.02, 43);

    // A simulated cluster of 16 processing cores, 4 per compute node.
    // The dataset is partitioned by a distributed VP tree; each partition
    // gets a local HNSW index.
    let config = EngineConfig::new(16, 4);
    let index = DistIndex::build(&data, config);
    println!(
        "built {} partitions over {} points in {:.1} virtual ms \
         (VP tree {:.1} ms, HNSW {:.1} ms)",
        index.n_partitions(),
        data.len(),
        index.build_stats.total_ns / 1e6,
        index.build_stats.vptree_ns / 1e6,
        index.build_stats.hnsw_ns / 1e6,
    );

    // 10-NN for the whole batch through the master-worker engine with
    // one-sided result aggregation (the paper's optimised path).
    let report = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10))
        .run();
    println!(
        "answered {} queries in {:.2} virtual ms  ({:.0} queries/s, mean fan-out {:.2})",
        report.results.len(),
        report.total_ns / 1e6,
        report.throughput_qps(),
        report.mean_fanout,
    );

    // Check quality against exact brute force.
    let gt = fastann::data::ground_truth::brute_force(&data, &queries, 10, Distance::L2);
    let recall = fastann::data::ground_truth::recall_at_k(&report.results, &gt, 10);
    println!(
        "mean recall@10 = {:.3} (min {:.3})",
        recall.mean, recall.min
    );

    // Peek at one result.
    let first = &report.results[0];
    println!("query 0 neighbours: {:?}", &first[..3.min(first.len())]);
}
