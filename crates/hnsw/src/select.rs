//! Neighbour selection heuristic (HNSW paper, Algorithm 4).
//!
//! Given a candidate set ordered by distance to the inserted point, the
//! heuristic keeps a candidate only if it is closer to the new point than to
//! every already-selected neighbour. This spreads links across directions
//! (an approximation of the relative-neighbourhood graph) instead of
//! clustering them, which is what gives HNSW graphs their navigability in
//! clustered data.

use fastann_data::{Distance, Neighbor, VectorSet};

/// Selects up to `m` neighbours from `candidates` (must be sorted by
/// ascending distance to the query point) using the diversification
/// heuristic. `keep_pruned` back-fills with the nearest pruned candidates if
/// fewer than `m` survive.
///
/// Returns ids ordered as selected (nearest-first). Increments `ndist` by
/// the number of distance evaluations performed.
pub(crate) fn select_neighbors_heuristic(
    data: &VectorSet,
    query: &[f32],
    candidates: &[Neighbor],
    m: usize,
    dist: Distance,
    keep_pruned: bool,
    ndist: &mut u64,
) -> Vec<u32> {
    debug_assert!(
        candidates.windows(2).all(|w| w[0].dist <= w[1].dist),
        "candidates must be sorted by distance"
    );
    let _ = query; // distances to query are already in `candidates`
    let mut selected: Vec<Neighbor> = Vec::with_capacity(m);
    let mut pruned: Vec<Neighbor> = Vec::new();

    for &c in candidates {
        if selected.len() >= m {
            break;
        }
        // keep c iff it is closer to the query than to every selected node
        let mut keep = true;
        for s in &selected {
            *ndist += 1;
            let d_cs = dist.eval(data.get(c.id as usize), data.get(s.id as usize));
            if d_cs < c.dist {
                keep = false;
                break;
            }
        }
        if keep {
            selected.push(c);
        } else {
            pruned.push(c);
        }
    }

    if keep_pruned {
        for &p in &pruned {
            if selected.len() >= m {
                break;
            }
            selected.push(p);
        }
    }

    selected.iter().map(|n| n.id).collect()
}

/// Plain nearest-`m` selection (HNSW Algorithm 3) — kept as the reference
/// the heuristic is tested against.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn select_neighbors_simple(candidates: &[Neighbor], m: usize) -> Vec<u32> {
    candidates.iter().take(m).map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> VectorSet {
        // points on a line: 0, 1, 2, 10, 11
        VectorSet::from_flat(1, vec![0.0, 1.0, 2.0, 10.0, 11.0])
    }

    fn cands(data: &VectorSet, q: &[f32], ids: &[u32]) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = ids
            .iter()
            .map(|&i| Neighbor::new(i, Distance::L2.eval(q, data.get(i as usize))))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn heuristic_diversifies_directions() {
        let data = line_data();
        // Query between the two clusters: nearest candidates are 2 (d=3),
        // 1 (d=4), 0 (d=5), 3 (d=5), 4 (d=6). The heuristic keeps 2, prunes
        // 1 and 0 (shadowed by 2), and keeps 3 — one link per direction.
        let q = [5.0f32];
        let c = cands(&data, &q, &[0, 1, 2, 3, 4]);
        let mut nd = 0;
        let sel = select_neighbors_heuristic(&data, &q, &c, 2, Distance::L2, false, &mut nd);
        assert_eq!(sel, vec![2, 3], "one representative per cluster");
        assert!(nd > 0);
    }

    #[test]
    fn heuristic_prunes_shadowed_same_direction_points() {
        let data = line_data();
        // Query left of everything: 0 shadows 1, 2; 3 shadows nothing new
        // (3 is closer to 0 than to q), so only the nearest survives.
        let q = [-0.5f32];
        let c = cands(&data, &q, &[0, 1, 2, 3, 4]);
        let mut nd = 0;
        let sel = select_neighbors_heuristic(&data, &q, &c, 3, Distance::L2, false, &mut nd);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn keep_pruned_backfills() {
        let data = line_data();
        let q = [0.5f32];
        let c = cands(&data, &q, &[0, 1, 2]);
        let mut nd = 0;
        let none = select_neighbors_heuristic(&data, &q, &c, 3, Distance::L2, false, &mut nd);
        let filled = select_neighbors_heuristic(&data, &q, &c, 3, Distance::L2, true, &mut nd);
        assert!(none.len() <= filled.len());
        assert_eq!(filled.len(), 3, "keep_pruned fills to m when possible");
    }

    #[test]
    fn respects_m_bound() {
        let data = line_data();
        let q = [5.0f32];
        let c = cands(&data, &q, &[0, 1, 2, 3, 4]);
        let mut nd = 0;
        let sel = select_neighbors_heuristic(&data, &q, &c, 2, Distance::L2, true, &mut nd);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn simple_takes_nearest() {
        let data = line_data();
        let q = [0.0f32];
        let c = cands(&data, &q, &[0, 1, 2, 3, 4]);
        let sel = select_neighbors_simple(&c, 3);
        assert_eq!(sel, vec![0, 1, 2]);
    }

    #[test]
    fn empty_candidates_ok() {
        let data = line_data();
        let mut nd = 0;
        let sel = select_neighbors_heuristic(&data, &[0.0], &[], 4, Distance::L2, true, &mut nd);
        assert!(sel.is_empty());
        assert_eq!(nd, 0);
    }

    #[test]
    fn first_candidate_always_selected() {
        let data = line_data();
        let q = [10.2f32];
        let c = cands(&data, &q, &[0, 1, 2, 3, 4]);
        let mut nd = 0;
        let sel = select_neighbors_heuristic(&data, &q, &c, 1, Distance::L2, false, &mut nd);
        assert_eq!(sel, vec![3], "nearest candidate is always kept");
    }
}
