/root/repo/target/debug/deps/fastann_bench-4f7468409ecc97a5.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_bench-4f7468409ecc97a5.rmeta: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
