//! Query routers: how the master maps a query to partitions.
//!
//! Two implementations:
//!
//! * [`Router::VpTree`] — the paper's hierarchical VP-tree skeleton:
//!   `O(max_partitions × depth)` distance evaluations per query and
//!   balanced partitions by construction (median splits).
//! * [`Router::FlatPivot`] — the flat randomized pivot scheme of the
//!   paper's reference [16] (Zhou et al., CBD 2013): every point belongs to
//!   its closest pivot; routing scores the query against *all* P pivots and
//!   picks the closest few. Simple, but routing is `O(P)` per query and
//!   closest-pivot assignment produces "significant load imbalance across
//!   processes" (the paper's words) — both effects reproduced by the
//!   `repro baseline-pivot` experiment.

use fastann_data::{Distance, TopK, VectorSet};
use fastann_vptree::{PartitionTree, RouteConfig};

use crate::routing::{splitmix64, RoutingPolicy};

/// Maps queries to the partitions that must be searched.
pub enum Router {
    /// Hierarchical VP-tree skeleton (the paper's design).
    VpTree(PartitionTree),
    /// Flat pivot table (the [16] baseline).
    FlatPivot {
        /// One pivot vector per partition.
        pivots: VectorSet,
        /// Metric used for pivot assignment.
        metric: Distance,
    },
}

impl Router {
    /// Partitions to search for `q`, most promising first, plus the number
    /// of distance evaluations spent routing.
    pub fn route(&self, q: &[f32], cfg: &RouteConfig) -> (Vec<u32>, u64) {
        match self {
            Router::VpTree(tree) => tree.route(q, cfg),
            Router::FlatPivot { pivots, metric } => {
                // score ALL pivots — the O(P) master cost of flat schemes
                let cap = cfg.max_partitions.max(1).min(pivots.len());
                let mut top = TopK::new(cap);
                for (i, p) in pivots.iter().enumerate() {
                    top.push(fastann_data::Neighbor::new(i as u32, metric.eval(q, p)));
                }
                let ids = top.into_sorted().into_iter().map(|n| n.id).collect();
                (ids, pivots.len() as u64)
            }
        }
    }

    /// Number of partitions this router addresses.
    pub fn n_partitions(&self) -> usize {
        match self {
            Router::VpTree(tree) => tree.n_partitions(),
            Router::FlatPivot { pivots, .. } => pivots.len(),
        }
    }

    /// Bytes the master keeps resident for routing.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Router::VpTree(tree) => tree.approx_bytes(),
            Router::FlatPivot { pivots, .. } => pivots.as_flat().len() * 4,
        }
    }
}

/// Algorithm-5 replica dispatch, generalised to per-partition replica
/// counts: partition `d` with `r_d` replicas has workgroup cores
/// `{d, d+1, …, d+r_d−1 mod P}`.
///
/// Slot choice within the workgroup follows the [`RoutingPolicy`]:
/// round-robin ([`RoutingPolicy::Static`], the paper's dispatch) or
/// power-of-two-choices over the per-core dispatched-probe count
/// ([`RoutingPolicy::PowerOfTwo`]) — the count is the master's
/// deterministic virtual-time queue-depth estimate, since the fault-free
/// master dispatches the whole batch before collecting anything.
///
/// The same workgroup doubles as the failover chain of the fault-tolerant
/// path: attempt `a` of a probe first dispatched at workgroup slot `s`
/// targets slot `(s + a) mod r_d`, so with `r_d > 1` a timed-out probe
/// lands on a *different* replica, while `r_d = 1` retries the (only)
/// owner — which recovers lost messages but not a dead core.
pub struct ReplicaDispatcher {
    p_cores: usize,
    /// Per-partition replica counts (indexed by partition id; split-created
    /// partitions beyond the initial table are grown on demand at 1).
    counts: Vec<usize>,
    adaptive: bool,
    next_slot: Vec<usize>,
    /// Probes dispatched to each core so far — the deterministic queue
    /// depth the power-of-two choice compares.
    core_load: Vec<u64>,
}

impl ReplicaDispatcher {
    /// Dispatcher over `p_cores` cores with a uniform replication factor
    /// `replication ≥ 1` and round-robin slot choice (the Algorithm-5
    /// baseline).
    pub fn new(p_cores: usize, replication: usize) -> Self {
        Self::with_policy(
            p_cores,
            RoutingPolicy::Static(replication),
            &vec![replication; p_cores],
        )
    }

    /// Dispatcher over `p_cores` cores with per-partition replica
    /// `counts` (one entry per partition) and the slot choice of `policy`.
    ///
    /// # Panics
    /// Panics when any count falls outside `1..=p_cores`.
    pub fn with_policy(p_cores: usize, policy: RoutingPolicy, counts: &[usize]) -> Self {
        policy.validate();
        assert!(
            counts.iter().all(|&r| r >= 1 && r <= p_cores),
            "replica counts must be within 1..=p_cores"
        );
        Self {
            p_cores,
            counts: counts.to_vec(),
            adaptive: policy.is_adaptive(),
            next_slot: vec![0; counts.len().max(p_cores)],
            core_load: vec![0; p_cores],
        }
    }

    /// Replica count of `part`'s workgroup.
    pub fn replicas(&self, part: u32) -> usize {
        self.counts.get(part as usize).copied().unwrap_or(1)
    }

    /// The core at workgroup `slot` (taken mod `r_part`) of `part`'s
    /// workgroup.
    pub fn member(&self, part: u32, slot: usize) -> usize {
        (part as usize + slot % self.replicas(part)) % self.p_cores
    }

    /// Grows the per-partition tables on demand: partitions created by a
    /// dynamic split carry ids ≥ the initial table size (their workgroup
    /// wraps onto existing cores via `member`, at 1 replica).
    fn ensure_part(&mut self, part: u32) {
        if part as usize >= self.next_slot.len() {
            self.next_slot.resize(part as usize + 1, 0);
        }
        if part as usize >= self.counts.len() {
            self.counts.resize(part as usize + 1, 1);
        }
    }

    /// Picks the core for a fresh probe of `part` by round-robin and
    /// advances the pointer. Returns `(core, slot)`; keep `slot` to derive
    /// failover targets for this probe.
    pub fn next_primary(&mut self, part: u32) -> (usize, usize) {
        self.ensure_part(part);
        let slot = self.next_slot[part as usize];
        self.next_slot[part as usize] = (slot + 1) % self.replicas(part);
        let core = self.member(part, slot);
        self.core_load[core] += 1;
        (core, slot)
    }

    /// Power-of-two-choices dispatch: hashes `(qid, part)` to two distinct
    /// workgroup slots and takes the one whose core has fewer probes
    /// dispatched so far (ties keep the first hash) — deterministic
    /// load-aware placement with no coordination state beyond the
    /// dispatched-probe counters.
    pub fn next_po2(&mut self, part: u32, qid: u64) -> (usize, usize) {
        self.ensure_part(part);
        let r = self.replicas(part);
        if r == 1 {
            let core = self.member(part, 0);
            self.core_load[core] += 1;
            return (core, 0);
        }
        let h = splitmix64((qid << 32) ^ u64::from(part));
        let s1 = (h % r as u64) as usize;
        let mut s2 = ((h >> 32) % r as u64) as usize;
        if s2 == s1 {
            s2 = (s1 + 1) % r;
        }
        let (c1, c2) = (self.member(part, s1), self.member(part, s2));
        let (core, slot) = if self.core_load[c2] < self.core_load[c1] {
            (c2, s2)
        } else {
            (c1, s1)
        };
        self.core_load[core] += 1;
        (core, slot)
    }

    /// Policy dispatch: [`ReplicaDispatcher::next_po2`] when constructed
    /// with an adaptive policy, [`ReplicaDispatcher::next_primary`]
    /// otherwise.
    pub fn next(&mut self, part: u32, qid: u64) -> (usize, usize) {
        if self.adaptive {
            self.next_po2(part, qid)
        } else {
            self.next_primary(part)
        }
    }

    /// The core serving retry `attempt` (1-based) of a probe first sent at
    /// `slot`.
    pub fn failover(&self, part: u32, slot: usize, attempt: usize) -> usize {
        self.member(part, slot + attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::synth;

    fn pivot_router() -> Router {
        let pivots = synth::sift_like(8, 4, 1);
        Router::FlatPivot {
            pivots,
            metric: Distance::L2,
        }
    }

    #[test]
    fn flat_pivot_routes_to_closest_pivot_first() {
        let r = pivot_router();
        let Router::FlatPivot { pivots, .. } = &r else {
            unreachable!()
        };
        let q = pivots.get(5).to_vec();
        let (route, ndist) = r.route(
            &q,
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 3,
            },
        );
        assert_eq!(route[0], 5, "closest pivot must come first");
        assert_eq!(route.len(), 3);
        assert_eq!(ndist, 8, "flat routing scores every pivot");
    }

    #[test]
    fn flat_pivot_cap_respected() {
        let r = pivot_router();
        let q = vec![0.0; 4];
        let (route, _) = r.route(
            &q,
            &RouteConfig {
                margin_frac: 0.5,
                max_partitions: 100,
            },
        );
        assert_eq!(route.len(), 8, "cap clamps to pivot count");
        let mut dedup = route.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn n_partitions_and_bytes() {
        let r = pivot_router();
        assert_eq!(r.n_partitions(), 8);
        assert_eq!(r.approx_bytes(), 8 * 4 * 4);
    }

    /// Two-leaf skeleton with a single boundary at `mu`, vantage point at
    /// the origin.
    fn boundary_tree(mu: f32) -> Router {
        let mut b = fastann_vptree::PartitionTreeBuilder::new();
        let near = b.leaf(0);
        let far = b.leaf(1);
        let root = b.inner(vec![0.0, 0.0], mu, near, far);
        Router::VpTree(b.finish(root, Distance::L2))
    }

    #[test]
    fn query_exactly_at_radius_mu_visits_both_sides() {
        // d(q, vp) == mu is the knife edge: the point belongs to the near
        // (inside) half, but its slack is exactly zero, so the sibling is
        // within *any* margin — even margin_frac = 0 must route both sides
        let r = boundary_tree(2.0);
        let q = [2.0, 0.0];
        let (route, ndist) = r.route(
            &q,
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 8,
            },
        );
        assert_eq!(route, vec![0, 1], "home partition first, sibling second");
        assert_eq!(ndist, 1, "one boundary comparison");

        // … while a query strictly inside with zero margin stays one-sided
        let (route, _) = r.route(
            &[1.0, 0.0],
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 8,
            },
        );
        assert_eq!(route, vec![0], "interior query does not cross");

        // and the partition cap still applies at the knife edge
        let (route, _) = r.route(
            &q,
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 1,
            },
        );
        assert_eq!(route, vec![0], "nprobe = 1 keeps only the home partition");
    }

    #[test]
    fn nprobe_larger_than_partition_count_clamps() {
        let data = synth::sift_like(256, 6, 5);
        let (tree, parts) = fastann_vptree::PartitionTree::build_local(&data, 4, Distance::L2, 5);
        assert_eq!(parts.len(), 4);
        let r = Router::VpTree(tree);
        // margin wide enough to admit every sibling, nprobe far above P
        let (route, _) = r.route(
            data.get(17),
            &RouteConfig {
                margin_frac: 1e6,
                max_partitions: 100,
            },
        );
        assert_eq!(route.len(), 4, "cannot probe more partitions than exist");
        let mut dedup = route.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "each partition appears exactly once");

        // nprobe = 0 is clamped up to 1 rather than returning nothing: a
        // query must always have at least its home partition searched
        let (route, _) = r.route(
            data.get(17),
            &RouteConfig {
                margin_frac: 0.0,
                max_partitions: 0,
            },
        );
        assert_eq!(route.len(), 1, "zero nprobe clamps to the home partition");
    }

    #[test]
    fn empty_partition_still_routes() {
        // the skeleton is data-independent: a leaf whose partition ended up
        // with zero vectors (possible under adversarial splits) must still
        // be routable — the engine answers it with zero candidates rather
        // than the router pretending it does not exist
        let r = boundary_tree(1.0);
        let (route, _) = r.route(
            &[5.0, 0.0], // far outside: routes to the (empty) far leaf
            &RouteConfig {
                margin_frac: 0.1,
                max_partitions: 1,
            },
        );
        assert_eq!(route, vec![1], "empty partition id is still returned");
    }

    #[test]
    fn dispatcher_round_robins_within_workgroup() {
        let mut d = ReplicaDispatcher::new(8, 3);
        // partition 6's workgroup is {6, 7, 0}
        assert_eq!(d.next_primary(6), (6, 0));
        assert_eq!(d.next_primary(6), (7, 1));
        assert_eq!(d.next_primary(6), (0, 2));
        assert_eq!(d.next_primary(6), (6, 0), "pointer wraps");
        // other partitions have independent pointers
        assert_eq!(d.next_primary(2), (2, 0));
    }

    #[test]
    fn dispatcher_failover_cycles_replicas() {
        let d = ReplicaDispatcher::new(8, 2);
        let (core, slot) = (5, 1); // probe of partition 4 sent to slot 1
        assert_eq!(d.member(4, slot), core);
        assert_eq!(
            d.failover(4, slot, 1),
            4,
            "first retry moves to the other replica"
        );
        assert_eq!(d.failover(4, slot, 2), 5, "second retry wraps back");
    }

    #[test]
    fn dispatcher_without_replication_is_identity() {
        let mut d = ReplicaDispatcher::new(4, 1);
        for part in 0..4u32 {
            assert_eq!(d.next_primary(part), (part as usize, 0));
            assert_eq!(d.next_primary(part), (part as usize, 0));
            assert_eq!(
                d.failover(part, 0, 3),
                part as usize,
                "r=1 retries the owner"
            );
        }
    }

    #[test]
    #[should_panic]
    fn dispatcher_rejects_oversized_replication() {
        let _ = ReplicaDispatcher::new(4, 5);
    }

    #[test]
    fn per_partition_counts_shape_workgroups() {
        // partition 1 raised to 3 replicas, everything else at 1
        let mut counts = vec![1usize; 8];
        counts[1] = 3;
        let mut d = ReplicaDispatcher::with_policy(8, RoutingPolicy::Static(1), &counts);
        assert_eq!(d.replicas(1), 3);
        assert_eq!(d.replicas(0), 1);
        // partition 1's workgroup is {1, 2, 3}; partition 0 stays pinned
        assert_eq!(d.next_primary(1), (1, 0));
        assert_eq!(d.next_primary(1), (2, 1));
        assert_eq!(d.next_primary(1), (3, 2));
        assert_eq!(d.next_primary(1), (1, 0), "pointer wraps at r_1 = 3");
        assert_eq!(d.next_primary(0), (0, 0));
        assert_eq!(d.next_primary(0), (0, 0));
        // failover chain also honours the per-partition count
        assert_eq!(d.failover(1, 0, 1), 2);
        assert_eq!(d.failover(1, 2, 1), 1, "wraps at r_1");
        assert_eq!(d.failover(0, 0, 5), 0, "r=1 retries the owner");
    }

    #[test]
    fn po2_is_deterministic_and_stays_in_workgroup() {
        let counts = vec![4usize; 8];
        let policy = RoutingPolicy::PowerOfTwo { base: 4, max: 4 };
        let mut a = ReplicaDispatcher::with_policy(8, policy, &counts);
        let mut b = ReplicaDispatcher::with_policy(8, policy, &counts);
        for qid in 0..64u64 {
            let part = (qid % 8) as u32;
            let (core, slot) = a.next(part, qid);
            assert_eq!(
                (core, slot),
                b.next(part, qid),
                "same (qid, part) stream must dispatch identically"
            );
            assert!(slot < 4, "slot within the workgroup");
            assert_eq!(core, a.member(part, slot));
        }
    }

    #[test]
    fn po2_balances_a_hot_partition() {
        // every probe targets partition 0 with 4 replicas: po2 must spread
        // far better than "all on one core", and not worse than 2x the
        // round-robin optimum
        let mut counts = vec![1usize; 8];
        counts[0] = 4;
        let policy = RoutingPolicy::PowerOfTwo { base: 1, max: 4 };
        let mut d = ReplicaDispatcher::with_policy(8, policy, &counts);
        let mut per_core = [0u32; 8];
        for qid in 0..400u64 {
            let (core, _) = d.next(0, qid);
            assert!(core < 4, "workgroup of partition 0 is {{0,1,2,3}}");
            per_core[core] += 1;
        }
        let max = per_core.iter().max().copied().unwrap_or(0);
        assert!(
            max <= 200,
            "po2 must spread the hot partition: per-core {per_core:?}"
        );
        assert!(per_core[..4].iter().all(|&c| c > 0), "every replica used");
    }

    #[test]
    fn static_policy_with_uniform_counts_matches_legacy_dispatcher() {
        let mut legacy = ReplicaDispatcher::new(8, 3);
        let mut unified = ReplicaDispatcher::with_policy(8, RoutingPolicy::Static(3), &[3usize; 8]);
        for qid in 0..48u64 {
            let part = (qid % 8) as u32;
            assert_eq!(legacy.next(part, qid), unified.next(part, qid));
        }
    }

    #[test]
    fn split_partition_grows_tables_on_demand() {
        let mut d = ReplicaDispatcher::with_policy(
            4,
            RoutingPolicy::PowerOfTwo { base: 1, max: 2 },
            &[2, 1, 1, 1],
        );
        // a split-created partition id beyond the table wraps onto cores
        let (core, slot) = d.next(9, 0);
        assert_eq!(d.replicas(9), 1, "split partitions default to 1 replica");
        assert_eq!(core, 9 % 4);
        assert_eq!(slot, 0);
    }
}
