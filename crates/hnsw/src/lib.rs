//! # fastann-hnsw
//!
//! A from-scratch implementation of **Hierarchical Navigable Small World**
//! graphs (Malkov & Yashunin, TPAMI 2018) — the approximate k-NN index the
//! paper runs *inside every data partition* (Section III-A).
//!
//! The index is a stack of navigable-small-world layers. Every point lives
//! in layer 0; each point is independently promoted to higher layers with a
//! geometric probability (the skip-list construction), and search descends
//! greedily from the sparse top layer to the dense bottom layer, turning a
//! k-NN query into an `O(log n)` greedy graph walk.
//!
//! Implemented here:
//! * insertion with the *heuristic* neighbour selection of the HNSW paper's
//!   Algorithm 4 (`extend_candidates` / `keep_pruned` knobs included),
//! * `ef`-bounded best-first layer search with an epoch-based visited set,
//! * multi-threaded bulk construction (rayon + per-node `RwLock`s), the
//!   analogue of the OpenMP-parallel construction used in the paper,
//! * distance-evaluation accounting ([`SearchStats`]) — the quantity the
//!   virtual-time cluster simulation charges for compute.
//!
//! ```
//! use fastann_data::{synth, Distance};
//! use fastann_hnsw::{Hnsw, HnswConfig};
//!
//! let data = synth::sift_like(2_000, 32, 7);
//! let index = Hnsw::build(data.clone(), Distance::L2, HnswConfig::default());
//! let (hits, stats) = index.search(data.get(0), 5, 64);
//! assert_eq!(hits[0].id, 0); // a point's nearest neighbour is itself
//! assert!(stats.ndist > 0);
//! ```

#![forbid(unsafe_code)]

mod config;
mod graph;
mod index;
mod rerank;
mod scratch;
mod select;
mod serialize;

pub use config::HnswConfig;
pub use index::{Hnsw, SearchStats};
pub use scratch::SearchScratch;
pub use serialize::LoadError;
