//! The rule set of the token-stream lint engine.
//!
//! Every rule is a function from a [`FileCtx`](crate::engine::FileCtx)
//! to a list of findings; [`run_all`] fans one file out to all of them.
//! The eight legacy rules (ported from the textual pass) live in
//! [`panics`], [`wire`], [`docs`] and [`api`]; the determinism family
//! introduced with the token engine lives in [`determinism`].

pub mod api;
pub mod determinism;
pub mod docs;
pub mod panics;
pub mod wire;

use crate::engine::FileCtx;
use crate::lint::Violation;

/// Every rule identifier the engine can emit, legacy then determinism.
pub const ALL_RULES: [&str; 12] = [
    crate::lint::RULE_UNWRAP,
    crate::lint::RULE_PANIC,
    crate::lint::RULE_RECV,
    crate::lint::RULE_TAG,
    crate::lint::RULE_DOC,
    crate::lint::RULE_SPAWN,
    crate::lint::RULE_SEARCH_BATCH,
    crate::lint::RULE_QUANT,
    crate::lint::RULE_DET_MAP_ITER,
    crate::lint::RULE_DET_WALL_CLOCK,
    crate::lint::RULE_DET_THREAD_ID,
    crate::lint::RULE_DET_FLOAT_ACCUM,
];

/// The eight rules ported from the legacy textual pass, in the order
/// the parity test compares them.
pub const LEGACY_RULES: [&str; 8] = [
    crate::lint::RULE_UNWRAP,
    crate::lint::RULE_PANIC,
    crate::lint::RULE_RECV,
    crate::lint::RULE_TAG,
    crate::lint::RULE_DOC,
    crate::lint::RULE_SPAWN,
    crate::lint::RULE_SEARCH_BATCH,
    crate::lint::RULE_QUANT,
];

/// Runs every rule over one file's context.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    panics::check(ctx, out);
    wire::check(ctx, out);
    docs::check(ctx, out);
    api::check(ctx, out);
    determinism::check(ctx, out);
}
