//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the parallel-iterator API subset it uses — `par_iter()` on
//! slices and `into_par_iter()` on ranges, with `map`/`collect`/
//! `for_each`/`for_each_init` — executed **sequentially**. Virtual-time
//! accounting in this repository is explicit (costs are charged to
//! simulated clocks, never measured), so sequential execution changes
//! wall-clock speed only, not any reported number. If real data
//! parallelism becomes a bottleneck, swap this crate back for upstream
//! rayon; call sites need no changes.

/// The traits call sites import via `use rayon::prelude::*`.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A "parallel" iterator — a thin wrapper over a sequential one.
pub struct ParIter<I> {
    inner: I,
}

/// Conversion into a [`ParIter`] by value (subset of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

/// Conversion into a borrowing [`ParIter`] (subset of
/// `rayon::iter::IntoParallelRefIterator`, which backs `slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: 'a;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Borrows as a parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// The adapter/consumer methods call sites use (subset of
/// `rayon::iter::ParallelIterator` + `IndexedParallelIterator`).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Unwraps the sequential iterator.
    fn into_seq(self) -> Self::Iter;

    /// Maps each element.
    fn map<R, F: FnMut(Self::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<Self::Iter, F>> {
        ParIter {
            inner: self.into_seq().map(f),
        }
    }

    /// Consumes every element.
    fn for_each<F: FnMut(Self::Item)>(self, f: F) {
        self.into_seq().for_each(f);
    }

    /// Consumes every element with per-"thread" scratch state. Sequential
    /// execution means the initialiser runs exactly once.
    fn for_each_init<S, INIT, F>(self, init: INIT, mut f: F)
    where
        INIT: Fn() -> S,
        F: FnMut(&mut S, Self::Item),
    {
        let mut state = init();
        for item in self.into_seq() {
            f(&mut state, item);
        }
    }

    /// Collects into any `FromIterator` container.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_seq().collect()
    }

    /// Sums the elements.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_seq().sum()
    }

    /// Number of elements.
    fn count(self) -> usize {
        self.into_seq().count()
    }
}

impl<I: Iterator> ParallelIterator for ParIter<I> {
    type Item = I::Item;
    type Iter = I;

    fn into_seq(self) -> I {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn slice_par_iter_for_each_init() {
        let data = [1u32, 2, 3, 4];
        let mut sum = 0u32;
        data[..].par_iter().for_each_init(
            || 10u32,
            |scratch, &x| {
                assert_eq!(*scratch, 10);
                sum += x;
            },
        );
        assert_eq!(sum, 10);
    }

    #[test]
    fn preserves_order() {
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().map(|x| x - 1).collect();
        assert_eq!(v, vec![2, 0, 1]);
    }
}
