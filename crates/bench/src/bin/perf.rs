//! `perf` — emits a `BENCH_<dataset>.json` wall-clock trajectory per
//! dataset: HNSW build throughput, batched-search QPS and recall, each at
//! 1 thread and at `--threads N`, plus the measured speedups.
//!
//! ```text
//! perf [--smoke] [--threads N] [--out DIR] [--gate] [--only NAME] [--churn]
//!   --smoke     tiny synthetic dataset only (the CI smoke invocation)
//!   --threads   pool width for the parallel legs (default: host cores)
//!   --out       directory for the BENCH_*.json files (default: .)
//!   --gate      fail unless quantized recall@k stays within 0.01 of the
//!               exact path on the same graph (the CI recall-delta gate)
//!   --only      substring filter on dataset names (skip the others)
//!   --churn     run the live-mutation leg instead: a 90/5/5
//!               read/insert/delete stream against the distributed engine
//!               that deletes 20% of the corpus, then compacts. Emits
//!               BENCH_churn_SMOKE.json with only virtual/deterministic
//!               fields (plus an FNV fingerprint of every outcome), so CI
//!               can `cmp` the file across FASTANN_THREADS settings; with
//!               --gate, survivor recall@10 must stay ≥ 0.90
//!               pre-compaction and within 0.02 of a from-scratch rebuild
//!               post-compaction
//! ```
//!
//! Each record also carries a `quantized` section: the SQ8-traversal +
//! exact-re-rank pipeline timed against the exact path on the same graph,
//! with its recall and the recall delta. Quantized search at 1 and at N
//! threads is asserted bit-identical unconditionally, like the exact pool.
//!
//! Because the quantized traversal typically *over*-delivers recall at the
//! exact path's `ef` (the re-rank stage repairs quantization error and the
//! pool is wider than k), the fixed-`ef` QPS comparison understates it. The
//! `quantized.matched` block is the standard equal-recall comparison: sweep
//! the quantized `ef` down a fixed ladder and report the cheapest setting
//! whose recall still lands within the gate tolerance of the exact path's
//! recall — both systems delivering the same quality, each at its own
//! operating point.
//!
//! Numbers are honest wall-clock measurements on *this* host: the emitted
//! `host_cores` field records how many cores were actually available, and
//! on a single-core machine the speedup legs will sit near 1.0 no matter
//! how wide the pool is. The parallel legs still exercise the full
//! threaded code paths (batch-parallel construction, pooled search), and
//! the JSON asserts their results match the sequential legs bit-for-bit.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

use fastann_bench::{datasets, Scale};
use fastann_core::{
    DistIndex, EngineConfig, Mutation, MutationRequest, SearchOptions, SearchRequest,
};
use fastann_data::{ground_truth, synth, Distance, VectorSet};
use fastann_hnsw::{Hnsw, HnswConfig, SearchScratch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const K: usize = 10;
const EF: usize = 64;
const RERANK_FACTOR: usize = 3;
/// The CI gate: quantized recall@K may trail exact recall@K on the same
/// graph by at most this much.
const MAX_RECALL_DELTA: f64 = 0.01;
/// The `ef` ladder swept for the equal-recall operating point, smallest
/// first. `EF` itself is the last rung so the sweep always has the fixed
/// comparison's setting as a fallback.
const EF_LADDER: [usize; 7] = [10, 12, 16, 24, 32, 48, EF];

struct Args {
    smoke: bool,
    threads: usize,
    out: String,
    gate: bool,
    only: Option<String>,
    churn: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: std::thread::available_parallelism().map_or(1, usize::from),
        out: ".".to_string(),
        gate: false,
        only: None,
        churn: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                args.threads = v.parse().expect("--threads must be a number");
            }
            "--out" => args.out = it.next().expect("--out needs a directory"),
            "--gate" => args.gate = true,
            "--only" => args.only = Some(it.next().expect("--only needs a dataset name")),
            "--churn" => args.churn = true,
            other => {
                eprintln!(
                    "unknown argument {other:?} (try --smoke / --threads / --out / --gate / --only / --churn)"
                );
                std::process::exit(2);
            }
        }
    }
    args.threads = args.threads.max(1);
    args
}

/// One dataset's measured trajectory.
struct Record {
    dataset: String,
    points: usize,
    dim: usize,
    n_queries: usize,
    threads: usize,
    host_cores: usize,
    build_seq_s: f64,
    build_par_s: f64,
    build_speedup: f64,
    build_points_per_s: f64,
    qps_1t: f64,
    qps_nt: f64,
    search_speedup: f64,
    recall: f64,
    recall_seq: f64,
    pool_is_deterministic: bool,
    q_qps_1t: f64,
    q_qps_nt: f64,
    q_speedup_vs_exact: f64,
    q_recall: f64,
    q_recall_delta: f64,
    q_is_deterministic: bool,
    q_matched_ef: usize,
    q_matched_qps_1t: f64,
    q_matched_recall: f64,
    q_matched_speedup: f64,
}

impl Record {
    /// Hand-rolled JSON (the workspace deliberately has no serde).
    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"dataset\": \"{}\",", self.dataset);
        let _ = writeln!(s, "  \"points\": {},", self.points);
        let _ = writeln!(s, "  \"dim\": {},", self.dim);
        let _ = writeln!(s, "  \"queries\": {},", self.n_queries);
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"host_cores\": {},", self.host_cores);
        let _ = writeln!(s, "  \"build\": {{");
        let _ = writeln!(s, "    \"seq_s\": {:.6},", self.build_seq_s);
        let _ = writeln!(s, "    \"par_s\": {:.6},", self.build_par_s);
        let _ = writeln!(s, "    \"speedup\": {:.3},", self.build_speedup);
        let _ = writeln!(s, "    \"points_per_s\": {:.1}", self.build_points_per_s);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"search\": {{");
        let _ = writeln!(s, "    \"k\": {K},");
        let _ = writeln!(s, "    \"ef\": {EF},");
        let _ = writeln!(s, "    \"qps_1t\": {:.1},", self.qps_1t);
        let _ = writeln!(s, "    \"qps_nt\": {:.1},", self.qps_nt);
        let _ = writeln!(s, "    \"speedup\": {:.3},", self.search_speedup);
        let _ = writeln!(s, "    \"recall_at_k\": {:.4},", self.recall);
        let _ = writeln!(s, "    \"recall_at_k_seq_build\": {:.4}", self.recall_seq);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"quantized\": {{");
        let _ = writeln!(s, "    \"rerank_factor\": {RERANK_FACTOR},");
        let _ = writeln!(s, "    \"qps_1t\": {:.1},", self.q_qps_1t);
        let _ = writeln!(s, "    \"qps_nt\": {:.1},", self.q_qps_nt);
        let _ = writeln!(
            s,
            "    \"speedup_vs_exact\": {:.3},",
            self.q_speedup_vs_exact
        );
        let _ = writeln!(s, "    \"recall_at_k\": {:.4},", self.q_recall);
        let _ = writeln!(s, "    \"recall_delta\": {:.4},", self.q_recall_delta);
        let _ = writeln!(s, "    \"matched\": {{");
        let _ = writeln!(s, "      \"ef\": {},", self.q_matched_ef);
        let _ = writeln!(s, "      \"qps_1t\": {:.1},", self.q_matched_qps_1t);
        let _ = writeln!(s, "      \"recall_at_k\": {:.4},", self.q_matched_recall);
        let _ = writeln!(
            s,
            "      \"speedup_vs_exact\": {:.3}",
            self.q_matched_speedup
        );
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(
            s,
            "  \"pool_is_deterministic\": {}",
            self.pool_is_deterministic
        );
        s.push_str("}\n");
        s
    }
}

fn measure(name: &str, data: &VectorSet, queries: &VectorSet, threads: usize) -> Record {
    let hnsw_cfg = HnswConfig::with_m(16).ef_construction(100).seed(7);

    // -- build: sequential reference, then the batch-parallel path --
    let t0 = Instant::now();
    let seq = Hnsw::build(data.clone(), Distance::L2, hnsw_cfg);
    let build_seq_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let par = rayon::with_num_threads(threads, || {
        Hnsw::build_parallel(data.clone(), Distance::L2, hnsw_cfg)
    });
    let build_par_s = t0.elapsed().as_secs_f64();

    // -- batched search via the pool, 1 thread vs N threads --
    let qvecs: Vec<Vec<f32>> = queries.iter().map(<[f32]>::to_vec).collect();
    let search_all = |threads: usize| {
        let t0 = Instant::now();
        let out = rayon::with_num_threads(threads, || {
            use rayon::prelude::*;
            qvecs
                .par_iter()
                .map_init(
                    || SearchScratch::with_capacity(par.len()),
                    |scratch, q| par.search_with_scratch(q, K, EF, scratch).0,
                )
                .collect::<Vec<_>>()
        });
        (out, t0.elapsed().as_secs_f64())
    };
    let _warmup = search_all(1); // untimed: page in graph + vectors
    let (res_1t, wall_1t) = search_all(1);
    let (res_nt, wall_nt) = search_all(threads);

    // -- the same graph again, SQ8 traversal + exact re-rank --
    let search_all_q = |threads: usize, ef: usize| {
        let t0 = Instant::now();
        let out = rayon::with_num_threads(threads, || {
            use rayon::prelude::*;
            qvecs
                .par_iter()
                .map_init(
                    || SearchScratch::with_capacity(par.len()),
                    |scratch, q| {
                        par.search_quantized_with_scratch(q, K, ef, RERANK_FACTOR, scratch)
                            .0
                    },
                )
                .collect::<Vec<_>>()
        });
        (out, t0.elapsed().as_secs_f64())
    };
    let _warmup = search_all_q(1, EF); // untimed: page in codes + norms
    let (qres_1t, qwall_1t) = search_all_q(1, EF);
    let (qres_nt, qwall_nt) = search_all_q(threads, EF);

    // -- recall against brute force, for both graphs: the batch-parallel
    // build produces a *different* (equally valid) graph than the
    // sequential build, so quality parity is the meaningful comparison --
    let gt = ground_truth::brute_force(data, queries, K, Distance::L2);
    let recall = ground_truth::recall_at_k(&res_nt, &gt, K).mean;
    let q_recall = ground_truth::recall_at_k(&qres_nt, &gt, K).mean;
    let mut scratch = SearchScratch::with_capacity(seq.len());
    let seq_res: Vec<_> = qvecs
        .iter()
        .map(|q| seq.search_with_scratch(q, K, EF, &mut scratch).0)
        .collect();
    let recall_seq = ground_truth::recall_at_k(&seq_res, &gt, K).mean;

    // -- equal-recall operating point: walk the ef ladder from the
    // cheapest rung up and stop at the first whose quantized recall lands
    // within the gate tolerance of the exact path's recall at EF --
    let mut matched = None;
    for ef in EF_LADDER {
        let (r, wall) = search_all_q(1, ef);
        let rec = ground_truth::recall_at_k(&r, &gt, K).mean;
        let qps = qvecs.len() as f64 / wall.max(1e-9);
        if rec >= recall - MAX_RECALL_DELTA || ef == EF {
            matched = Some((ef, qps, rec));
            break;
        }
    }
    let (q_matched_ef, q_matched_qps_1t, q_matched_recall) =
        matched.expect("EF_LADDER ends with EF, so the sweep always lands");

    // determinism spot-check: the pool is order-preserving, so the same
    // graph searched at 1 and at N threads must answer bit-identically
    let matches = res_1t == res_nt;

    Record {
        dataset: name.to_string(),
        points: data.len(),
        dim: data.dim(),
        n_queries: queries.len(),
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, usize::from),
        build_seq_s,
        build_par_s,
        build_speedup: build_seq_s / build_par_s.max(1e-9),
        build_points_per_s: data.len() as f64 / build_par_s.max(1e-9),
        qps_1t: qvecs.len() as f64 / wall_1t.max(1e-9),
        qps_nt: qvecs.len() as f64 / wall_nt.max(1e-9),
        search_speedup: wall_1t / wall_nt.max(1e-9),
        recall,
        recall_seq,
        pool_is_deterministic: matches,
        q_qps_1t: qvecs.len() as f64 / qwall_1t.max(1e-9),
        q_qps_nt: qvecs.len() as f64 / qwall_nt.max(1e-9),
        q_speedup_vs_exact: wall_1t / qwall_1t.max(1e-9),
        q_recall,
        q_recall_delta: recall - q_recall,
        q_is_deterministic: qres_1t == qres_nt,
        q_matched_ef,
        q_matched_qps_1t,
        q_matched_recall,
        q_matched_speedup: q_matched_qps_1t * wall_1t / qvecs.len() as f64,
    }
}

// ---------------------------------------------------------------------------
// the churn leg: live mutation under a mixed read/insert/delete stream
// ---------------------------------------------------------------------------

/// Corpus size for the churn leg (smoke scale: CI runs it on every push).
const CHURN_POINTS: usize = 2_500;
const CHURN_DIM: usize = 16;
/// Rounds of churn; each round is 90/5/5 read/insert/delete over
/// [`CHURN_OPS_PER_ROUND`] operations.
const CHURN_ROUNDS: usize = 10;
const CHURN_OPS_PER_ROUND: usize = 1_000;
/// Across the whole run the deletes remove 20% of the original corpus
/// size: ROUNDS * OPS * 5% = 500 = 0.2 * CHURN_POINTS.
const CHURN_READS_PER_ROUND: usize = CHURN_OPS_PER_ROUND * 90 / 100;
const CHURN_WRITES_PER_ROUND: usize = CHURN_OPS_PER_ROUND * 5 / 100;
/// The `--gate` floor: survivor recall@K on the mutated (tombstoned,
/// not-yet-compacted) index.
const CHURN_RECALL_FLOOR: f64 = 0.90;
/// The `--gate` parity bound: post-compaction survivor recall@K may trail
/// a from-scratch rebuild of the surviving set by at most this much.
const CHURN_MAX_REBUILD_DELTA: f64 = 0.02;
const CHURN_SEED: u64 = 42;

/// Fold `bytes` into a running FNV-1a hash. The churn report carries this
/// fingerprint of every mutation outcome and every served neighbor, so a
/// byte-level `cmp` of two BENCH files is a full-trajectory determinism
/// check, not just a summary comparison.
fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Mean recall@K of the engine's answers over `queries`, scored against a
/// brute-force scan of the surviving rows. `gid_to_pos` maps the engine's
/// global ids onto positions in `surv` (identity for a fresh rebuild).
fn churn_recall(
    index: &DistIndex,
    surv: &VectorSet,
    queries: &VectorSet,
    gid_to_pos: &HashMap<u32, u32>,
) -> f64 {
    let report = SearchRequest::new(index, queries)
        .opts(SearchOptions::new(K))
        .run();
    let mut total = 0.0;
    for (qi, got) in report.results.iter().enumerate() {
        let truth = ground_truth::brute_force_one(surv, queries.get(qi), K, Distance::L2);
        let hits = got
            .iter()
            .filter_map(|n| gid_to_pos.get(&n.id))
            .filter(|p| truth.iter().any(|t| t.id == **p))
            .count();
        total += hits as f64 / truth.len() as f64;
    }
    total / report.results.len() as f64
}

/// The churn leg: build the distributed index, drive [`CHURN_ROUNDS`]
/// rounds of a 90/5/5 read/insert/delete stream (deleting 20% of the
/// original corpus in total), then force a compaction pass and compare
/// survivor recall against a from-scratch rebuild of the surviving set.
/// Everything emitted is virtual or derived from deterministic results, so
/// the JSON is byte-identical at any `--threads` / `FASTANN_THREADS`
/// setting and `ci.sh` enforces that with `cmp`.
fn run_churn(args: &Args) {
    let seed = CHURN_SEED;
    eprintln!(
        "perf: churn_SMOKE ({CHURN_POINTS} x {CHURN_DIM}, {CHURN_ROUNDS} rounds of \
         {CHURN_READS_PER_ROUND}r/{CHURN_WRITES_PER_ROUND}i/{CHURN_WRITES_PER_ROUND}d, \
         {} threads) ...",
        args.threads
    );
    let data = synth::sift_like(CHURN_POINTS, CHURN_DIM, seed);
    let cfg = EngineConfig::new(4, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
        .with_seed(seed)
        .with_threads(args.threads);
    let mut index = DistIndex::build(&data, cfg.clone());

    // gid → vector mirror of what should survive, plus the op stream rng
    let mut alive: Vec<(u32, Vec<f32>)> = (0..CHURN_POINTS)
        .map(|i| (i as u32, data.get(i).to_vec()))
        .collect();
    let mut minted = CHURN_POINTS as u32;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FF);
    let read_pool = synth::queries_near(&data, 256, 0.02, seed ^ 0x9e37);

    let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
    let (mut reads, mut inserts, mut deletes) = (0u64, 0u64, 0u64);
    let (mut maintenance_ns, mut ndist) = (0.0f64, 0u64);
    for _round in 0..CHURN_ROUNDS {
        // 5/5 writes: deletes drawn from the live set, inserts minted fresh
        let mut batch = Vec::with_capacity(2 * CHURN_WRITES_PER_ROUND);
        for _ in 0..CHURN_WRITES_PER_ROUND {
            let victim = rng.gen_range(0..alive.len());
            batch.push(Mutation::Delete {
                global_id: alive[victim].0,
            });
            alive.swap_remove(victim);
            deletes += 1;
        }
        for _ in 0..CHURN_WRITES_PER_ROUND {
            let v = synth::sift_like(1, CHURN_DIM, seed ^ (u64::from(minted) << 5))
                .get(0)
                .to_vec();
            batch.push(Mutation::Upsert {
                global_id: None,
                vector: v.clone(),
            });
            alive.push((minted, v));
            minted += 1;
            inserts += 1;
        }
        // compaction is deferred to the explicit pass below (threshold > 1
        // can never trip), so the whole churn phase measures the tombstoned
        // graph the way a serving replica between compactions would
        let report = MutationRequest::new(&mut index)
            .mutations(batch)
            .compact_threshold(2.0)
            .run();
        assert!(
            report
                .outcomes
                .iter()
                .all(fastann_core::MutationOutcome::effective),
            "churn_SMOKE: every churn mutation must apply"
        );
        maintenance_ns += report.maintenance_ns;
        ndist += report.ndist;
        for o in &report.outcomes {
            fnv1a(&mut fingerprint, format!("{o:?}").as_bytes());
        }

        // 90 reads: batched through the engine, answers folded into the
        // fingerprint and checked against the live mirror
        let live: std::collections::HashSet<u32> = alive.iter().map(|(g, _)| *g).collect();
        let mut queries = VectorSet::new(CHURN_DIM);
        for _ in 0..CHURN_READS_PER_ROUND {
            queries.push(read_pool.get(rng.gen_range(0..read_pool.len())));
            reads += 1;
        }
        let answers = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(K))
            .run();
        for result in &answers.results {
            for n in result {
                assert!(
                    live.contains(&n.id),
                    "churn_SMOKE: deleted id {} surfaced in a read",
                    n.id
                );
                fnv1a(&mut fingerprint, &n.id.to_le_bytes());
                fnv1a(&mut fingerprint, &n.dist.to_bits().to_le_bytes());
            }
        }
    }
    assert_eq!(
        deletes as usize,
        CHURN_POINTS / 5,
        "churn deletes 20% of the corpus"
    );

    // survivor ground truth: recall before compaction, after compaction,
    // and on a from-scratch rebuild of exactly the surviving rows
    let mut surv = VectorSet::new(CHURN_DIM);
    for (_, v) in &alive {
        surv.push(v);
    }
    let gid_to_pos: HashMap<u32, u32> = alive
        .iter()
        .enumerate()
        .map(|(p, (g, _))| (*g, p as u32))
        .collect();
    let queries = synth::queries_near(&surv, 100, 0.05, seed ^ 0x77);
    let recall_pre = churn_recall(&index, &surv, &queries, &gid_to_pos);

    let compaction = MutationRequest::new(&mut index)
        .compact_threshold(0.05)
        .run();
    assert!(
        !compaction.compactions.is_empty(),
        "churn_SMOKE: the 20% tombstone load must trip the 0.05 compaction threshold"
    );
    maintenance_ns += compaction.maintenance_ns;
    ndist += compaction.ndist;
    for c in &compaction.compactions {
        fnv1a(&mut fingerprint, format!("{c:?}").as_bytes());
    }
    let recall_post = churn_recall(&index, &surv, &queries, &gid_to_pos);

    let fresh = DistIndex::build(&surv, cfg);
    let identity: HashMap<u32, u32> = (0..surv.len() as u32).map(|g| (g, g)).collect();
    let recall_fresh = churn_recall(&fresh, &surv, &queries, &identity);

    if args.gate {
        assert!(
            recall_pre >= CHURN_RECALL_FLOOR,
            "churn_SMOKE: pre-compaction survivor recall@{K} {recall_pre:.4} \
             below the floor {CHURN_RECALL_FLOOR:.2}"
        );
        assert!(
            recall_post >= recall_fresh - CHURN_MAX_REBUILD_DELTA,
            "churn_SMOKE: post-compaction recall@{K} {recall_post:.4} trails the \
             fresh rebuild {recall_fresh:.4} by more than {CHURN_MAX_REBUILD_DELTA}"
        );
    }

    // Hand-rolled JSON, deterministic fields only (no wall-clock, no
    // thread count): `cmp` across FASTANN_THREADS settings must pass.
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"dataset\": \"churn_SMOKE\",");
    let _ = writeln!(s, "  \"points\": {CHURN_POINTS},");
    let _ = writeln!(s, "  \"dim\": {CHURN_DIM},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"rounds\": {CHURN_ROUNDS},");
    let _ = writeln!(s, "  \"ops\": {{");
    let _ = writeln!(s, "    \"reads\": {reads},");
    let _ = writeln!(s, "    \"inserts\": {inserts},");
    let _ = writeln!(s, "    \"deletes\": {deletes}");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"survivors\": {},", surv.len());
    let _ = writeln!(s, "  \"epoch\": {},", index.mutation_epoch);
    let _ = writeln!(
        s,
        "  \"compacted_partitions\": {},",
        compaction.compactions.len()
    );
    let _ = writeln!(
        s,
        "  \"compaction_dropped\": {},",
        compaction
            .compactions
            .iter()
            .map(|c| c.dropped as u64)
            .sum::<u64>()
    );
    let _ = writeln!(s, "  \"maintenance_ns\": {maintenance_ns:.1},");
    let _ = writeln!(s, "  \"maintenance_dists\": {ndist},");
    let _ = writeln!(s, "  \"recall_at_k_pre_compaction\": {recall_pre:.4},");
    let _ = writeln!(s, "  \"recall_at_k_post_compaction\": {recall_post:.4},");
    let _ = writeln!(s, "  \"recall_at_k_fresh_rebuild\": {recall_fresh:.4},");
    let _ = writeln!(s, "  \"fingerprint\": \"{fingerprint:016x}\"");
    s.push_str("}\n");
    let path = format!("{}/BENCH_churn_SMOKE.json", args.out);
    std::fs::write(&path, s).expect("write BENCH churn json");
    println!(
        "{path}: {reads}r/{inserts}i/{deletes}d over {CHURN_ROUNDS} rounds, \
         recall@{K} pre {recall_pre:.3} / post {recall_post:.3} / fresh {recall_fresh:.3}, \
         {} partitions compacted, fingerprint {fingerprint:016x}",
        compaction.compactions.len()
    );
}

fn main() {
    let args = parse_args();
    if args.churn {
        run_churn(&args);
        return;
    }
    let scale = Scale::from_env();
    // (name, constructor) pairs: workloads are built lazily, after the
    // `--only` filter, so a filtered invocation (the CI MDC_32K leg) does
    // not pay for generating the datasets it skips
    type WorkloadCtor = fn(Scale) -> datasets::Workload;
    let menu: Vec<(&str, WorkloadCtor)> = if args.smoke {
        vec![("SYN_SMOKE", datasets::smoke)]
    } else {
        vec![
            ("SYN_1M", datasets::syn_1m),
            ("SYN_10M", datasets::syn_10m),
            ("MDC_32K", datasets::mdc_32k),
        ]
    };

    for (name, build) in menu {
        if let Some(only) = &args.only {
            if !name.contains(only.as_str()) {
                eprintln!("perf: skipping {name} (--only {only})");
                continue;
            }
        }
        let w = build(scale);
        eprintln!(
            "perf: {} ({} x {}, {} queries, {} threads) ...",
            w.name,
            w.data.len(),
            w.data.dim(),
            w.queries.len(),
            args.threads
        );
        let rec = measure(w.name, &w.data, &w.queries, args.threads);
        assert!(
            rec.pool_is_deterministic,
            "{}: pooled search diverged between 1 and {} threads",
            w.name, args.threads
        );
        assert!(
            rec.q_is_deterministic,
            "{}: quantized search diverged between 1 and {} threads",
            w.name, args.threads
        );
        if args.gate {
            assert!(
                rec.q_recall_delta <= MAX_RECALL_DELTA,
                "{}: quantized recall@{K} {:.4} trails exact {:.4} by {:.4} (> {MAX_RECALL_DELTA})",
                w.name,
                rec.q_recall,
                rec.recall,
                rec.q_recall_delta
            );
            // absolute floor, not just parity: on the clustered workloads a
            // descent regression drops exact and quantized recall together,
            // which the delta gate alone would wave through
            assert!(
                rec.recall >= w.min_exact_recall,
                "{}: exact recall@{K} {:.4} below the workload floor {:.2}",
                w.name,
                rec.recall,
                w.min_exact_recall
            );
        }
        let path = format!("{}/BENCH_{}.json", args.out, w.name);
        std::fs::write(&path, rec.to_json()).expect("write BENCH json");
        println!(
            "{path}: build {:.2}x ({:.0} pts/s), search {:.2}x ({:.0} qps), recall@{K} {:.3}, \
             quantized {:.2}x vs exact ({:.0} qps, recall {:.3}), \
             matched-recall {:.2}x at ef={} ({:.0} qps, recall {:.3}) \
             [host has {} core(s)]",
            rec.build_speedup,
            rec.build_points_per_s,
            rec.search_speedup,
            rec.qps_nt,
            rec.recall,
            rec.q_speedup_vs_exact,
            rec.q_qps_nt,
            rec.q_recall,
            rec.q_matched_speedup,
            rec.q_matched_ef,
            rec.q_matched_qps_1t,
            rec.q_matched_recall,
            rec.host_cores
        );
    }
}
