//! End-to-end quantized-first search through the engine: the
//! `SearchOptions::with_quantized` / `with_rerank_factor` knobs must reach
//! every partition's HNSW, recall must stay within 0.01 of the exact
//! path, the obs registry must carry the quantized/exact split, and the
//! whole pipeline must stay bit-identical across thread counts.

use fastann_core::{DistIndex, EngineConfig, QueryReport, SearchOptions, SearchRequest};
use fastann_data::{ground_truth, synth, Distance, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_obs::Metrics;

fn fixture() -> (VectorSet, VectorSet, DistIndex) {
    // unit-norm deep-like data: fine-grained values where quantization
    // error actually bites (SIFT-like byte data is nearly lossless)
    let data = synth::deep_like(3_000, 24, 41);
    let queries = synth::queries_near(&data, 30, 0.02, 42);
    let cfg = EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(60).seed(41))
        .with_seed(41);
    let index = DistIndex::build(&data, cfg);
    (data, queries, index)
}

fn run(index: &DistIndex, queries: &VectorSet, opts: SearchOptions) -> QueryReport {
    SearchRequest::new(index, queries).opts(opts).run()
}

#[test]
fn quantized_recall_within_a_point_of_exact_through_the_engine() {
    let (data, queries, index) = fixture();
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
    let exact = run(
        &index,
        &queries,
        SearchOptions::new(10).with_quantized(false),
    );
    let quant = run(&index, &queries, SearchOptions::new(10));
    let r_exact = ground_truth::recall_at_k(&exact.results, &gt, 10).mean;
    let r_quant = ground_truth::recall_at_k(&quant.results, &gt, 10).mean;
    assert!(r_exact > 0.8, "exact baseline collapsed: {r_exact}");
    assert!(
        r_quant >= r_exact - 0.01,
        "quantized recall {r_quant} dropped more than 0.01 below exact {r_exact}"
    );
}

#[test]
fn quantized_registry_split_adds_up() {
    let (_, queries, index) = fixture();
    let m_quant = Metrics::new();
    SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10))
        .metrics(&m_quant)
        .run();
    let sq = m_quant.snapshot();
    let quant = sq.counter_total("fastann_dists_quant_total");
    let exact = sq.counter_total("fastann_dists_exact_total");
    assert!(quant > 0, "quantized traversal must be counted");
    assert!(exact > 0, "re-rank evaluations must be counted");
    assert!(
        quant > exact,
        "traversal ({quant}) should dominate re-rank ({exact})"
    );

    let m_exact = Metrics::new();
    SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(10).with_quantized(false))
        .metrics(&m_exact)
        .run();
    let se = m_exact.snapshot();
    assert_eq!(
        se.counter_total("fastann_dists_quant_total"),
        0,
        "exact runs must not count quantized evaluations"
    );
    assert!(se.counter_total("fastann_dists_exact_total") > 0);
}

#[test]
fn quantized_reports_are_thread_bit_identical() {
    let data = synth::deep_like(2_000, 16, 51);
    let queries = synth::queries_near(&data, 16, 0.02, 52);
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let cfg = EngineConfig::new(8, 2)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(51))
            .with_seed(51)
            .with_threads(threads);
        let index = DistIndex::build(&data, cfg);
        reports.push(run(&index, &queries, SearchOptions::new(5)));
    }
    assert_eq!(
        reports[0], reports[1],
        "quantized search must stay bit-identical across thread counts"
    );
}

#[test]
fn higher_rerank_factor_never_hurts_recall() {
    let (data, queries, index) = fixture();
    let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
    let r1 = run(
        &index,
        &queries,
        SearchOptions::new(10).with_rerank_factor(1),
    );
    let r5 = run(
        &index,
        &queries,
        SearchOptions::new(10).with_rerank_factor(5),
    );
    let rec1 = ground_truth::recall_at_k(&r1.results, &gt, 10).mean;
    let rec5 = ground_truth::recall_at_k(&r5.results, &gt, 10).mean;
    assert!(
        rec5 >= rec1 - 1e-9,
        "a larger re-rank pool lost recall: factor 1 -> {rec1}, factor 5 -> {rec5}"
    );
}
