//! The obs determinism contract, end to end through the engine: a
//! seeded chaos run records the same [`fastann_obs::MetricsSnapshot`] —
//! and the same Prometheus rendering, byte for byte — at any
//! `EngineConfig::threads` setting, because every recorded value is
//! virtual-time or counted-work arithmetic and the registry folds are
//! order-invariant (DESIGN.md §10).

use fastann_core::{DistIndex, EngineConfig, RoutingPolicy, SearchOptions, SearchRequest};
use fastann_data::synth;
use fastann_hnsw::HnswConfig;
use fastann_mpisim::FaultPlan;
use fastann_obs::{Metrics, MetricsSnapshot};

fn chaos_snapshot(threads: usize) -> MetricsSnapshot {
    let data = synth::sift_like(2_500, 16, 77);
    let queries = synth::queries_near(&data, 20, 0.02, 78);
    let cfg = EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(77))
        .with_seed(77)
        .with_threads(threads);
    let index = DistIndex::build(&data, cfg);
    let opts = SearchOptions::new(5)
        .with_routing(RoutingPolicy::Static(2))
        .with_timeout_ns(5e5)
        .with_max_retries(2);
    let plan = FaultPlan::new(0xCAFE)
        .drop_msgs(None, None, None, 0.15)
        .delay_msgs(None, None, None, 0.20, 2e6);
    let metrics = Metrics::new();
    // two runs into one registry: accumulation must stay order-invariant
    for _ in 0..2 {
        SearchRequest::new(&index, &queries)
            .opts(opts)
            .chaos(&plan)
            .metrics(&metrics)
            .run();
    }
    metrics.snapshot()
}

#[test]
fn chaos_run_metrics_are_thread_bit_identical() {
    let base = chaos_snapshot(1);
    assert!(
        base.counter_total("fastann_engine_queries_total") > 0,
        "the run must actually record"
    );
    assert!(
        base.counter_total("fastann_chaos_retries_total")
            + base.counter_total("fastann_chaos_timeout_waits_total")
            > 0,
        "the fault plan must actually bite, or the test proves nothing"
    );
    for threads in [2usize, 4] {
        let other = chaos_snapshot(threads);
        assert_eq!(
            base, other,
            "MetricsSnapshot must be bit-identical at threads={threads}"
        );
        assert_eq!(
            base.to_prometheus(),
            other.to_prometheus(),
            "Prometheus rendering must be byte-identical at threads={threads}"
        );
        assert_eq!(
            base.to_json("  "),
            other.to_json("  "),
            "JSON rendering must be byte-identical at threads={threads}"
        );
    }
}

#[test]
fn fault_free_run_records_the_full_pipeline() {
    let data = synth::sift_like(2_000, 16, 55);
    let queries = synth::queries_near(&data, 16, 0.02, 56);
    let cfg = EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(55))
        .with_seed(55);
    let index = DistIndex::build(&data, cfg);
    let metrics = Metrics::new();
    let report = SearchRequest::new(&index, &queries)
        .opts(SearchOptions::new(5).with_one_sided(true))
        .metrics(&metrics)
        .run();
    let snap = metrics.snapshot();

    assert_eq!(
        snap.counter("fastann_engine_queries_total", &[]),
        Some(queries.len() as u64)
    );
    let probes: u64 = report.per_core_queries.iter().sum();
    assert_eq!(
        snap.counter("fastann_engine_probes_total", &[]),
        Some(probes)
    );
    let (fanout_n, fanout_sum) = snap
        .histogram("fastann_router_fanout", &[])
        .expect("router fan-out histogram present");
    assert_eq!(fanout_n, queries.len() as u64);
    assert_eq!(fanout_sum, probes as f64, "fan-out sum is the probe count");
    let (hops_n, _) = snap
        .histogram("fastann_hnsw_hops", &[])
        .expect("hnsw hop histogram present");
    assert_eq!(hops_n, probes, "one local search per probe");
    assert_eq!(
        snap.counter("fastann_master_merge_ops_total", &[("path", "one_sided")]),
        Some(queries.len() as u64)
    );
    assert_eq!(
        snap.counter("fastann_rma_deposits_total", &[]),
        Some(probes),
        "every probe deposits once into the RMA window"
    );
    assert!(
        snap.histogram("fastann_span_ns", &[("stage", "hnsw search")])
            .is_some(),
        "span histogram carries the stage vocabulary"
    );
    // fault-free path must not touch the chaos series
    assert_eq!(snap.counter_total("fastann_chaos_retries_total"), 0);
    assert_eq!(snap.counter_total("fastann_chaos_failovers_total"), 0);
}
