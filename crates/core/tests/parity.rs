//! Deprecated-shim parity: each of the five legacy `search_batch*` entry
//! points must produce a [`QueryReport`] byte-identical (`==` on every
//! field, virtual times included) to the [`SearchRequest`] builder chain
//! it deprecates into — callers migrating to the builder must never see
//! a behaviour change.

#![allow(deprecated)]

use fastann_core::{
    search_batch, search_batch_chaos, search_batch_chaos_traced, search_batch_traced,
    search_batch_with_plan, DistIndex, EngineConfig, SearchOptions, SearchRequest,
};
use fastann_data::{synth, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_mpisim::{FaultPlan, Trace};

fn fixture() -> (VectorSet, DistIndex) {
    let data = synth::sift_like(2_500, 16, 31);
    let queries = synth::queries_near(&data, 20, 0.02, 32);
    let cfg = EngineConfig::new(8, 2)
        .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(31))
        .with_seed(31);
    let index = DistIndex::build(&data, cfg);
    (queries, index)
}

#[test]
fn search_batch_matches_builder() {
    let (queries, index) = fixture();
    for one_sided in [false, true] {
        let opts = SearchOptions::new(5).with_one_sided(one_sided);
        let legacy = search_batch(&index, &queries, &opts);
        let builder = SearchRequest::new(&index, &queries).opts(opts).run();
        assert_eq!(legacy, builder, "one_sided={one_sided}");
    }
}

#[test]
fn search_batch_traced_matches_builder() {
    let (queries, index) = fixture();
    let opts = SearchOptions::new(5);
    let t1 = Trace::new();
    let t2 = Trace::new();
    let legacy = search_batch_traced(&index, &queries, &opts, &t1);
    let builder = SearchRequest::new(&index, &queries)
        .opts(opts)
        .trace(&t2)
        .run();
    assert_eq!(legacy, builder);
    assert_eq!(
        t1.spans().len(),
        t2.spans().len(),
        "both paths must record the same trace volume"
    );
}

#[test]
fn search_batch_chaos_matches_builder() {
    let (queries, index) = fixture();
    let opts = SearchOptions::new(5)
        .with_replication(2)
        .with_timeout_ns(5e5)
        .with_max_retries(2);
    let plan = FaultPlan::new(0xBEEF).drop_msgs(None, None, None, 0.15);
    let legacy = search_batch_chaos(&index, &queries, &opts, &plan);
    let builder = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&plan)
        .run();
    assert_eq!(legacy, builder);
}

#[test]
fn search_batch_with_plan_matches_builder() {
    let (queries, index) = fixture();
    let opts = SearchOptions::new(5).with_timeout_ns(5e5);
    let plan = FaultPlan::new(0xFACE).delay_msgs(None, None, None, 0.25, 1e6);
    for active in [None, Some(&plan)] {
        let legacy = search_batch_with_plan(&index, &queries, &opts, active);
        let builder = SearchRequest::new(&index, &queries)
            .opts(opts)
            .plan(active)
            .run();
        assert_eq!(legacy, builder, "plan active: {}", active.is_some());
    }
}

#[test]
fn search_batch_chaos_traced_matches_builder() {
    let (queries, index) = fixture();
    let opts = SearchOptions::new(5)
        .with_replication(2)
        .with_timeout_ns(5e5)
        .with_max_retries(1);
    let plan = FaultPlan::new(0xD00D).drop_msgs(None, None, None, 0.10);
    let t1 = Trace::new();
    let t2 = Trace::new();
    let legacy = search_batch_chaos_traced(&index, &queries, &opts, &plan, &t1);
    let builder = SearchRequest::new(&index, &queries)
        .opts(opts)
        .chaos(&plan)
        .trace(&t2)
        .run();
    assert_eq!(legacy, builder);
    assert_eq!(t1.spans().len(), t2.spans().len());
}
