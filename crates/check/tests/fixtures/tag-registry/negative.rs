const TAG_GOOD: u64 = 7;

fn send(world: &World, peer: usize, payload: &[u8]) {
    world.send_bytes(peer, TAG_GOOD, payload);
}

fn send_at(world: &World, peer: usize, payload: &[u8], at: u64) {
    let reply_tag = TAG_GOOD;
    world.send_bytes_at(peer, reply_tag, payload, at);
}
