//! Scaled stand-ins for the paper's Table I datasets.
//!
//! | Paper          | points | dim | queries | here (quick)    |
//! |----------------|--------|-----|---------|-----------------|
//! | ANN_SIFT1B     | 1e9    | 128 | 10 000  | 48 000 × 128, 400 |
//! | DEEP1B         | 1e9    | 96  | 10 000  | 48 000 × 96, 400  |
//! | ANN_GIST1M     | 1e6    | 960 | 1 000   | 8 000 × 960, 100  |
//! | SYN_1M         | 1e6    | 512 | 10 000  | 32 000 × 512, 300 |
//! | SYN_10M        | 1e7    | 256 | 10 000  | 64 000 × 256, 300 |
//!
//! The substitution rationale lives in DESIGN.md: dimensionality, value
//! range and cluster structure are preserved; raw point counts are not
//! (the host has 15 GB, the paper's machine had 176 TB aggregate).

use fastann_data::synth::{self, mdcgen};
use fastann_data::VectorSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Scale;

/// A benchmark workload: base vectors plus a query set.
pub struct Workload {
    /// Dataset name (paper nomenclature).
    pub name: &'static str,
    /// Base vectors.
    pub data: VectorSet,
    /// Query vectors.
    pub queries: VectorSet,
    /// Floor the exact-path recall@10 must clear under `perf --gate`;
    /// `0.0` disables the check. Set on the clustered workloads, where a
    /// descent regression (the pre-multi-entry collapse to ≈0.44) would
    /// otherwise pass the recall-*delta* gate unnoticed — both paths can
    /// degrade together.
    pub min_exact_recall: f64,
}

/// ANN_SIFT1B stand-in.
pub fn sift(scale: Scale) -> Workload {
    let n = 48_000 * scale.points_mult();
    let data = synth::sift_like(n, 128, 0x51f7);
    let queries = synth::queries_near(&data, 400, 0.02, 0x51f8);
    Workload {
        name: "ANN_SIFT1B",
        data,
        queries,
        min_exact_recall: 0.0,
    }
}

/// DEEP1B stand-in.
pub fn deep(scale: Scale) -> Workload {
    let n = 48_000 * scale.points_mult();
    let data = synth::deep_like(n, 96, 0xdee9);
    let queries = synth::queries_near(&data, 400, 0.02, 0xdeea);
    Workload {
        name: "DEEP1B",
        data,
        queries,
        min_exact_recall: 0.0,
    }
}

/// ANN_GIST1M stand-in.
pub fn gist(scale: Scale) -> Workload {
    let n = 8_000 * scale.points_mult();
    let data = synth::gist_like(n, 960, 0x915a);
    let queries = synth::queries_near(&data, 100, 0.01, 0x915b);
    Workload {
        name: "ANN_GIST1M",
        data,
        queries,
        min_exact_recall: 0.0,
    }
}

/// SYN_1M stand-in (MDCGen, 10 clusters, mixed spreads, 0.5% outliers,
/// queries from a single cluster with compactness 0.01 — the paper's
/// workload generation).
pub fn syn_1m(scale: Scale) -> Workload {
    let n = 32_000 * scale.points_mult();
    let ds = mdcgen::generate(&mdcgen::MdcConfig {
        n_points: n,
        dim: 512,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: mdcgen::Spread::Mixed,
        seed: 0x517,
    });
    let queries = ds.queries_from_cluster(300, 3, 0.01, 0x518);
    Workload {
        name: "SYN_1M",
        data: ds.points,
        queries,
        min_exact_recall: 0.0,
    }
}

/// SYN_10M stand-in.
pub fn syn_10m(scale: Scale) -> Workload {
    let n = 64_000 * scale.points_mult();
    let ds = mdcgen::generate(&mdcgen::MdcConfig {
        n_points: n,
        dim: 256,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: mdcgen::Spread::Mixed,
        seed: 0x10a7,
    });
    let queries = ds.queries_from_cluster(300, 6, 0.01, 0x10a8);
    Workload {
        name: "SYN_10M",
        data: ds.points,
        queries,
        min_exact_recall: 0.0,
    }
}

/// The clustered-recall regression workload: the exact 32k×512 MDCGen
/// configuration on which single-seed greedy descent collapsed exact
/// recall@10 to ≈0.44 (crates/hnsw clustered_probe, DESIGN.md §13). Fixed
/// size — the point is reproducing that configuration, not scaling —
/// with an exact-recall floor the `perf --gate` leg enforces.
pub fn mdc_32k(_scale: Scale) -> Workload {
    let n = 32_000;
    let ds = mdcgen::generate(&mdcgen::MdcConfig {
        n_points: n,
        dim: 512,
        n_clusters: 10,
        n_outliers: n / 200,
        compactness: 0.05,
        spread: mdcgen::Spread::Mixed,
        seed: 0x517,
    });
    let queries = ds.queries_from_cluster(100, 3, 0.01, 0x518);
    Workload {
        name: "MDC_32K",
        data: ds.points,
        queries,
        min_exact_recall: 0.90,
    }
}

/// The tiny uniform dataset the CI smoke invocation measures.
pub fn smoke(_scale: Scale) -> Workload {
    let data = synth::sift_like(3000, 32, 0xbe9c);
    let queries = synth::queries_near(&data, 60, 0.02, 0xbe9d);
    Workload {
        name: "SYN_SMOKE",
        data,
        queries,
        min_exact_recall: 0.0,
    }
}

/// A *skewed* SIFT-like query set for the load-balancing study (Figure 4):
/// 70% of queries concentrate around a handful of hot points (think "many
/// users querying trending images"), the rest are spread out. This is the
/// imbalance the replication optimisation exists to fix.
pub fn sift_skewed_queries(data: &VectorSet, n: usize, seed: u64) -> VectorSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dim = data.dim();
    let hot: Vec<usize> = (0..3).map(|_| rng.gen_range(0..data.len())).collect();
    let mut out = VectorSet::with_capacity(dim, n);
    let mut row = vec![0f32; dim];
    for i in 0..n {
        let base = if i % 10 < 7 {
            data.get(hot[i % hot.len()])
        } else {
            data.get(rng.gen_range(0..data.len()))
        };
        for (d, x) in row.iter_mut().enumerate() {
            *x = base[d] + 2.0 * (rng.gen::<f32>() - 0.5);
        }
        out.push(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let w = sift(Scale::Quick);
        assert_eq!(w.data.dim(), 128);
        assert_eq!(w.data.len(), 48_000);
        assert_eq!(w.queries.len(), 400);
        let w = gist(Scale::Quick);
        assert_eq!(w.data.dim(), 960);
        let w = syn_1m(Scale::Quick);
        assert_eq!(w.data.dim(), 512);
        assert!(w.data.len() >= 32_000); // + outliers
    }

    #[test]
    fn skewed_queries_have_hot_spots() {
        let w = sift(Scale::Quick);
        let q = sift_skewed_queries(&w.data, 100, 1);
        assert_eq!(q.len(), 100);
        assert_eq!(q.dim(), 128);
    }
}
