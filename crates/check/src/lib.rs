//! # fastann-check — workspace correctness tooling
//!
//! Three subsystems keep the workspace honest:
//!
//! * [`lint`] — a token-stream source analysis over `crates/*/src` and
//!   `src/`: a dependency-free lexer ([`lexer`]) feeds a shared
//!   per-file context ([`engine`]) on which twelve rules run
//!   ([`rules`]) — the eight legacy rules (no bare `unwrap`, no
//!   panicking macros in library code, no wildcard/untagged receives
//!   outside the simulator, registered wire tags, doc comments on
//!   public items, no direct thread spawning, no new `search_batch*`
//!   entry points, `QueryDist`-only HNSW traversal) plus the
//!   `determinism` family that statically rejects nondeterminism
//!   sources (hash-order traversal, wall clocks, thread identity,
//!   par-side accumulation) in the crates under the bit-identity
//!   contract. Justified exceptions live in
//!   `crates/check/allowlist.txt`, optionally pinned to a line; stale
//!   entries fail the lint. The pre-engine textual pass survives as
//!   [`textual`] for the parity regression.
//! * [`race`] — a schedule-perturbation race detector: run the same
//!   workload under K seed-perturbed scheduler interleavings
//!   ([`fastann_mpisim::SchedPerturb`]) and diff the observable events.
//!   Any fault-free divergence is a race, minimized to the first
//!   diverging span with both interleavings' event windows and the
//!   exact reproducing invocation.
//! * the runtime invariant validators themselves live next to the data
//!   structures they check (`Hnsw::validate`, `VpTree::validate`, the
//!   simulator's message-conservation ledger); this crate's CI entry
//!   points make sure they are exercised.
//!
//! The `fastann-check` binary exposes `lint` (with `--json` archiving)
//! and `race` subcommands for `ci.sh`.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod lint;
pub mod race;
pub mod rules;
pub mod textual;
