/root/repo/target/debug/deps/fastann-b4e2459bd4bdd1cf.d: src/bin/fastann.rs

/root/repo/target/debug/deps/fastann-b4e2459bd4bdd1cf: src/bin/fastann.rs

src/bin/fastann.rs:
