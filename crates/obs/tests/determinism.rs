//! The obs determinism contract, attacked three ways: property-tested
//! shard-merge order invariance, concurrent-vs-sequential recording, and
//! exporter stability.

use fastann_obs::{buckets, Metrics, Stage};
use proptest::prelude::*;

/// One recorded observation: `(kind, series, value)`. Kind 0 is a
/// counter add, 1 a gauge fold, 2 a histogram observation; the vendored
/// proptest has no `prop_oneof`, so ops are plain range tuples.
type Op = (u8, u8, u32);

const NAMES: &[&str] = &["fastann_a_total", "fastann_b_total", "fastann_c_total"];
const HNAMES: &[&str] = &["fastann_h1", "fastann_h2"];

fn apply(m: &Metrics, op: &Op) {
    let (kind, name, v) = *op;
    match kind {
        0 => m.inc(NAMES[name as usize % NAMES.len()], &[], u64::from(v)),
        1 => m.gauge_max(
            "fastann_gauge",
            &[("g", NAMES[name as usize % NAMES.len()])],
            f64::from(v),
        ),
        _ => m.observe(
            HNAMES[name as usize % HNAMES.len()],
            &[],
            f64::from(v) / 16.0,
            buckets::COUNT,
        ),
    }
}

proptest! {
    /// Splitting a stream of observations into per-thread shards and
    /// merging the shards — in any order — snapshots identically to
    /// recording the whole stream into one registry.
    #[test]
    fn shard_merge_is_order_invariant(
        ops in collection::vec((0u8..3, 0u8..8, 0u32..100_000), 0..120),
        n_shards in 1usize..5,
        merge_rev in 0u8..2,
    ) {
        let whole = Metrics::new();
        for op in &ops {
            apply(&whole, op);
        }

        let shards: Vec<Metrics> = (0..n_shards).map(|_| Metrics::new()).collect();
        for (i, op) in ops.iter().enumerate() {
            apply(&shards[i % n_shards], op);
        }
        let merged = Metrics::new();
        let order: Vec<&Metrics> = if merge_rev == 1 {
            shards.iter().rev().collect()
        } else {
            shards.iter().collect()
        };
        for s in order {
            merged.merge_from(s);
        }

        prop_assert_eq!(whole.snapshot(), merged.snapshot());
        prop_assert_eq!(
            whole.snapshot().to_prometheus(),
            merged.snapshot().to_prometheus()
        );
    }
}

/// Recording the same observations from 1 thread and from 4 concurrently
/// racing threads (interleaving chosen by the OS scheduler) produces
/// bit-identical snapshots — the property the engine's per-rank threads
/// rely on when they share one handle.
#[test]
fn concurrent_recording_matches_sequential() {
    let work: Vec<(usize, u64)> = (0..400).map(|i| (i % 7, (i as u64 % 13) + 1)).collect();

    let seq = Metrics::new();
    for &(stage, n) in &work {
        seq.inc("fastann_ops_total", &[], n);
        seq.observe("fastann_work", &[], n as f64 * 3.0, buckets::WORK);
        seq.span(Stage::LocalSearch, 0.0, (stage as f64 + 1.0) * 1e4);
    }

    for _ in 0..8 {
        let conc = Metrics::new();
        std::thread::scope(|scope| {
            for chunk in work.chunks(work.len() / 4 + 1) {
                let handle = conc.clone();
                scope.spawn(move || {
                    for &(stage, n) in chunk {
                        handle.inc("fastann_ops_total", &[], n);
                        handle.observe("fastann_work", &[], n as f64 * 3.0, buckets::WORK);
                        handle.span(Stage::LocalSearch, 0.0, (stage as f64 + 1.0) * 1e4);
                    }
                });
            }
        });
        assert_eq!(
            seq.snapshot(),
            conc.snapshot(),
            "schedule interleaving leaked into the snapshot"
        );
    }
}

/// Exporters are pure functions of the snapshot: rendering twice gives
/// the same bytes, and equal snapshots render equal bytes.
#[test]
fn exporters_are_stable() {
    let m = Metrics::new();
    m.inc("fastann_x_total", &[("part", "3")], 9);
    m.observe("fastann_ns", &[], 1234.5, buckets::NS);
    m.gauge_max("fastann_depth", &[], 17.0);
    let s1 = m.snapshot();
    let s2 = m.snapshot();
    assert_eq!(s1, s2);
    assert_eq!(s1.to_prometheus(), s2.to_prometheus());
    assert_eq!(s1.to_json(""), s2.to_json(""));
}
