/root/repo/target/debug/deps/fastann_vptree-172c746fbe07f331.d: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_vptree-172c746fbe07f331.rmeta: crates/vptree/src/lib.rs crates/vptree/src/partition.rs crates/vptree/src/tree.rs crates/vptree/src/vantage.rs Cargo.toml

crates/vptree/src/lib.rs:
crates/vptree/src/partition.rs:
crates/vptree/src/tree.rs:
crates/vptree/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
