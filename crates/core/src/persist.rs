//! Distributed-index persistence: save a built [`DistIndex`] to one file
//! and load it back — "build once on the cluster, serve many batches
//! later" without paying construction again.
//!
//! Format (little endian):
//!
//! ```text
//! header:  magic "FANNDIST" | version u32 | payload_len u64 | fnv1a64 u64
//! payload: metric u8 | n_cores u32 | cores_per_node u32 | seed u64
//!          hnsw: m u32 | m_max0 u32 | ef_construction u32 | level_mult f64
//!          route: margin f32 | max_partitions u64
//!          router: len u64 | PartitionTree bytes    (VP-tree routers only)
//!          partitions: n_cores × [ids: len u32, u32… | hnsw: len u64, bytes…]
//! ```
//!
//! The header carries the payload length and an FNV-1a-64 checksum over the
//! payload bytes, so a truncated or bit-flipped snapshot fails loading with
//! a typed error ([`PersistError::Format`] / [`PersistError::Checksum`])
//! instead of deserializing garbage into a live index.
//!
//! Only the paper's configuration (VP-tree router + HNSW local indexes) is
//! persistable; exact/brute local indexes rebuild quickly from data, and
//! flat-pivot indexes exist as an experimental baseline.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use fastann_data::Distance;
use fastann_hnsw::Hnsw;
use fastann_vptree::PartitionTree;

use crate::build::{DistIndex, Partition};
use crate::config::EngineConfig;
use crate::local::LocalIndex;
use crate::router::Router;
use crate::stats::BuildStats;

const MAGIC: &[u8; 8] = b"FANNDIST";
const VERSION: u32 = 2;

/// FNV-1a 64-bit over `bytes` — the snapshot payload checksum. Chosen for
/// being dependency-free and byte-order independent; this guards against
/// accidental corruption (truncation, bit rot, partial writes), not
/// adversaries.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised when persisting or loading a distributed index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structural problem in the file.
    Format(String),
    /// The payload bytes do not hash to the checksum the header recorded —
    /// the snapshot was corrupted after it was written.
    Checksum {
        /// Checksum recorded in the snapshot header.
        expected: u64,
        /// Checksum computed over the payload actually read.
        found: u64,
    },
    /// The index configuration cannot be persisted (non-HNSW local index
    /// or non-VP-tree router).
    Unsupported(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
            PersistError::Checksum { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            PersistError::Unsupported(m) => write!(f, "unsupported configuration: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn metric_code(d: Distance) -> u8 {
    match d {
        Distance::L2 => 0,
        Distance::SquaredL2 => 1,
        Distance::L1 => 2,
        Distance::Chebyshev => 3,
        Distance::Cosine => 4,
        Distance::NegativeDot => 5,
    }
}

fn metric_from(c: u8) -> Result<Distance, PersistError> {
    Ok(match c {
        0 => Distance::L2,
        1 => Distance::SquaredL2,
        2 => Distance::L1,
        3 => Distance::Chebyshev,
        4 => Distance::Cosine,
        5 => Distance::NegativeDot,
        x => return Err(PersistError::Format(format!("unknown metric code {x}"))),
    })
}

fn rd_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), PersistError> {
    r.read_exact(buf)
        .map_err(|_| PersistError::Format("truncated".into()))
}

fn rd_u32(r: &mut impl Read) -> Result<u32, PersistError> {
    let mut b = [0u8; 4];
    rd_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn rd_u64(r: &mut impl Read) -> Result<u64, PersistError> {
    let mut b = [0u8; 8];
    rd_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

impl DistIndex {
    /// Writes the index to `path`.
    ///
    /// # Errors
    /// [`PersistError::Unsupported`] unless every partition is HNSW-backed
    /// and the router is a VP tree; IO errors pass through.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        let Router::VpTree(tree) = &*self.router else {
            return Err(PersistError::Unsupported("only VP-tree routers persist"));
        };
        // Build the payload in memory first: the header needs its length
        // and checksum, and the indexes being persisted fit in memory by
        // construction.
        let mut payload: Vec<u8> = Vec::new();
        payload.push(metric_code(self.config.metric));
        payload.extend_from_slice(&(self.config.n_cores as u32).to_le_bytes());
        payload.extend_from_slice(&(self.config.cores_per_node as u32).to_le_bytes());
        payload.extend_from_slice(&self.config.seed.to_le_bytes());
        let h = &self.config.hnsw;
        payload.extend_from_slice(&(h.m as u32).to_le_bytes());
        payload.extend_from_slice(&(h.m_max0 as u32).to_le_bytes());
        payload.extend_from_slice(&(h.ef_construction as u32).to_le_bytes());
        payload.extend_from_slice(&h.level_mult.to_bits().to_le_bytes());
        payload.extend_from_slice(&self.config.route.margin_frac.to_bits().to_le_bytes());
        payload.extend_from_slice(&(self.config.route.max_partitions as u64).to_le_bytes());
        let skel = tree.to_bytes();
        payload.extend_from_slice(&(skel.len() as u64).to_le_bytes());
        payload.extend_from_slice(&skel);
        for p in self.partitions.iter() {
            let LocalIndex::Hnsw(hnsw) = &p.index else {
                return Err(PersistError::Unsupported("only HNSW partitions persist"));
            };
            payload.extend_from_slice(&(p.global_ids.len() as u32).to_le_bytes());
            for &id in &p.global_ids {
                payload.extend_from_slice(&id.to_le_bytes());
            }
            let bytes = hnsw.to_bytes();
            payload.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            payload.extend_from_slice(&bytes);
        }

        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&fnv1a64(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
        w.flush()?;
        Ok(())
    }

    /// Loads an index previously written by [`DistIndex::save`].
    ///
    /// Construction statistics are not persisted; the loaded index carries
    /// partition sizes only.
    pub fn load(path: impl AsRef<Path>) -> Result<DistIndex, PersistError> {
        // magic 8 + version 4 + payload_len 8 + checksum 8
        const HEADER_LEN: u64 = 28;
        let file_len = std::fs::metadata(path.as_ref())?.len();
        let mut file = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        rd_exact(&mut file, &mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format("bad magic".into()));
        }
        let version = rd_u32(&mut file)?;
        if version != VERSION {
            return Err(PersistError::Format(format!(
                "unsupported version {version}"
            )));
        }
        let payload_len = rd_u64(&mut file)? as usize;
        let expected = rd_u64(&mut file)?;
        // validate the recorded length against the real file size *before*
        // allocating: a corrupted length field must not drive a huge
        // allocation, and a mismatch (truncation, trailing garbage) is a
        // structural error in its own right
        if file_len < HEADER_LEN || payload_len as u64 != file_len - HEADER_LEN {
            return Err(PersistError::Format(format!(
                "payload length {payload_len} does not match file size {file_len}"
            )));
        }
        let mut payload = vec![0u8; payload_len];
        rd_exact(&mut file, &mut payload)?;
        let found = fnv1a64(&payload);
        if found != expected {
            return Err(PersistError::Checksum { expected, found });
        }

        let mut r: &[u8] = &payload;
        let mut mc = [0u8; 1];
        rd_exact(&mut r, &mut mc)?;
        let metric = metric_from(mc[0])?;
        let n_cores = rd_u32(&mut r)? as usize;
        let cores_per_node = rd_u32(&mut r)? as usize;
        let seed = rd_u64(&mut r)?;
        if n_cores == 0
            || !n_cores.is_power_of_two()
            || !n_cores.is_multiple_of(cores_per_node.max(1))
        {
            return Err(PersistError::Format("implausible cluster shape".into()));
        }
        let m = rd_u32(&mut r)? as usize;
        let m_max0 = rd_u32(&mut r)? as usize;
        let ef_construction = rd_u32(&mut r)? as usize;
        let level_mult = f64::from_bits(rd_u64(&mut r)?);
        let margin_frac = f32::from_bits(rd_u32(&mut r)?);
        let max_partitions = rd_u64(&mut r)? as usize;

        let skel_len = rd_u64(&mut r)? as usize;
        let mut skel = vec![0u8; skel_len];
        rd_exact(&mut r, &mut skel)?;
        let tree = PartitionTree::from_bytes(&skel, metric);
        if tree.n_partitions() != n_cores {
            return Err(PersistError::Format(
                "skeleton / core-count mismatch".into(),
            ));
        }

        let mut partitions = Vec::with_capacity(n_cores);
        for pid in 0..n_cores {
            let n_ids = rd_u32(&mut r)? as usize;
            let mut ids = Vec::with_capacity(n_ids);
            for _ in 0..n_ids {
                ids.push(rd_u32(&mut r)?);
            }
            let blob_len = rd_u64(&mut r)? as usize;
            let mut blob = vec![0u8; blob_len];
            rd_exact(&mut r, &mut blob)?;
            let hnsw = Hnsw::from_bytes(&blob)
                .map_err(|e| PersistError::Format(format!("partition {pid}: {e}")))?;
            if hnsw.len() != n_ids {
                return Err(PersistError::Format(format!(
                    "partition {pid}: {} ids but {} vectors",
                    n_ids,
                    hnsw.len()
                )));
            }
            partitions.push(Partition {
                id: pid as u32,
                global_ids: ids,
                index: LocalIndex::Hnsw(hnsw),
            });
        }
        if !r.is_empty() {
            return Err(PersistError::Format(format!(
                "{} unparsed bytes inside payload",
                r.len()
            )));
        }

        let mut config = EngineConfig::new(n_cores, cores_per_node);
        config.metric = metric;
        config.seed = seed;
        config.hnsw.m = m;
        config.hnsw.m_max0 = m_max0;
        config.hnsw.ef_construction = ef_construction;
        config.hnsw.level_mult = level_mult;
        config.route.margin_frac = margin_frac;
        config.route.max_partitions = max_partitions;

        let build_stats = BuildStats {
            partition_sizes: partitions.iter().map(|p| p.global_ids.len()).collect(),
            ..BuildStats::default()
        };
        Ok(DistIndex {
            config,
            partitions: Arc::new(partitions),
            router: Arc::new(Router::VpTree(tree)),
            build_stats,
            mutation_epoch: 0,
            mutation_log: crate::mutation::MutationLog::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchOptions;
    use crate::request::SearchRequest;
    use fastann_data::synth;
    use fastann_hnsw::HnswConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fastann_persist_{name}.idx"))
    }

    fn build_one(seed: u64) -> (fastann_data::VectorSet, DistIndex) {
        let data = synth::sift_like(2_000, 12, seed);
        let cfg = EngineConfig::new(8, 2)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
            .with_seed(seed);
        (data.clone(), DistIndex::build(&data, cfg))
    }

    #[test]
    fn save_load_preserves_results() {
        let (data, index) = build_one(81);
        let path = tmp("roundtrip");
        index.save(&path).expect("save");
        let back = DistIndex::load(&path).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(back.n_partitions(), index.n_partitions());
        assert_eq!(back.dim(), index.dim());
        let queries = synth::queries_near(&data, 15, 0.02, 82);
        let a = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10))
            .run();
        let b = SearchRequest::new(&back, &queries)
            .opts(SearchOptions::new(10))
            .run();
        assert_eq!(a.results, b.results, "loaded index must answer identically");
    }

    #[test]
    fn validator_accepts_loaded_index() {
        let (data, index) = build_one(86);
        let path = tmp("validate");
        index.save(&path).expect("save to temp dir succeeds");
        let back = DistIndex::load(&path).expect("load of just-saved index succeeds");
        std::fs::remove_file(&path).ok();

        // every loaded partition graph upholds the HNSW invariants …
        for part in back.partitions.iter() {
            let crate::local::LocalIndex::Hnsw(h) = &part.index else {
                panic!("persisted engine partitions are HNSW");
            };
            h.validate()
                .expect("loaded partition upholds every structural invariant");
        }
        // … the router skeleton upholds the VP-tree invariants …
        let Router::VpTree(tree) = back.router.as_ref() else {
            panic!("persisted engine router is a VP tree");
        };
        tree.validate()
            .expect("loaded router upholds every structural invariant");

        // … and the loaded index answers bit-identically.
        let queries = synth::queries_near(&data, 12, 0.02, 87);
        let a = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10))
            .run();
        let b = SearchRequest::new(&back, &queries)
            .opts(SearchOptions::new(10))
            .run();
        assert_eq!(a.results, b.results, "results must be bit-identical");
        for (ra, rb) in a.results.iter().zip(&b.results) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
        }
    }

    #[test]
    fn non_hnsw_index_refuses_to_save() {
        let data = synth::sift_like(500, 8, 83);
        let cfg = EngineConfig::new(4, 2)
            .with_local_index(crate::local::LocalIndexKind::VpExact)
            .with_seed(83);
        let index = DistIndex::build(&data, cfg);
        let err = index.save(tmp("refuse")).unwrap_err();
        assert!(matches!(err, PersistError::Unsupported(_)));
    }

    #[test]
    fn flat_pivot_router_refuses_to_save() {
        let data = synth::sift_like(500, 8, 84);
        let index = DistIndex::build_flat_pivot(&data, EngineConfig::new(4, 2).with_seed(84));
        let err = index.save(tmp("refuse2")).unwrap_err();
        assert!(matches!(err, PersistError::Unsupported(_)));
    }

    #[test]
    fn corrupted_file_rejected() {
        let (_, index) = build_one(85);
        let path = tmp("corrupt");
        index.save(&path).expect("save to temp dir succeeds");
        let mut bytes = std::fs::read(&path).expect("saved file is readable");
        let cut = bytes.len() / 2;
        bytes.truncate(cut);
        std::fs::write(&path, &bytes).expect("rewrite of corrupted bytes succeeds");
        let res = DistIndex::load(&path);
        std::fs::remove_file(&path).ok();
        let Err(err) = res else {
            panic!("corrupted file must not load")
        };
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        // a single flipped bit — wherever it lands: magic, version, length,
        // checksum, or payload — must surface as a typed error, never as a
        // silently-wrong index and never as an `Ok`
        let (_, index) = build_one(88);
        let path = tmp("bitflip");
        index.save(&path).expect("save to temp dir succeeds");
        let clean = std::fs::read(&path).expect("saved file is readable");
        assert!(clean.len() > 28, "file has a header and a payload");

        // sweep the whole header plus payload offsets spread across the file
        let mut offsets: Vec<usize> = (0..28).collect();
        offsets.extend((28..clean.len()).step_by((clean.len() / 64).max(1)));
        offsets.push(clean.len() - 1);

        for off in offsets {
            let mut bytes = clean.clone();
            bytes[off] ^= 0x10;
            std::fs::write(&path, &bytes).expect("rewrite of corrupted bytes succeeds");
            let res = DistIndex::load(&path);
            let Err(err) = res else {
                panic!("bit flip at offset {off} must not load")
            };
            assert!(
                matches!(err, PersistError::Format(_) | PersistError::Checksum { .. }),
                "offset {off}: unexpected error class {err}"
            );
        }

        // flipping a payload byte specifically must be caught by the
        // checksum (the structural parser alone cannot see most of these)
        let mut bytes = clean.clone();
        let mid = 28 + (clean.len() - 28) / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite of corrupted bytes succeeds");
        let Err(err) = DistIndex::load(&path) else {
            panic!("payload flip must fail")
        };
        assert!(
            matches!(err, PersistError::Checksum { expected, found } if expected != found),
            "payload flip must be a checksum error, got {err}"
        );

        // the pristine bytes still load (the sweep itself is not destructive)
        std::fs::write(&path, &clean).expect("restore clean bytes");
        let back = DistIndex::load(&path).expect("clean file loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(back.n_partitions(), index.n_partitions());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (_, index) = build_one(89);
        let path = tmp("trailing");
        index.save(&path).expect("save to temp dir succeeds");
        let mut bytes = std::fs::read(&path).expect("saved file is readable");
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).expect("rewrite succeeds");
        let res = DistIndex::load(&path);
        std::fs::remove_file(&path).ok();
        let Err(err) = res else {
            panic!("trailing bytes must not load")
        };
        assert!(matches!(err, PersistError::Format(_)));
    }

    #[test]
    fn missing_file_is_io_error() {
        let Err(err) = DistIndex::load("/nonexistent/fastann.idx") else {
            panic!("missing file must not load")
        };
        assert!(matches!(err, PersistError::Io(_)));
    }
}
