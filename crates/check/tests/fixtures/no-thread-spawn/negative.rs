// thread::spawn( in a comment is not a finding, and neither is the
// string form below — work goes through the chunked pool instead.

fn run(pool: &Pool) -> usize {
    let banned = "thread::Builder::new()";
    let _ = banned;
    pool.run_chunked(|chunk| chunk.len())
}
