//! `fastann-obs` — deterministic observability for the fastann workspace.
//!
//! The crate provides one [`Metrics`] registry holding counters, gauges
//! and fixed-bucket histograms, a [`MetricsSnapshot`] export (Prometheus
//! text format and JSON), and the [`Stage`] vocabulary that names every
//! instrumented segment of the query path — the same labels the
//! `fastann_mpisim` Gantt trace renders.
//!
//! # Determinism contract
//!
//! Snapshots are **bit-identical across `FASTANN_THREADS` settings** and
//! across schedule perturbations, the same contract the engine's
//! `QueryReport` and the serving runtime's `ServeReport` already honour.
//! That holds because every mutation of the registry is an
//! order-invariant fold:
//!
//! * counters add `u64`s (addition is associative and commutative);
//! * gauges keep the `f64` **maximum** seen (max is associative and
//!   commutative, and the observed values themselves are deterministic
//!   virtual-time quantities);
//! * histograms bump `u64` bucket counts against bounds fixed at compile
//!   time, and accumulate their sum in **fixed-point** (each observation
//!   is scaled by 1024 and rounded to a `u64` *before* accumulation), so
//!   no floating-point addition order can leak into the total.
//!
//! Worker threads may therefore record into one shared handle (it is
//! `Clone + Send + Sync`) in any interleaving, or into per-thread shards
//! later combined with [`Metrics::merge_from`] — the snapshot is the
//! same either way, in any merge order.

#![forbid(unsafe_code)]

mod metrics;
mod snapshot;
mod stage;

pub use metrics::{buckets, Metrics};
pub use snapshot::{MetricEntry, MetricsSnapshot, ValueSnapshot};
pub use stage::Stage;
