/root/repo/target/debug/deps/engine-854652beaa762e5d.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-854652beaa762e5d.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
