/root/repo/target/debug/deps/fastann_hnsw-aeab291f944300e7.d: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_hnsw-aeab291f944300e7.rmeta: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs Cargo.toml

crates/hnsw/src/lib.rs:
crates/hnsw/src/config.rs:
crates/hnsw/src/graph.rs:
crates/hnsw/src/index.rs:
crates/hnsw/src/scratch.rs:
crates/hnsw/src/select.rs:
crates/hnsw/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
