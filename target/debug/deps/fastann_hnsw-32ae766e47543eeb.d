/root/repo/target/debug/deps/fastann_hnsw-32ae766e47543eeb.d: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

/root/repo/target/debug/deps/libfastann_hnsw-32ae766e47543eeb.rlib: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

/root/repo/target/debug/deps/libfastann_hnsw-32ae766e47543eeb.rmeta: crates/hnsw/src/lib.rs crates/hnsw/src/config.rs crates/hnsw/src/graph.rs crates/hnsw/src/index.rs crates/hnsw/src/scratch.rs crates/hnsw/src/select.rs crates/hnsw/src/serialize.rs

crates/hnsw/src/lib.rs:
crates/hnsw/src/config.rs:
crates/hnsw/src/graph.rs:
crates/hnsw/src/index.rs:
crates/hnsw/src/scratch.rs:
crates/hnsw/src/select.rs:
crates/hnsw/src/serialize.rs:
