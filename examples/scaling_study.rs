//! Mini strong-scaling study using the library API directly — a compact
//! version of the paper's Figure 3 that also demonstrates the simulator's
//! per-phase accounting.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use fastann::core::{DistIndex, EngineConfig, SearchOptions, SearchRequest};
use fastann::data::synth;
use fastann::hnsw::HnswConfig;

fn main() {
    let data = synth::sift_like(30_000, 96, 3);
    let queries = synth::queries_near(&data, 300, 0.02, 4);

    println!(
        "strong scaling of 10-NN over {} x {}d points, {} queries",
        data.len(),
        data.dim(),
        queries.len()
    );
    println!(
        "{:>6} {:>12} {:>9} {:>12} {:>12}",
        "cores", "query time", "speedup", "build time", "comm share"
    );

    let mut base: Option<f64> = None;
    for cores in [4usize, 8, 16, 32, 64] {
        let config = EngineConfig::new(cores, 4.min(cores))
            .with_hnsw(HnswConfig::with_m(12).ef_construction(50));
        let index = DistIndex::build(&data, config);
        let report = SearchRequest::new(&index, &queries)
            .opts(SearchOptions::new(10))
            .run();
        let b = *base.get_or_insert(report.total_ns);
        let (_, comm, _) = report.breakdown();
        println!(
            "{:>6} {:>12} {:>8.2}x {:>12} {:>11.1}%",
            cores,
            format!("{:.2} ms", report.total_ns / 1e6),
            b / report.total_ns,
            format!("{:.0} ms", index.build_stats.total_ns / 1e6),
            comm * 100.0,
        );
    }
    println!("\n(virtual times from the simulated cluster; see DESIGN.md for the model)");
}
