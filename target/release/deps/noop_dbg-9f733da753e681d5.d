/root/repo/target/release/deps/noop_dbg-9f733da753e681d5.d: crates/core/tests/noop_dbg.rs

/root/repo/target/release/deps/noop_dbg-9f733da753e681d5: crates/core/tests/noop_dbg.rs

crates/core/tests/noop_dbg.rs:
