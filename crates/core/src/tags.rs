//! Central message-tag registry.
//!
//! Every tag a protocol in this workspace puts on the wire is declared
//! here, with its namespace (which protocol owns it) and its
//! protected/faultable classification. Two consumers keep the table
//! honest:
//!
//! * the chaos engine derives its fault-plan protect list from
//!   [`protected_values`], so the classification here *is* the behaviour —
//!   a tag marked protected cannot be dropped, delayed or duplicated by a
//!   [`fastann_mpisim::FaultPlan`] on the chaos path;
//! * `fastann-check lint` cross-checks every `const TAG_*` declaration and
//!   every tag passed to `send_bytes`/`send_bytes_at` in library code
//!   against this table, so an unregistered tag fails CI.
//!
//! Protected tags form the control plane: shutdown markers and the flush
//! handshake the fault-tolerant master uses as its failure detector (a
//! perfect detector in the ULFM sense). Faultable tags are the data plane
//! — queries and results — which the retry/failover machinery can recover.

/// One registered wire tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagSpec {
    /// Protocol that owns the tag: `"engine"` (master–worker search),
    /// `"owner"` (multiple-owner search), `"build"` (distributed VP-tree
    /// construction), `"kdtree"` (distributed KD-tree build/search).
    pub namespace: &'static str,
    /// Constant name as it appears in source.
    pub name: &'static str,
    /// Wire value (bit 63 is reserved for collective-internal traffic and
    /// never appears here).
    pub value: u64,
    /// `true` for control-plane tags that fault injection must never touch.
    pub protected: bool,
    /// One-line purpose.
    pub doc: &'static str,
}

/// The registry. Keep entries grouped by namespace and sorted by value;
/// `fastann-check lint` parses this table textually (name/value/protected
/// per entry), so keep one field per line.
pub const TAG_TABLE: &[TagSpec] = &[
    TagSpec {
        namespace: "engine",
        name: "TAG_QUERY",
        value: 201,
        protected: false,
        doc: "master -> worker: one (query, partition) work item",
    },
    TagSpec {
        namespace: "engine",
        name: "TAG_RESULT",
        value: 202,
        protected: false,
        doc: "worker -> master: one answered probe",
    },
    TagSpec {
        namespace: "engine",
        name: "TAG_END",
        value: 203,
        protected: true,
        doc: "master -> worker: batch over, shut down",
    },
    TagSpec {
        namespace: "engine",
        name: "TAG_DONE",
        value: 204,
        protected: true,
        doc: "worker -> master: all one-sided deposits posted",
    },
    TagSpec {
        namespace: "engine",
        name: "TAG_FLUSH",
        value: 205,
        protected: true,
        doc: "master -> worker: acknowledge once queued work is served",
    },
    TagSpec {
        namespace: "engine",
        name: "TAG_FLUSH_ACK",
        value: 206,
        protected: true,
        doc: "worker -> master: answer to TAG_FLUSH",
    },
    TagSpec {
        namespace: "owner",
        name: "TAG_QUERY",
        value: 301,
        protected: false,
        doc: "owner -> target node: one (query, partition) work item",
    },
    TagSpec {
        namespace: "owner",
        name: "TAG_RESULT",
        value: 302,
        protected: false,
        doc: "target node -> owner: one answered probe",
    },
    TagSpec {
        namespace: "owner",
        name: "TAG_COUNT",
        value: 303,
        protected: true,
        doc: "node -> node: how many queries to expect from the sender",
    },
    TagSpec {
        namespace: "build",
        name: "TAG_SUBTREE",
        value: 101,
        protected: true,
        doc: "builder -> builder: a merged VP-tree subtree during construction",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_P1",
        value: 1,
        protected: false,
        doc: "master -> worker: phase-1 probe to the home leaf",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_P2",
        value: 2,
        protected: false,
        doc: "master -> worker: phase-2 probe to an overlapping leaf",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_R1",
        value: 3,
        protected: false,
        doc: "worker -> master: phase-1 answer",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_R2",
        value: 4,
        protected: false,
        doc: "worker -> master: phase-2 answer",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_END",
        value: 5,
        protected: true,
        doc: "master -> worker: batch over, shut down",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_SKEL",
        value: 6,
        protected: true,
        doc: "builder -> master: the serialized tree skeleton",
    },
    TagSpec {
        namespace: "kdtree",
        name: "TAG_SUBTREE",
        value: 7,
        protected: true,
        doc: "builder -> builder: a merged subtree during construction",
    },
];

/// Wire values of the protected (control-plane) tags of `namespace` — the
/// list the chaos engine hands to [`fastann_mpisim::FaultPlan::protect`].
pub fn protected_values(namespace: &str) -> Vec<u64> {
    TAG_TABLE
        .iter()
        .filter(|t| t.namespace == namespace && t.protected)
        .map(|t| t.value)
        .collect()
}

/// Looks up the spec of `value` within `namespace`.
pub fn spec_of(namespace: &str, value: u64) -> Option<&'static TagSpec> {
    TAG_TABLE
        .iter()
        .find(|t| t.namespace == namespace && t.value == value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_and_names_unique_within_namespace() {
        for (i, a) in TAG_TABLE.iter().enumerate() {
            for b in &TAG_TABLE[i + 1..] {
                if a.namespace == b.namespace {
                    assert_ne!(
                        a.value, b.value,
                        "{}/{} value collision",
                        a.namespace, a.name
                    );
                    assert_ne!(a.name, b.name, "{}/{} name collision", a.namespace, a.name);
                }
            }
        }
    }

    #[test]
    fn no_tag_uses_the_collective_bit() {
        for t in TAG_TABLE {
            assert_eq!(t.value >> 63, 0, "{} claims the collective bit", t.name);
        }
    }

    #[test]
    fn engine_constants_match_registry() {
        use crate::engine;
        for (value, name) in [
            (engine::TAG_QUERY, "TAG_QUERY"),
            (engine::TAG_RESULT, "TAG_RESULT"),
            (engine::TAG_END, "TAG_END"),
            (engine::TAG_DONE, "TAG_DONE"),
            (engine::TAG_FLUSH, "TAG_FLUSH"),
            (engine::TAG_FLUSH_ACK, "TAG_FLUSH_ACK"),
        ] {
            let spec = spec_of("engine", value).expect("engine tag registered");
            assert_eq!(spec.name, name);
        }
    }

    #[test]
    fn engine_protect_list_is_control_plane() {
        use crate::engine;
        let p = protected_values("engine");
        assert!(p.contains(&engine::TAG_END));
        assert!(p.contains(&engine::TAG_FLUSH));
        assert!(p.contains(&engine::TAG_FLUSH_ACK));
        assert!(
            !p.contains(&engine::TAG_QUERY),
            "data plane must stay faultable"
        );
        assert!(
            !p.contains(&engine::TAG_RESULT),
            "data plane must stay faultable"
        );
    }
}
