//! Bucketed KD tree with exact k-NN search.

use fastann_data::select::select_nth;
use fastann_data::{Distance, Neighbor, TopK, VectorSet};

/// Construction parameters for [`KdTree`].
#[derive(Clone, Copy, Debug)]
pub struct KdTreeConfig {
    /// Maximum points per leaf bucket. PANDA keeps SIMD-friendly buckets;
    /// our leaves are scanned with the vectorised kernels of
    /// `fastann-data`.
    pub bucket_size: usize,
}

impl Default for KdTreeConfig {
    fn default() -> Self {
        Self { bucket_size: 32 }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Inner {
        dim: u32,
        split: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        start: u32,
        end: u32,
    },
}

/// Per-search accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KdSearchStats {
    /// Distance evaluations performed (leaf scans).
    pub ndist: u64,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Leaves scanned.
    pub leaves_visited: u64,
}

/// An exact k-NN KD tree over an owned [`VectorSet`]. Splits are at the
/// coordinate median of the widest-spread dimension.
///
/// Only [`Distance::L2`] / [`Distance::SquaredL2`] queries are supported:
/// axis-aligned plane pruning is tight for Euclidean balls (the reason the
/// paper calls KD trees poorly suited to other metrics).
pub struct KdTree {
    data: VectorSet,
    ids: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
    config: KdTreeConfig,
}

impl KdTree {
    /// Builds the tree.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn build(data: VectorSet, config: KdTreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot build a KD tree over an empty set");
        assert!(config.bucket_size >= 1, "bucket size must be at least 1");
        let mut ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut nodes = Vec::new();
        let n = ids.len();
        let root = build_rec(&data, &config, &mut ids, 0, n, &mut nodes);
        Self {
            data,
            ids,
            nodes,
            root,
            config,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no points are indexed (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The construction configuration.
    pub fn config(&self) -> &KdTreeConfig {
        &self.config
    }

    /// Tree depth in edges.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], n: u32) -> usize {
            match &nodes[n as usize] {
                Node::Leaf { .. } => 0,
                Node::Inner { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, self.root)
    }

    /// Exact k-nearest neighbours under L2.
    pub fn knn(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, KdSearchStats) {
        self.knn_with_seed(q, k, &[])
    }

    /// Exact k-NN seeded with candidates already known (used by the
    /// distributed second phase: the home partition's results bound the
    /// search radius from the start). Seeds must carry **L2** distances;
    /// ids of seeds are preserved in the output and assumed disjoint from
    /// this tree's ids.
    pub fn knn_with_seed(
        &self,
        q: &[f32],
        k: usize,
        seed: &[Neighbor],
    ) -> (Vec<Neighbor>, KdSearchStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        let mut top = TopK::new(k);
        for &s in seed {
            top.push(s);
        }
        let mut stats = KdSearchStats::default();
        self.search_rec(self.root, q, &mut top, &mut stats, 0.0);
        (top.into_sorted(), stats)
    }

    /// `cell_dist2` is the squared distance from `q` to the current node's
    /// cell (0 along the descent into the containing cell).
    fn search_rec(
        &self,
        node: u32,
        q: &[f32],
        top: &mut TopK,
        stats: &mut KdSearchStats,
        cell_dist2: f32,
    ) {
        stats.nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                stats.leaves_visited += 1;
                for &id in &self.ids[*start as usize..*end as usize] {
                    stats.ndist += 1;
                    let d = Distance::L2.eval(q, self.data.get(id as usize));
                    top.push(Neighbor::new(id, d));
                }
            }
            Node::Inner {
                dim,
                split,
                left,
                right,
            } => {
                let diff = q[*dim as usize] - split;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search_rec(near, q, top, stats, cell_dist2);
                let far_dist2 = cell_dist2 + diff * diff;
                let tau = top.prune_radius();
                if far_dist2.sqrt() <= tau {
                    self.search_rec(far, q, top, stats, far_dist2);
                }
            }
        }
    }
}

impl std::fmt::Debug for KdTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KdTree")
            .field("len", &self.len())
            .field("depth", &self.depth())
            .finish()
    }
}

/// Dimension with the widest value spread over `ids[start..end]`.
fn widest_dim(data: &VectorSet, ids: &[u32]) -> usize {
    let dim = data.dim();
    let mut lo = vec![f32::INFINITY; dim];
    let mut hi = vec![f32::NEG_INFINITY; dim];
    for &id in ids {
        let row = data.get(id as usize);
        for d in 0..dim {
            if row[d] < lo[d] {
                lo[d] = row[d];
            }
            if row[d] > hi[d] {
                hi[d] = row[d];
            }
        }
    }
    (0..dim)
        .max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b])))
        .expect("positive dimension")
}

fn build_rec(
    data: &VectorSet,
    config: &KdTreeConfig,
    ids: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let n = end - start;
    if n <= config.bucket_size {
        nodes.push(Node::Leaf {
            start: start as u32,
            end: end as u32,
        });
        return (nodes.len() - 1) as u32;
    }
    let slice = &mut ids[start..end];
    let dim = widest_dim(data, slice);
    let mut coords: Vec<f32> = slice.iter().map(|&i| data.get(i as usize)[dim]).collect();
    let mid = (n - 1) / 2;
    let split = select_nth(&mut coords, mid);
    // partition ids: <= split left, > split right (with a guard against a
    // degenerate all-equal side)
    slice
        .sort_unstable_by(|&a, &b| data.get(a as usize)[dim].total_cmp(&data.get(b as usize)[dim]));
    let mut left_len = slice.partition_point(|&i| data.get(i as usize)[dim] <= split);
    left_len = left_len.clamp(1, n - 1);

    let node_idx = nodes.len();
    nodes.push(Node::Leaf { start: 0, end: 0 }); // placeholder
    let left = build_rec(data, config, ids, start, start + left_len, nodes);
    let right = build_rec(data, config, ids, start + left_len, end, nodes);
    nodes[node_idx] = Node::Inner {
        dim: dim as u32,
        split,
        left,
        right,
    };
    node_idx as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::{ground_truth, synth};

    #[test]
    fn knn_is_exact() {
        let data = synth::sift_like(1000, 10, 1);
        let tree = KdTree::build(data.clone(), KdTreeConfig::default());
        let queries = synth::queries_near(&data, 25, 0.05, 2);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        for (qi, truth) in gt.iter().enumerate() {
            let (res, _) = tree.knn(queries.get(qi), 10);
            assert_eq!(&res, truth, "query {qi} differs from brute force");
        }
    }

    #[test]
    fn pruning_effective_in_low_dim() {
        let data = synth::sift_like(8000, 4, 3);
        let tree = KdTree::build(data.clone(), KdTreeConfig::default());
        let (_, stats) = tree.knn(data.get(0), 1);
        assert!(
            stats.ndist < 2000,
            "low-dim KD search should prune hard; evaluated {}",
            stats.ndist
        );
    }

    #[test]
    fn pruning_degrades_with_dimension() {
        // the curse of dimensionality: same point count, higher dimension
        // -> dramatically more distance evaluations
        let n = 4000;
        let frac = |dim: usize| {
            let data = synth::deep_like(n, dim, 4);
            let tree = KdTree::build(data.clone(), KdTreeConfig::default());
            let q = synth::queries_near(&data, 10, 0.05, 5);
            let mut total = 0u64;
            for i in 0..10 {
                total += tree.knn(q.get(i), 10).1.ndist;
            }
            total as f64 / (10.0 * n as f64)
        };
        let low = frac(4);
        let high = frac(64);
        assert!(
            high > low * 2.0,
            "expected pruning collapse with dimension: low {low:.3}, high {high:.3}"
        );
    }

    #[test]
    fn seed_tightens_search() {
        let data = synth::sift_like(4000, 8, 6);
        let tree = KdTree::build(data.clone(), KdTreeConfig::default());
        let q = data.get(0).to_vec();
        let (exact, unseeded) = tree.knn(&q, 5);
        // seed with the true answers (ids offset to avoid clashes)
        let seed: Vec<Neighbor> = exact
            .iter()
            .map(|n| Neighbor::new(n.id + 100_000, n.dist))
            .collect();
        let (_, seeded) = tree.knn_with_seed(&q, 5, &seed);
        assert!(
            seeded.ndist <= unseeded.ndist,
            "seeding should never cost more: {} vs {}",
            seeded.ndist,
            unseeded.ndist
        );
    }

    #[test]
    fn single_point_and_duplicates() {
        let mut data = VectorSet::new(3);
        data.push(&[1.0, 2.0, 3.0]);
        let tree = KdTree::build(data, KdTreeConfig::default());
        let (r, _) = tree.knn(&[0.0, 0.0, 0.0], 4);
        assert_eq!(r.len(), 1);

        let mut dup = VectorSet::new(2);
        for _ in 0..50 {
            dup.push(&[5.0, 5.0]);
        }
        let tree = KdTree::build(dup, KdTreeConfig { bucket_size: 4 });
        let (r, _) = tree.knn(&[5.0, 5.0], 7);
        assert_eq!(r.len(), 7);
        assert!(r.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn bucket_size_one() {
        let data = synth::sift_like(128, 6, 7);
        let tree = KdTree::build(data.clone(), KdTreeConfig { bucket_size: 1 });
        let gt = ground_truth::brute_force(&data, &data, 3, Distance::L2);
        for i in (0..128).step_by(17) {
            let (res, _) = tree.knn(data.get(i), 3);
            assert_eq!(&res, &gt[i]);
        }
    }

    #[test]
    #[should_panic]
    fn empty_build_panics() {
        let _ = KdTree::build(VectorSet::new(2), KdTreeConfig::default());
    }

    #[test]
    fn depth_reasonable() {
        let data = synth::sift_like(4096, 8, 8);
        let tree = KdTree::build(data, KdTreeConfig::default());
        assert!(tree.depth() <= 16, "depth {}", tree.depth());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fastann_data::ground_truth;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn kd_knn_always_matches_brute_force(
            seed in 0u64..1000,
            n in 10usize..300,
            k in 1usize..10,
            bucket in 1usize..40,
        ) {
            let data = fastann_data::synth::sift_like(n, 5, seed);
            let tree = KdTree::build(data.clone(), KdTreeConfig { bucket_size: bucket });
            let q = fastann_data::synth::sift_like(3, 5, seed ^ 0xdef);
            for qi in 0..3 {
                let (res, _) = tree.knn(q.get(qi), k);
                let truth = ground_truth::brute_force_one(&data, q.get(qi), k, Distance::L2);
                prop_assert_eq!(&res, &truth);
            }
        }
    }
}
