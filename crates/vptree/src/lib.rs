//! # fastann-vptree
//!
//! Vantage-point trees (Yianilos, SODA 1993) — the space-partitioning
//! structure the paper uses to split a dataset across processes
//! (Section III-B).
//!
//! Two structures are provided:
//!
//! * [`VpTree`] — a classic *exact* metric k-NN tree with bucket leaves:
//!   every inner node stores a vantage point and the median distance µ; the
//!   ball of radius µ around the vantage point forms the left subspace.
//!   Search prunes a subtree whenever the query ball (radius = current k-th
//!   distance) cannot intersect it. Used as an exact reference and for the
//!   single-node engine.
//! * [`PartitionTree`] — the *skeleton* the distributed engine needs: inner
//!   nodes hold `(vantage vector, µ)` and leaves name data partitions. Its
//!   [`PartitionTree::route`] implements the paper's `F(q)` — the subset of
//!   partitions a query must visit — by descending into the containing
//!   child and also into the sibling whenever the query lies within a
//!   margin of the boundary.
//!
//! Vantage points are chosen with the second-moment heuristic of the paper
//! (`SelectVantagePointSerial`): sample candidates, keep the one whose
//! distance distribution to a data sample has the largest spread about its
//! median.
//!
//! ```
//! use fastann_data::{synth, Distance};
//! use fastann_vptree::{PartitionTree, RouteConfig, VpTree, VpTreeConfig};
//!
//! let data = synth::sift_like(2_000, 16, 1);
//!
//! // Exact k-NN.
//! let tree = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
//! let (hits, stats) = tree.knn(data.get(0), 5);
//! assert_eq!(hits[0].id, 0);
//! assert!(stats.ndist < 2_000, "search must prune");
//!
//! // Space partitioning + F(q) routing.
//! let (skel, parts) = PartitionTree::build_local(&data, 8, Distance::L2, 1);
//! assert_eq!(parts.len(), 8);
//! let (route, _) = skel.route(data.get(0), &RouteConfig::default());
//! assert!(!route.is_empty());
//! ```

#![forbid(unsafe_code)]

mod partition;
mod tree;
mod vantage;

pub use partition::{PartitionTree, PartitionTreeBuilder, RouteConfig};
pub use tree::{VpSearchStats, VpTree, VpTreeConfig};
pub use vantage::{select_vantage, spread_about_median};
