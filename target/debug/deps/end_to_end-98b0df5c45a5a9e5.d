/root/repo/target/debug/deps/end_to_end-98b0df5c45a5a9e5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-98b0df5c45a5a9e5: tests/end_to_end.rs

tests/end_to_end.rs:
