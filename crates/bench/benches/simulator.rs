//! Simulator-substrate micro-benchmarks: how much host time the virtual
//! cluster itself costs (message passing, collectives, RMA, wire codec).

use bytes::{Bytes, BytesMut};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fastann_mpisim::{wire, Cluster, ReduceOp, SimConfig, Window};

fn bench_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_p2p");
    group.sample_size(20);
    group.bench_function("ping_pong_1k_msgs", |b| {
        b.iter(|| {
            Cluster::new(SimConfig::new(2)).run(|rank| {
                let payload = Bytes::from_static(&[0u8; 64]);
                for i in 0..500u64 {
                    if rank.rank() == 0 {
                        rank.send_bytes(1, i, payload.clone());
                        let _ = rank.recv(Some(1), Some(i));
                    } else {
                        let _ = rank.recv(Some(0), Some(i));
                        rank.send_bytes(0, i, payload.clone());
                    }
                }
                rank.now()
            })
        })
    });
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_collectives");
    group.sample_size(20);
    for ranks in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("allreduce_x100", ranks),
            &ranks,
            |b, &n| {
                b.iter(|| {
                    Cluster::new(SimConfig::new(n)).run(|rank| {
                        let comm = rank.world();
                        let mut acc = 0.0;
                        for _ in 0..100 {
                            acc = comm.allreduce_f64(rank, rank.rank() as f64, ReduceOp::Sum);
                        }
                        black_box(acc)
                    })
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("bcast_4k_x100", ranks), &ranks, |b, &n| {
            b.iter(|| {
                Cluster::new(SimConfig::new(n)).run(|rank| {
                    let comm = rank.world();
                    let data = Bytes::from(vec![7u8; 4096]);
                    for _ in 0..100 {
                        let root_data = if comm.my_index(rank) == 0 {
                            Some(data.clone())
                        } else {
                            None
                        };
                        black_box(comm.bcast(rank, 0, root_data));
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_rma(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim_rma");
    group.sample_size(20);
    group.bench_function("accumulate_4r_x1000", |b| {
        b.iter(|| {
            Cluster::new(SimConfig::new(4)).run(|rank| {
                let comm = rank.world();
                let win: Window<u64> = Window::create(rank, &comm, 0, 64, |_| 0);
                for i in 0..1000usize {
                    win.accumulate(rank, i % 64, 8, |v| *v += 1);
                }
                rank.send_bytes(0, 1, Bytes::new());
                if rank.rank() == 0 {
                    for _ in 0..4 {
                        let _ = rank.recv(None, Some(1));
                    }
                    win.owner_sync(rank);
                }
            })
        })
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let vecf: Vec<f32> = (0..128).map(|i| i as f32).collect();
    let pairs: Vec<(u32, f32)> = (0..10).map(|i| (i, i as f32)).collect();
    group.bench_function("encode_query_128d", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(528);
            wire::put_u32(&mut buf, 1);
            wire::put_u32(&mut buf, 2);
            wire::put_f32_slice(&mut buf, black_box(&vecf));
            buf.freeze()
        })
    });
    group.bench_function("roundtrip_neighbors_k10", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(96);
            wire::put_neighbors(&mut buf, black_box(&pairs));
            let mut r = buf.freeze();
            wire::get_neighbors(&mut r)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_p2p, bench_collectives, bench_rma, bench_wire);
criterion_main!(benches);
