/root/repo/target/debug/examples/scaling_study-bfca216f4fdb773a.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-bfca216f4fdb773a: examples/scaling_study.rs

examples/scaling_study.rs:
