//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset it uses: [`Mutex`], [`RwLock`] and [`Condvar`]
//! with parking_lot's poison-free signatures (`lock()` returns the guard
//! directly). Everything delegates to `std::sync`; a poisoned std lock —
//! only possible if a thread panicked while holding it, in which case the
//! whole simulated run is already failing — is unwrapped into the inner
//! guard so panics propagate instead of deadlocking.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Poison-free mutex with parking_lot's `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds the std guard in an `Option` so
/// [`Condvar::wait_for`] can move it through `std`'s ownership-passing wait
/// API while callers keep borrowing the same wrapper.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `&mut MutexGuard` signatures.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present before wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Poison-free reader–writer lock with parking_lot's signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
        // guard is usable again after the wait
        let _ = &*g;
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while !*g {
                let r = cv.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out(), "should be woken, not time out");
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*shared;
        *m.lock() = true;
        cv.notify_all();
        h.join().expect("waiter joins");
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
