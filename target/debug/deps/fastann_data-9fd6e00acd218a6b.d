/root/repo/target/debug/deps/fastann_data-9fd6e00acd218a6b.d: crates/data/src/lib.rs crates/data/src/ground_truth.rs crates/data/src/io.rs crates/data/src/metric.rs crates/data/src/quant.rs crates/data/src/select.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/descriptors.rs crates/data/src/synth/mdcgen.rs crates/data/src/topk.rs crates/data/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_data-9fd6e00acd218a6b.rmeta: crates/data/src/lib.rs crates/data/src/ground_truth.rs crates/data/src/io.rs crates/data/src/metric.rs crates/data/src/quant.rs crates/data/src/select.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/descriptors.rs crates/data/src/synth/mdcgen.rs crates/data/src/topk.rs crates/data/src/vector.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/ground_truth.rs:
crates/data/src/io.rs:
crates/data/src/metric.rs:
crates/data/src/quant.rs:
crates/data/src/select.rs:
crates/data/src/stats.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/descriptors.rs:
crates/data/src/synth/mdcgen.rs:
crates/data/src/topk.rs:
crates/data/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
