//! The serving event loop: arrivals → admission → cache → micro-batches →
//! engine dispatch, all in virtual time.
//!
//! The runtime is a discrete-event simulation over the
//! [`fastann_mpisim::EventQueue`]: `Arrival` events carry requests,
//! `BatchTimer` events bound how long a forming batch may wait. Engine
//! batches are serialized on one simulated cluster — a batch triggered
//! while the previous one is still running dispatches when the engine
//! frees up — so queueing delay is real and admission control has
//! something to protect. Every quantity is virtual (`f64` ns), every
//! container is iterated in a deterministic order, and the engine itself
//! honours the PR-3 thread-determinism contract, so a run replays
//! bit-identically from the same inputs at any `threads` setting.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};

use fastann_core::{DistIndex, Mutation, MutationReport, MutationRequest, SearchRequest};
use fastann_data::quant::Sq8;
use fastann_data::VectorSet;
use fastann_mpisim::{EventQueue, VClock};
use fastann_obs::{buckets, Metrics, Stage};

use crate::admission::TokenBucket;
use crate::cache::ResultCache;
use crate::config::ServeConfig;
use crate::controller::ReplicaController;
use crate::report::{percentile, ServeReport};
use crate::request::{Completion, Outcome, Rejection, Request};

/// Everything one serving run produced: the aggregate [`ServeReport`] and
/// the per-request [`Outcome`]s in decision order (rejections at arrival,
/// completions at batch dispatch).
pub struct ServeRun {
    /// Aggregate statistics.
    pub report: ServeReport,
    /// Per-request terminal states.
    pub outcomes: Vec<Outcome>,
}

impl ServeRun {
    /// The completion for request `id`, if it completed.
    pub fn completion_of(&self, id: u64) -> Option<&Completion> {
        self.outcomes
            .iter()
            .filter_map(Outcome::completion)
            .find(|c| c.id == id)
    }
}

/// What a closed-loop client submits next (the runtime assigns id,
/// arrival time and absolute deadline).
pub struct ClosedRequest {
    /// The query vector.
    pub query: Vec<f32>,
    /// Neighbours requested.
    pub k: usize,
    /// Tenant to bill.
    pub tenant: u32,
    /// Deadline relative to the arrival instant (`f64::INFINITY` = none).
    pub deadline_rel_ns: f64,
}

/// Closed-loop workload shape: `clients` concurrent clients, each issuing
/// its next request the moment its previous one terminates (completions
/// re-issue immediately; rejections back off by
/// [`ServeConfig::retry_backoff_ns`]), until `total_requests` have been
/// issued overall.
pub struct ClosedLoopSpec {
    /// Concurrent clients (all start at virtual time 0).
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub total_requests: usize,
}

/// The online serving runtime. Owns the engine index, the result cache
/// and the policy configuration; [`ServeRuntime::serve_open`] /
/// [`ServeRuntime::serve_closed`] execute one workload each and can be
/// called repeatedly (the cache — and its epoch — persist across runs,
/// which is what makes [`ServeRuntime::install_index`] meaningful).
pub struct ServeRuntime {
    index: DistIndex,
    cfg: ServeConfig,
    cache: ResultCache,
    service_est_ns: f64,
    metrics: Option<Metrics>,
    controller: Option<ReplicaController>,
}

impl ServeRuntime {
    /// A runtime serving `index`, with cache keys quantized through
    /// `codec` (train it on a sample of the corpus) and behaviour set by
    /// `cfg`.
    ///
    /// # Panics
    /// Panics when the codec dimensionality does not match the index.
    pub fn new(index: DistIndex, codec: Sq8, cfg: ServeConfig) -> Self {
        assert_eq!(
            codec.dim(),
            index.dim(),
            "cache codec dimensionality must match the index"
        );
        let cache = ResultCache::new(codec, cfg.cache_capacity);
        let service_est_ns = cfg.service_estimate_ns;
        // an adaptive routing policy needs the controller and a metrics
        // registry to feed it (callers may still swap in their own
        // registry with `set_metrics`)
        let controller = cfg.search.routing.is_adaptive().then(|| {
            ReplicaController::new(index.n_partitions(), cfg.search.routing, cfg.controller)
        });
        let metrics = controller.is_some().then(Metrics::new);
        Self {
            index,
            cfg,
            cache,
            service_est_ns,
            metrics,
            controller,
        }
    }

    /// Attaches a metrics registry: every run from now on records the
    /// serving pipeline (admission verdicts, cache hits and misses,
    /// micro-batch occupancy, queue depth) and threads the same registry
    /// into each dispatched engine batch, so router, HNSW, worker and
    /// chaos series land alongside the serving ones. The handle is an
    /// `Arc` clone — snapshot the original at any point.
    pub fn set_metrics(&mut self, metrics: &Metrics) {
        self.metrics = Some(metrics.clone());
    }

    /// Replaces the served index (a rebuild going live) and bumps the
    /// result-cache epoch, so no request served from now on can observe a
    /// hit computed against the old index.
    ///
    /// # Panics
    /// Panics when the new index changes dimensionality.
    pub fn install_index(&mut self, index: DistIndex) {
        assert_eq!(
            index.dim(),
            self.index.dim(),
            "a rebuilt index must keep the dimensionality"
        );
        // a rebuild may change the partition topology: the controller's
        // hotness window no longer describes the new layout, so it starts
        // over at the policy base
        if self.controller.is_some() {
            self.controller = Some(ReplicaController::new(
                index.n_partitions(),
                self.cfg.search.routing,
                self.cfg.controller,
            ));
        }
        self.index = index;
        self.cache.bump_epoch();
    }

    /// The adaptive controller's live per-partition replica counts; `None`
    /// under static routing.
    pub fn replica_counts(&self) -> Option<&[usize]> {
        self.controller.as_ref().map(|c| c.map().counts())
    }

    /// Result-cache counter snapshot.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Applies a batch of live mutations to the served index through the
    /// engine's [`MutationRequest`] builder (upserts, deletes, then
    /// background compaction above `compact_threshold`). When the batch
    /// changed the index, the result-cache epoch is bumped so no request
    /// served afterwards can observe a hit computed against pre-mutation
    /// state; an ineffective batch leaves the cache warm.
    ///
    /// The attached metrics registry (see [`ServeRuntime::set_metrics`])
    /// records `fastann_mutations_total{kind}`, `fastann_tombstone_ratio`
    /// and `fastann_compactions_total` alongside the serving series.
    pub fn apply_mutations(&mut self, batch: Vec<Mutation>) -> MutationReport {
        let mut req = MutationRequest::new(&mut self.index).mutations(batch);
        if let Some(m) = &self.metrics {
            req = req.metrics(m);
        }
        let report = req.run();
        if report.changed() {
            self.cache.bump_epoch();
        }
        report
    }

    /// Engine-level mutation epoch of the served index (what the result
    /// cache is keyed against).
    pub fn index_epoch(&self) -> u64 {
        self.index.mutation_epoch
    }

    /// Serves an open-loop workload: `requests` arrive at their own
    /// `arrival_ns` regardless of how the system keeps up (the load
    /// generator's Poisson mode). Requests need not be pre-sorted.
    pub fn serve_open(&mut self, requests: Vec<Request>) -> ServeRun {
        let mut sim = Sim::new(self);
        for r in requests {
            sim.validate(&r);
            let at = r.arrival_ns;
            sim.events.push(at, Ev::Arrival(r));
        }
        sim.run(None);
        sim.finish()
    }

    /// Serves a closed-loop workload: `spec.clients` clients each keep one
    /// request outstanding, drawing the next submission from `gen(id,
    /// client)`, until `spec.total_requests` have been issued.
    pub fn serve_closed(
        &mut self,
        spec: ClosedLoopSpec,
        mut gen: impl FnMut(u64, usize) -> ClosedRequest,
    ) -> ServeRun {
        assert!(spec.clients >= 1, "need at least one client");
        let mut sim = Sim::new(self);
        let mut driver = ClosedDriver {
            issued: 0,
            total: spec.total_requests,
            client_of: HashMap::new(),
        };
        let first_wave = spec.clients.min(spec.total_requests);
        for client in 0..first_wave {
            let req = driver.issue(&mut gen, client, 0.0);
            sim.validate(&req);
            sim.events.push(0.0, Ev::Arrival(req));
        }
        sim.run(Some((&mut driver, &mut gen)));
        sim.finish()
    }
}

/// Borrowed closed-loop state: the driver plus the caller's generator.
type DriverRef<'d, 'g> = (
    &'d mut ClosedDriver,
    &'g mut dyn FnMut(u64, usize) -> ClosedRequest,
);

struct ClosedDriver {
    issued: u64,
    total: usize,
    client_of: HashMap<u64, usize>,
}

impl ClosedDriver {
    fn issue(
        &mut self,
        gen: &mut impl FnMut(u64, usize) -> ClosedRequest,
        client: usize,
        at_ns: f64,
    ) -> Request {
        let id = self.issued;
        self.issued += 1;
        self.client_of.insert(id, client);
        let c = gen(id, client);
        Request {
            id,
            tenant: c.tenant,
            arrival_ns: at_ns,
            query: c.query,
            k: c.k,
            deadline_ns: at_ns + c.deadline_rel_ns,
        }
    }

    fn exhausted(&self) -> bool {
        self.issued as usize >= self.total
    }
}

enum Ev {
    Arrival(Request),
    BatchTimer(u64),
}

/// `f64` virtual timestamps with a total order, for the in-flight heap.
#[derive(PartialEq)]
struct OrdNs(f64);
impl Eq for OrdNs {}
impl Ord for OrdNs {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for OrdNs {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One run's mutable simulation state, borrowing the runtime.
struct Sim<'a> {
    rt: &'a mut ServeRuntime,
    clock: VClock,
    events: EventQueue<Ev>,
    forming: Vec<Request>,
    /// Home partition of each request in `forming` (parallel vector).
    forming_homes: Vec<u32>,
    forming_batch_id: u64,
    engine_free_ns: f64,
    /// `(completion time, home partition)` of dispatched-but-unfinished
    /// requests; retired lazily at each arrival.
    inflight: BinaryHeap<Reverse<(OrdNs, u32)>>,
    /// Outstanding admitted requests per home partition (forming plus
    /// in-flight) — what the per-partition admission bound inspects.
    part_outstanding: Vec<usize>,
    buckets: HashMap<u32, TokenBucket>,
    outcomes: Vec<Outcome>,
    // report aggregates
    requests: u64,
    rejected_overloaded: u64,
    rejected_deadline: u64,
    rejected_hot: u64,
    deadline_misses: u64,
    degraded: u64,
    batches: u64,
    dispatched: u64,
    engine_busy_ns: f64,
    retries: u64,
    failovers: u64,
    per_partition_probes: Vec<u64>,
    per_partition_rejections: Vec<u64>,
}

impl<'a> Sim<'a> {
    fn new(rt: &'a mut ServeRuntime) -> Self {
        let parts = rt.index.n_partitions();
        Self {
            rt,
            clock: VClock::new(),
            events: EventQueue::new(),
            forming: Vec::new(),
            forming_homes: Vec::new(),
            forming_batch_id: 0,
            engine_free_ns: 0.0,
            inflight: BinaryHeap::new(),
            part_outstanding: vec![0; parts],
            buckets: HashMap::new(),
            outcomes: Vec::new(),
            requests: 0,
            rejected_overloaded: 0,
            rejected_deadline: 0,
            rejected_hot: 0,
            deadline_misses: 0,
            degraded: 0,
            batches: 0,
            dispatched: 0,
            engine_busy_ns: 0.0,
            retries: 0,
            failovers: 0,
            per_partition_probes: vec![0; parts],
            per_partition_rejections: vec![0; parts],
        }
    }

    fn validate(&self, r: &Request) {
        assert_eq!(
            r.query.len(),
            self.rt.index.dim(),
            "request {} dimension mismatch",
            r.id
        );
        assert!(r.k >= 1, "request {} asks for zero neighbours", r.id);
    }

    /// Drains the event queue. With a closed-loop driver, every outcome
    /// schedules the owning client's next request.
    fn run(&mut self, mut driver: Option<DriverRef<'_, '_>>) {
        while let Some((at, ev)) = self.events.pop() {
            self.clock.advance_to(at);
            let first_new = self.outcomes.len();
            match ev {
                Ev::Arrival(req) => self.on_arrival(req),
                Ev::BatchTimer(batch_id) => {
                    if batch_id == self.forming_batch_id && !self.forming.is_empty() {
                        self.flush();
                    }
                }
            }
            if let Some((drv, gen)) = driver.as_mut() {
                for i in first_new..self.outcomes.len() {
                    if drv.exhausted() {
                        break;
                    }
                    let (finished_id, next_at) = match &self.outcomes[i] {
                        Outcome::Completed(c) => (c.id, c.done_ns),
                        Outcome::Rejected { id, at_ns, .. } => {
                            (*id, at_ns + self.rt.cfg.retry_backoff_ns.max(1.0))
                        }
                    };
                    let Some(&client) = drv.client_of.get(&finished_id) else {
                        continue;
                    };
                    let req = drv.issue(gen, client, next_at);
                    self.validate(&req);
                    self.events.push(next_at, Ev::Arrival(req));
                }
            }
        }
        debug_assert!(self.forming.is_empty(), "timer must have flushed the tail");
    }

    /// The attached metrics registry, if any.
    fn obs(&self) -> Option<&Metrics> {
        self.rt.metrics.as_ref()
    }

    fn on_arrival(&mut self, req: Request) {
        let now = self.clock.now();
        self.requests += 1;

        // retire dispatched work that finished before this instant, so the
        // queue-depth bounds see the true number outstanding
        while let Some(Reverse((OrdNs(done), home))) = self.inflight.peek() {
            if *done <= now {
                if let Some(c) = self.part_outstanding.get_mut(*home as usize) {
                    *c = c.saturating_sub(1);
                }
                self.inflight.pop();
            } else {
                break;
            }
        }
        if let Some(m) = self.obs() {
            m.inc("fastann_serve_requests_total", &[], 1);
            let depth = self.forming.len() + self.inflight.len();
            m.gauge_max("fastann_serve_queue_depth", &[], depth as f64);
        }

        // 1. per-tenant token bucket
        let adm = self.rt.cfg.admission;
        let bucket = self
            .buckets
            .entry(req.tenant)
            .or_insert_with(|| TokenBucket::new(adm.tenant_rate_qps, adm.tenant_burst));
        if !bucket.try_take(now) {
            self.reject(&req, now, Rejection::Overloaded);
            return;
        }

        // 2. result cache — a hit answers without queue or engine, which
        // is exactly why it sits before the depth bound: cached traffic
        // must stay cheap when the system sheds load
        let metric = self.rt.index.config.metric;
        let cached = self.rt.cache.lookup(&req.query, req.k, metric);
        if let Some(m) = self.obs() {
            let outcome = if cached.is_some() { "hit" } else { "miss" };
            m.inc("fastann_serve_cache_total", &[("outcome", outcome)], 1);
        }
        if let Some(results) = cached {
            let done = now + self.rt.cfg.cache_hit_ns;
            if let Some(m) = self.obs() {
                m.span(Stage::CacheLookup, now, done);
            }
            if req.deadline_ns.is_finite() && done > req.deadline_ns {
                self.deadline_misses += 1;
                if let Some(m) = self.obs() {
                    m.inc("fastann_serve_deadline_misses_total", &[], 1);
                }
            }
            self.outcomes.push(Outcome::Completed(Completion {
                id: req.id,
                tenant: req.tenant,
                arrival_ns: req.arrival_ns,
                done_ns: done,
                cache_hit: true,
                degraded: false,
                results,
            }));
            return;
        }

        // 3. global queue-depth bound over outstanding admitted requests
        let depth = self.forming.len() + self.inflight.len();
        if depth >= adm.max_queue_depth {
            self.reject(&req, now, Rejection::Overloaded);
            return;
        }

        // 3b. per-partition queue-depth bound: overload concentrated on
        // one hot partition sheds on that partition's own queue instead
        // of stalling every tenant globally. The home lookup is a
        // fan-out-1 router probe in virtual-time-free admission code —
        // deterministic, and uncharged like the other admission checks.
        let home = self.rt.index.home_partition(&req.query);
        if self
            .part_outstanding
            .get(home as usize)
            .is_some_and(|&c| c >= adm.partition_queue_depth)
        {
            self.reject(&req, now, Rejection::HotPartition(home));
            return;
        }

        // 4. deadline feasibility: would this request — batched at worst
        // after the full batching wait, behind the engine's backlog —
        // still answer in time? The service estimate is an EMA of
        // observed batch times, so the check adapts as load changes.
        if req.deadline_ns.is_finite() {
            let est_start = (now + self.rt.cfg.batch.max_wait_ns).max(self.engine_free_ns);
            if est_start + self.rt.service_est_ns > req.deadline_ns {
                self.reject(&req, now, Rejection::DeadlineUnmeetable);
                return;
            }
        }

        // admitted: join the forming batch
        if let Some(m) = self.obs() {
            m.inc("fastann_serve_admitted_total", &[], 1);
            m.span(Stage::Admission, req.arrival_ns, now);
        }
        if self.forming.is_empty() {
            self.events.push(
                now + self.rt.cfg.batch.max_wait_ns,
                Ev::BatchTimer(self.forming_batch_id),
            );
        }
        if let Some(c) = self.part_outstanding.get_mut(home as usize) {
            *c += 1;
        }
        self.forming.push(req);
        self.forming_homes.push(home);
        if self.forming.len() >= self.rt.cfg.batch.max_batch {
            self.flush();
        }
    }

    fn reject(&mut self, req: &Request, now: f64, reason: Rejection) {
        let label = match reason {
            Rejection::Overloaded => {
                self.rejected_overloaded += 1;
                "overloaded"
            }
            Rejection::DeadlineUnmeetable => {
                self.rejected_deadline += 1;
                "deadline"
            }
            Rejection::HotPartition(p) => {
                self.rejected_hot += 1;
                if let Some(c) = self.per_partition_rejections.get_mut(p as usize) {
                    *c += 1;
                }
                "hot_partition"
            }
        };
        if let Some(m) = self.obs() {
            m.inc("fastann_serve_rejected_total", &[("reason", label)], 1);
            if let Rejection::HotPartition(p) = reason {
                let part = p.to_string();
                m.inc(
                    "fastann_serve_partition_rejected_total",
                    &[("partition", &part)],
                    1,
                );
            }
        }
        self.outcomes.push(Outcome::Rejected {
            id: req.id,
            tenant: req.tenant,
            at_ns: now,
            reason,
        });
    }

    /// Dispatches the forming batch through the engine.
    fn flush(&mut self) {
        let batch = std::mem::take(&mut self.forming);
        let homes = std::mem::take(&mut self.forming_homes);
        self.forming_batch_id += 1;
        let trigger = self.clock.now();
        // one simulated cluster: a batch waits for the previous one
        let dispatch = trigger.max(self.engine_free_ns);

        let mut queries = VectorSet::new(self.rt.index.dim());
        for r in &batch {
            queries.push(&r.query);
        }
        let kmax = batch.iter().map(|r| r.k).max().unwrap_or(1);
        let mut opts = self.rt.cfg.search;
        opts.k = kmax;
        opts.ef = opts.ef.max(kmax);
        // deadline propagation: the tightest headroom in the batch caps
        // the per-probe timeout of the fault-tolerant path
        let headroom = batch
            .iter()
            .map(|r| r.deadline_ns - dispatch)
            .fold(f64::INFINITY, f64::min);
        let opts = opts.cap_timeout_ns(headroom);

        // adaptive routing: snapshot the controller's replica map for
        // this batch — generation bumps after this instant do not affect
        // a batch already dispatched (the epoch idiom)
        let n_parts = self.rt.index.n_partitions();
        let replica_snap = self.rt.controller.as_mut().map(|ctl| {
            ctl.ensure_cover(n_parts);
            ctl.map().clone()
        });

        let mut engine_req = SearchRequest::new(&self.rt.index, &queries)
            .opts(opts)
            .plan(self.rt.cfg.fault.as_ref());
        if let Some(map) = replica_snap.as_ref() {
            engine_req = engine_req.replicas(map);
        }
        if let Some(m) = self.rt.metrics.as_ref() {
            engine_req = engine_req.metrics(m);
        }
        let report = engine_req.run();
        let done = dispatch + report.total_ns;
        if let Some(m) = self.obs() {
            m.inc("fastann_serve_batches_total", &[], 1);
            m.observe(
                "fastann_serve_batch_occupancy",
                &[],
                batch.len() as f64,
                buckets::COUNT,
            );
            m.span(Stage::BatchFlush, dispatch, done);
        }
        self.engine_free_ns = done;
        self.engine_busy_ns += report.total_ns;
        self.batches += 1;
        self.dispatched += batch.len() as u64;
        self.retries += report.retries;
        self.failovers += report.failovers;
        for (part, &n) in report.per_partition_probes.iter().enumerate() {
            if let Some(p) = self.per_partition_probes.get_mut(part) {
                *p += n;
            }
        }
        // adapt the feasibility estimate (deterministic EMA, α = 1/2)
        self.rt.service_est_ns = 0.5 * self.rt.service_est_ns + 0.5 * report.total_ns;

        // feed the batch's service-time metrics to the replica controller
        // at the batch's virtual completion instant
        let rt = &mut *self.rt;
        if let (Some(ctl), Some(m)) = (rt.controller.as_mut(), rt.metrics.as_ref()) {
            let act = ctl.observe(done, &m.snapshot(), &rt.index);
            if act.raised.is_some() {
                m.inc("fastann_replica_raises_total", &[], 1);
            }
            if act.decayed.is_some() {
                m.inc("fastann_replica_decays_total", &[], 1);
            }
            for (p, &r) in ctl.map().counts().iter().enumerate() {
                let part = p.to_string();
                m.gauge_max("fastann_replica_count", &[("partition", &part)], r as f64);
            }
            m.gauge_max(
                "fastann_routing_generation",
                &[],
                ctl.map().generation() as f64,
            );
        }

        let metric = self.rt.index.config.metric;
        for (i, (req, home)) in batch.into_iter().zip(homes).enumerate() {
            let mut results = report.results[i].clone();
            results.truncate(req.k);
            let was_degraded = report.degraded[i];
            if was_degraded {
                self.degraded += 1;
            } else {
                // degraded (partial) answers are never cached: a fault is
                // transient, a cache entry is not
                self.rt
                    .cache
                    .insert(&req.query, req.k, metric, results.clone());
            }
            if req.deadline_ns.is_finite() && done > req.deadline_ns {
                self.deadline_misses += 1;
                if let Some(m) = self.rt.metrics.as_ref() {
                    m.inc("fastann_serve_deadline_misses_total", &[], 1);
                }
            }
            self.inflight.push(Reverse((OrdNs(done), home)));
            self.outcomes.push(Outcome::Completed(Completion {
                id: req.id,
                tenant: req.tenant,
                arrival_ns: req.arrival_ns,
                done_ns: done,
                cache_hit: false,
                degraded: was_degraded,
                results,
            }));
        }
    }

    fn finish(self) -> ServeRun {
        let mut latencies: Vec<f64> = Vec::new();
        let mut completed = 0u64;
        let mut makespan: f64 = 0.0;
        let mut lat_sum = 0.0;
        for o in &self.outcomes {
            match o {
                Outcome::Completed(c) => {
                    completed += 1;
                    let l = c.latency_ns();
                    latencies.push(l);
                    lat_sum += l;
                    makespan = makespan.max(c.done_ns);
                }
                Outcome::Rejected { at_ns, .. } => makespan = makespan.max(*at_ns),
            }
        }
        latencies.sort_unstable_by(f64::total_cmp);
        let (raises, decays, finals, generation) = match self.rt.controller.as_ref() {
            Some(c) => (
                c.raises(),
                c.decays(),
                c.map().counts().to_vec(),
                c.map().generation(),
            ),
            None => (0, 0, Vec::new(), 0),
        };
        let report = ServeReport {
            requests: self.requests,
            completed,
            rejected_overloaded: self.rejected_overloaded,
            rejected_deadline: self.rejected_deadline,
            rejected_hot_partition: self.rejected_hot,
            deadline_misses: self.deadline_misses,
            degraded: self.degraded,
            batches: self.batches,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.dispatched as f64 / self.batches as f64
            },
            cache: self.rt.cache.stats(),
            p50_ns: percentile(&latencies, 0.50),
            p95_ns: percentile(&latencies, 0.95),
            p99_ns: percentile(&latencies, 0.99),
            max_ns: latencies.last().copied().unwrap_or(0.0),
            mean_ns: if latencies.is_empty() {
                0.0
            } else {
                lat_sum / latencies.len() as f64
            },
            makespan_ns: makespan,
            throughput_qps: if makespan > 0.0 {
                completed as f64 / (makespan / 1e9)
            } else {
                0.0
            },
            engine_busy_ns: self.engine_busy_ns,
            retries: self.retries,
            failovers: self.failovers,
            per_partition_probes: self.per_partition_probes,
            per_partition_rejections: self.per_partition_rejections,
            replica_raises: raises,
            replica_decays: decays,
            final_replicas: finals,
            routing_generation: generation,
        };
        ServeRun {
            report,
            outcomes: self.outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdmissionPolicy;
    use fastann_core::{EngineConfig, SearchOptions};
    use fastann_data::synth;
    use fastann_hnsw::HnswConfig;

    fn small_runtime(cache_entries: usize) -> (fastann_data::VectorSet, ServeRuntime) {
        let data = synth::sift_like(1_500, 12, 7);
        let index = DistIndex::build(
            &data,
            EngineConfig::new(4, 2)
                .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(7))
                .with_seed(7),
        );
        let codec = Sq8::encode(&data);
        let cfg = ServeConfig::new(SearchOptions::new(5)).with_cache_capacity(cache_entries);
        (data, ServeRuntime::new(index, codec, cfg))
    }

    fn open_requests(data: &fastann_data::VectorSet, n: usize, gap_ns: f64) -> Vec<Request> {
        let queries = synth::queries_near(data, n, 0.02, 99);
        (0..n)
            .map(|i| Request::new(i as u64, i as f64 * gap_ns, queries.get(i).to_vec(), 5))
            .collect()
    }

    #[test]
    fn size_bound_flushes_full_batches() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.batch.max_batch = 8;
        rt.cfg.batch.max_wait_ns = 1e12; // timer effectively off
        let run = rt.serve_open(open_requests(&data, 24, 10.0));
        assert_eq!(run.report.batches, 3, "24 requests / max_batch 8");
        assert_eq!(run.report.mean_batch, 8.0);
        assert_eq!(run.report.completed, 24);
    }

    #[test]
    fn wait_bound_flushes_sparse_arrivals() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.batch.max_batch = 64;
        rt.cfg.batch.max_wait_ns = 1_000.0;
        // arrivals 1 ms apart: each must flush alone when its timer fires
        let run = rt.serve_open(open_requests(&data, 5, 1e6));
        assert_eq!(run.report.batches, 5, "each request rode its own timer");
        assert_eq!(run.report.mean_batch, 1.0);
        // latency includes the batching wait
        for c in run.outcomes.iter().filter_map(Outcome::completion) {
            assert!(c.latency_ns() >= 1_000.0, "paid the batch wait");
        }
    }

    #[test]
    fn stale_timer_does_not_reflush() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.batch.max_batch = 2;
        rt.cfg.batch.max_wait_ns = 50_000.0;
        // two quick arrivals flush by size before their timer fires; the
        // stale timer must not dispatch an empty or duplicate batch
        let run = rt.serve_open(open_requests(&data, 2, 10.0));
        assert_eq!(run.report.batches, 1);
        assert_eq!(run.report.completed, 2);
    }

    #[test]
    fn token_bucket_rejects_burst_over_rate() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.admission = AdmissionPolicy {
            tenant_rate_qps: 1_000.0,
            tenant_burst: 4.0,
            max_queue_depth: usize::MAX,
            partition_queue_depth: usize::MAX,
        };
        // 20 requests in one instant: burst admits 4, the rest shed
        let run = rt.serve_open(open_requests(&data, 20, 0.0));
        assert_eq!(run.report.requests, 20);
        assert_eq!(run.report.completed, 4);
        assert_eq!(run.report.rejected_overloaded, 16);
        for o in &run.outcomes {
            if let Outcome::Rejected { reason, .. } = o {
                assert_eq!(*reason, Rejection::Overloaded);
            }
        }
    }

    #[test]
    fn per_tenant_buckets_are_independent() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.admission = AdmissionPolicy {
            tenant_rate_qps: 1_000.0,
            tenant_burst: 2.0,
            max_queue_depth: usize::MAX,
            partition_queue_depth: usize::MAX,
        };
        let mut reqs = open_requests(&data, 8, 0.0);
        for (i, r) in reqs.iter_mut().enumerate() {
            r.tenant = (i % 2) as u32;
        }
        let run = rt.serve_open(reqs);
        assert_eq!(
            run.report.completed, 4,
            "each tenant's burst of 2 admits independently"
        );
    }

    #[test]
    fn unmeetable_deadline_is_typed() {
        let (data, mut rt) = small_runtime(0);
        let mut reqs = open_requests(&data, 4, 1e9);
        // 1 ns after arrival: no batch can make that
        for r in reqs.iter_mut() {
            r.deadline_ns = r.arrival_ns + 1.0;
        }
        let run = rt.serve_open(reqs);
        assert_eq!(run.report.rejected_deadline, 4);
        assert_eq!(run.report.completed, 0);
    }

    #[test]
    fn closed_loop_issues_exactly_total() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.batch.max_batch = 4;
        rt.cfg.batch.max_wait_ns = 5_000.0;
        let queries = synth::queries_near(&data, 32, 0.02, 5);
        let run = rt.serve_closed(
            ClosedLoopSpec {
                clients: 8,
                total_requests: 32,
            },
            |id, _client| ClosedRequest {
                query: queries.get(id as usize % 32).to_vec(),
                k: 5,
                tenant: 0,
                deadline_rel_ns: f64::INFINITY,
            },
        );
        assert_eq!(run.report.requests, 32);
        assert_eq!(run.report.completed, 32);
        assert!(run.report.batches >= 32 / 4);
        assert!(run.report.throughput_qps > 0.0);
    }

    #[test]
    fn delete_invalidates_cache_and_filters_results() {
        // regression: query → delete → same query must neither serve the
        // stale cached answer nor surface the deleted id
        let (data, mut rt) = small_runtime(64);
        let victim = 42u32;
        let q = data.get(victim as usize).to_vec();
        let ask = |id: u64| vec![Request::new(id, 0.0, q.clone(), 5)];

        let run = rt.serve_open(ask(0));
        let first = run.completion_of(0).expect("first query completes");
        assert!(!first.cache_hit);
        assert_eq!(first.results[0].id, victim, "own row answers pre-delete");

        // warm-cache sanity: an identical repeat is served from the cache
        let run = rt.serve_open(ask(1));
        assert!(run.completion_of(1).unwrap().cache_hit);

        let report = rt.apply_mutations(vec![Mutation::Delete { global_id: victim }]);
        assert!(report.changed());
        assert_eq!(rt.index_epoch(), 1);

        let run = rt.serve_open(ask(2));
        let after = run.completion_of(2).expect("post-delete query completes");
        assert!(
            !after.cache_hit,
            "stale epoch must not be served from the cache"
        );
        assert!(
            after.results.iter().all(|n| n.id != victim),
            "deleted id surfaced: {:?}",
            after.results
        );
    }

    #[test]
    fn ineffective_mutation_batch_keeps_cache_warm() {
        let (data, mut rt) = small_runtime(64);
        let q = data.get(7).to_vec();
        let ask = |id: u64| vec![Request::new(id, 0.0, q.clone(), 5)];
        rt.serve_open(ask(0));

        // deleting a nonexistent id changes nothing — no epoch bump
        let report = rt.apply_mutations(vec![Mutation::Delete { global_id: 9999 }]);
        assert!(!report.changed());
        assert_eq!(rt.index_epoch(), 0);

        let run = rt.serve_open(ask(1));
        assert!(
            run.completion_of(1).unwrap().cache_hit,
            "a no-op batch must not cold the cache"
        );
    }

    #[test]
    fn upsert_is_servable_after_cache_bump() {
        let (_, mut rt) = small_runtime(64);
        let v = synth::sift_like(1, 12, 4321).get(0).to_vec();
        let report = rt.apply_mutations(vec![Mutation::Upsert {
            global_id: None,
            vector: v.clone(),
        }]);
        let fastann_core::MutationOutcome::Inserted { global_id, .. } = report.outcomes[0] else {
            panic!("expected an insert, got {:?}", report.outcomes[0]);
        };
        let run = rt.serve_open(vec![Request::new(0, 0.0, v, 3)]);
        let c = run.completion_of(0).unwrap();
        assert_eq!(c.results[0].id, global_id, "new row answers its own query");
        assert_eq!(c.results[0].dist, 0.0);
    }

    #[test]
    fn outcomes_cover_every_request_exactly_once() {
        let (data, mut rt) = small_runtime(16);
        rt.cfg.admission.max_queue_depth = 8;
        let run = rt.serve_open(open_requests(&data, 40, 100.0));
        let mut ids: Vec<u64> = run.outcomes.iter().map(Outcome::id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>(), "conservation of requests");
        assert_eq!(
            run.report.requests,
            run.report.completed
                + run.report.rejected_overloaded
                + run.report.rejected_deadline
                + run.report.rejected_hot_partition
        );
    }

    #[test]
    fn partition_depth_bound_sheds_on_the_hot_queue() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.admission.partition_queue_depth = 2;
        rt.cfg.batch.max_batch = 64;
        rt.cfg.batch.max_wait_ns = 1e12; // hold everything in one forming batch
                                         // every request asks the same query → same home partition
        let q = data.get(3).to_vec();
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request::new(i, i as f64, q.clone(), 5))
            .collect();
        let home = rt.index.home_partition(&q);
        let run = rt.serve_open(reqs);
        assert_eq!(run.report.rejected_hot_partition, 4, "depth 2 admits 2");
        assert_eq!(
            run.report.per_partition_rejections[home as usize], 4,
            "rejections land on the hot partition"
        );
        for o in &run.outcomes {
            if let Outcome::Rejected { reason, .. } = o {
                assert_eq!(*reason, Rejection::HotPartition(home));
            }
        }
        // conservation still holds with the new rejection class
        assert_eq!(
            run.report.requests,
            run.report.completed
                + run.report.rejected_overloaded
                + run.report.rejected_deadline
                + run.report.rejected_hot_partition
        );
    }

    #[test]
    fn cold_partitions_stay_admitted_while_hot_one_sheds() {
        let (data, mut rt) = small_runtime(0);
        rt.cfg.admission.partition_queue_depth = 1;
        rt.cfg.batch.max_batch = 64;
        rt.cfg.batch.max_wait_ns = 1e12;
        // two distinct rows: if they home differently, both first
        // arrivals admit even though each partition's bound is 1
        let qa = data.get(0).to_vec();
        let qb = data.get(900).to_vec();
        let ha = rt.index.home_partition(&qa);
        let hb = rt.index.home_partition(&qb);
        let reqs = vec![
            Request::new(0, 0.0, qa.clone(), 5),
            Request::new(1, 1.0, qb.clone(), 5),
            Request::new(2, 2.0, qa, 5),
            Request::new(3, 3.0, qb, 5),
        ];
        let run = rt.serve_open(reqs);
        let expect_rejected = if ha == hb { 3 } else { 2 };
        assert_eq!(run.report.rejected_hot_partition, expect_rejected);
    }
}
