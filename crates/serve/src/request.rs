//! Request and outcome types of the serving runtime.

use fastann_data::Neighbor;

/// One timestamped online query entering the serving runtime.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-assigned request id (unique within a run; the runtime
    /// reports outcomes keyed by it).
    pub id: u64,
    /// Tenant the request bills against (per-tenant token buckets).
    pub tenant: u32,
    /// Virtual arrival time in nanoseconds.
    pub arrival_ns: f64,
    /// The query vector (must match the index dimensionality).
    pub query: Vec<f32>,
    /// Neighbours requested.
    pub k: usize,
    /// Absolute virtual-time deadline in nanoseconds;
    /// `f64::INFINITY` means "no deadline".
    pub deadline_ns: f64,
}

impl Request {
    /// A request with no deadline, arriving at `arrival_ns`.
    pub fn new(id: u64, arrival_ns: f64, query: Vec<f32>, k: usize) -> Self {
        Self {
            id,
            tenant: 0,
            arrival_ns,
            query,
            k,
            deadline_ns: f64::INFINITY,
        }
    }

    /// Sets the tenant (builder style).
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets an absolute deadline (builder style).
    pub fn deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }
}

/// Why admission control refused a request. Typed so callers (and the
/// closed-loop load generator) can react differently to "back off" versus
/// "this deadline was never feasible".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant's token bucket was empty or the global queue-depth bound
    /// was reached: the system is shedding load.
    Overloaded,
    /// Even an immediate dispatch could not answer before the request's
    /// deadline, so queueing it would only waste engine time.
    DeadlineUnmeetable,
    /// The request's home partition already has
    /// [`crate::AdmissionPolicy::partition_queue_depth`] outstanding
    /// requests: one hot partition sheds its own overload instead of
    /// stalling the whole node.
    HotPartition(u32),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Overloaded => write!(f, "overloaded"),
            Rejection::DeadlineUnmeetable => write!(f, "deadline unmeetable"),
            Rejection::HotPartition(p) => write!(f, "hot partition {p}"),
        }
    }
}

/// A successfully answered request.
#[derive(Clone, Debug, PartialEq)]
pub struct Completion {
    /// The request's id.
    pub id: u64,
    /// The request's tenant.
    pub tenant: u32,
    /// When the request arrived (virtual ns).
    pub arrival_ns: f64,
    /// When its results were ready (virtual ns).
    pub done_ns: f64,
    /// `true` when the result cache answered (no engine dispatch).
    pub cache_hit: bool,
    /// `true` when the fault-tolerant path returned a partial top-k.
    pub degraded: bool,
    /// The k nearest neighbours, ascending by distance.
    pub results: Vec<Neighbor>,
}

impl Completion {
    /// End-to-end virtual latency of this request.
    #[inline]
    pub fn latency_ns(&self) -> f64 {
        self.done_ns - self.arrival_ns
    }
}

/// Terminal state of one request.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Answered (through the engine or the cache).
    Completed(Completion),
    /// Refused by admission control.
    Rejected {
        /// The request's id.
        id: u64,
        /// The request's tenant.
        tenant: u32,
        /// Virtual time of the rejection (the arrival instant: admission
        /// decisions are made before any queueing).
        at_ns: f64,
        /// Why it was refused.
        reason: Rejection,
    },
}

impl Outcome {
    /// The request id this outcome belongs to.
    pub fn id(&self) -> u64 {
        match self {
            Outcome::Completed(c) => c.id,
            Outcome::Rejected { id, .. } => *id,
        }
    }

    /// The completion, when the request was answered.
    pub fn completion(&self) -> Option<&Completion> {
        match self {
            Outcome::Completed(c) => Some(c),
            Outcome::Rejected { .. } => None,
        }
    }
}
