//! Dataset diagnostics: the quantities that predict how hard a dataset is
//! to index and search.
//!
//! The paper's thesis is that *dimensionality* governs which index wins —
//! but what matters is the data's **intrinsic** dimensionality, not the
//! ambient one (a 960-dimensional GIST descriptor living near a
//! low-dimensional manifold is easy; uniform noise in 32 dimensions is
//! brutal). These estimators quantify that, and are used in the docs and
//! tests to sanity-check the synthetic generators against their real
//! counterparts' character.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::metric::Distance;
use crate::topk::TopK;
use crate::vector::VectorSet;

/// Summary statistics of a dataset sample.
#[derive(Clone, Copy, Debug)]
pub struct DatasetStats {
    /// Ambient dimensionality.
    pub dim: usize,
    /// Points examined (sampled).
    pub sample: usize,
    /// Mean distance to the nearest neighbour in the sample.
    pub mean_nn: f64,
    /// Mean distance between random pairs.
    pub mean_pair: f64,
    /// `mean_nn / mean_pair` — contrast ratio; near 1 means neighbours are
    /// no closer than random points (the curse of dimensionality in full
    /// force), near 0 means strong cluster structure.
    pub contrast: f64,
    /// Two-NN intrinsic-dimension estimate (Facco et al. 2017): the MLE of
    /// dimension from the ratio of 2nd to 1st neighbour distances.
    pub intrinsic_dim: f64,
}

/// Computes [`DatasetStats`] over a deterministic sample of up to
/// `max_sample` points.
///
/// # Panics
/// Panics if the dataset has fewer than 3 points.
pub fn dataset_stats(
    data: &VectorSet,
    dist: Distance,
    max_sample: usize,
    seed: u64,
) -> DatasetStats {
    assert!(data.len() >= 3, "need at least 3 points");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = data.len();
    let sample: Vec<usize> = if n <= max_sample {
        (0..n).collect()
    } else {
        (0..max_sample).map(|_| rng.gen_range(0..n)).collect()
    };

    let mut sum_nn = 0f64;
    let mut sum_ratio_ln = 0f64;
    let mut ratio_count = 0usize;
    for &i in &sample {
        // exact 2-NN of point i within the whole dataset
        let mut top = TopK::new(2);
        let qi = data.get(i);
        for (j, row) in data.iter().enumerate() {
            if j != i {
                top.push(crate::topk::Neighbor::new(j as u32, dist.eval(qi, row)));
            }
        }
        let nn = top.into_sorted();
        let r1 = nn[0].dist as f64;
        let r2 = nn[1].dist as f64;
        sum_nn += r1;
        if r1 > 0.0 && r2 > r1 {
            sum_ratio_ln += (r2 / r1).ln();
            ratio_count += 1;
        }
    }
    let mean_nn = sum_nn / sample.len() as f64;

    let mut sum_pair = 0f64;
    let pairs = sample.len().max(2);
    for _ in 0..pairs {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        sum_pair += dist.eval(data.get(a), data.get(b)) as f64;
    }
    let mean_pair = sum_pair / pairs as f64;

    // Facco et al.: d ≈ N / Σ ln(r2/r1)
    let intrinsic_dim = if ratio_count > 0 && sum_ratio_ln > 0.0 {
        ratio_count as f64 / sum_ratio_ln
    } else {
        0.0
    };

    DatasetStats {
        dim: data.dim(),
        sample: sample.len(),
        mean_nn,
        mean_pair,
        contrast: if mean_pair > 0.0 {
            mean_nn / mean_pair
        } else {
            1.0
        },
        intrinsic_dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    #[test]
    fn uniform_noise_has_high_intrinsic_dim_and_contrast() {
        // i.i.d. uniform points: intrinsic dim ≈ ambient dim, neighbours
        // barely closer than random pairs
        let mut rng = SmallRng::seed_from_u64(1);
        let dim = 12;
        let mut data = VectorSet::new(dim);
        let mut row = vec![0f32; dim];
        for _ in 0..1500 {
            for x in row.iter_mut() {
                *x = rng.gen();
            }
            data.push(&row);
        }
        let s = dataset_stats(&data, Distance::L2, 200, 2);
        assert!(
            s.intrinsic_dim > dim as f64 * 0.5,
            "intrinsic {}",
            s.intrinsic_dim
        );
        assert!(s.contrast > 0.4, "contrast {}", s.contrast);
    }

    #[test]
    fn low_dim_manifold_detected_in_high_ambient_dim() {
        // points on a 2-d plane embedded in 64 dimensions
        let mut rng = SmallRng::seed_from_u64(3);
        let mut data = VectorSet::new(64);
        let mut row = vec![0f32; 64];
        for _ in 0..1500 {
            let (u, v): (f32, f32) = (rng.gen(), rng.gen());
            for (d, x) in row.iter_mut().enumerate() {
                *x = u * (d as f32 * 0.1).sin() + v * (d as f32 * 0.1).cos();
            }
            data.push(&row);
        }
        let s = dataset_stats(&data, Distance::L2, 200, 4);
        assert!(
            s.intrinsic_dim < 8.0,
            "2-d manifold should have low intrinsic dim, got {}",
            s.intrinsic_dim
        );
        assert_eq!(s.dim, 64);
    }

    #[test]
    fn clustered_data_has_low_contrast() {
        let clustered = synth::sift_like(1500, 24, 5);
        let s = dataset_stats(&clustered, Distance::L2, 200, 6);
        assert!(s.contrast < 0.7, "clustered contrast {}", s.contrast);
        assert!(s.mean_nn < s.mean_pair);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = synth::sift_like(500, 8, 7);
        let a = dataset_stats(&data, Distance::L2, 100, 8);
        let b = dataset_stats(&data, Distance::L2, 100, 8);
        assert_eq!(a.mean_nn, b.mean_nn);
        assert_eq!(a.intrinsic_dim, b.intrinsic_dim);
    }

    #[test]
    #[should_panic]
    fn tiny_dataset_panics() {
        let data = VectorSet::from_flat(2, vec![0.0, 0.0, 1.0, 1.0]);
        let _ = dataset_stats(&data, Distance::L2, 10, 0);
    }
}
