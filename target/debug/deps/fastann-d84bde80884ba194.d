/root/repo/target/debug/deps/fastann-d84bde80884ba194.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfastann-d84bde80884ba194.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
