//! # fastann-bench
//!
//! The experiment harness: one function per table and figure of the paper,
//! plus the `repro` binary that regenerates them all.
//!
//! Everything runs at a configurable scale ([`Scale`]): the default `quick`
//! scale finishes a full reproduction in minutes on a laptop; `full`
//! (env `FASTANN_SCALE=full`) uses 8× the points and 4× the cores. Core
//! counts and dataset sizes are scaled-down versions of the paper's —
//! virtual-time simulation preserves the *shapes* (who wins, by what
//! factor, where curves bend), not the absolute numbers, as documented in
//! DESIGN.md.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod fmt;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-on-a-laptop scale (default).
    Quick,
    /// 8× points, 4× cores (`FASTANN_SCALE=full`).
    Full,
}

impl Scale {
    /// Reads `FASTANN_SCALE` from the environment (`full` → [`Scale::Full`],
    /// anything else → [`Scale::Quick`]).
    pub fn from_env() -> Scale {
        match std::env::var("FASTANN_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Dataset size multiplier.
    pub fn points_mult(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 8,
        }
    }

    /// Core-count multiplier.
    pub fn cores_mult(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Full => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_multipliers() {
        assert_eq!(Scale::Quick.points_mult(), 1);
        assert_eq!(Scale::Full.points_mult(), 8);
        assert_eq!(Scale::Full.cores_mult(), 4);
    }
}
