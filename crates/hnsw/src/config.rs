//! HNSW construction parameters.

/// Construction parameters of an [`crate::Hnsw`] index.
///
/// `m` is the parameter the paper sweeps in its Figure 6 (recall vs query
/// time for M ∈ {8, 16, 32, 64}, default 16): the number of bidirectional
/// links created for a newly inserted node per layer. Higher `m` yields a
/// denser graph — better recall, more memory, slower search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HnswConfig {
    /// Number of established connections per inserted node per layer
    /// (the paper's `M`, default 16).
    pub m: usize,
    /// Maximum connections a layer-0 node may hold; `2 * m` per the HNSW
    /// paper's recommendation.
    pub m_max0: usize,
    /// Beam width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Level-assignment multiplier; the HNSW paper recommends `1 / ln(M)`.
    pub level_mult: f64,
    /// Extend candidate set with candidates' neighbours before heuristic
    /// selection (HNSW Algorithm 4 `extendCandidates`; useful for very
    /// clustered data).
    pub extend_candidates: bool,
    /// Re-add pruned candidates if the selection falls short of `m`
    /// (HNSW Algorithm 4 `keepPrunedConnections`).
    pub keep_pruned: bool,
    /// RNG seed for level assignment.
    pub seed: u64,
    /// Width of the multi-entry beam carried across the upper layers
    /// during descent (construction and the default for searches). `1`
    /// degenerates to the classic single-seed greedy walk — which strands
    /// queries in the wrong basin on multi-modal (clustered) data; see
    /// DESIGN.md §13. Searches can override per query via
    /// `SearchOptions::with_entry_beam`.
    pub entry_beam: usize,
}

impl HnswConfig {
    /// Config with a given `M` and the paper-recommended derived values.
    pub fn with_m(m: usize) -> Self {
        assert!(m >= 2, "M must be at least 2");
        Self {
            m,
            m_max0: 2 * m,
            ef_construction: 200,
            level_mult: 1.0 / (m as f64).ln(),
            extend_candidates: false,
            keep_pruned: true,
            seed: 0,
            entry_beam: 4,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets `efConstruction` (builder style).
    pub fn ef_construction(mut self, ef: usize) -> Self {
        assert!(ef >= 1, "efConstruction must be at least 1");
        self.ef_construction = ef;
        self
    }

    /// Sets the upper-layer descent beam width (builder style).
    pub fn entry_beam(mut self, beam: usize) -> Self {
        assert!(beam >= 1, "entry beam must be at least 1");
        self.entry_beam = beam;
        self
    }

    /// Maximum links for a node at `layer`.
    #[inline]
    pub fn max_links(&self, layer: usize) -> usize {
        if layer == 0 {
            self.m_max0
        } else {
            self.m
        }
    }
}

impl Default for HnswConfig {
    /// The paper's defaults: `M = 16`, `m_max0 = 32`, `efConstruction = 200`.
    fn default() -> Self {
        Self::with_m(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = HnswConfig::default();
        assert_eq!(c.m, 16);
        assert_eq!(c.m_max0, 32);
        assert_eq!(c.ef_construction, 200);
        assert!((c.level_mult - 1.0 / 16f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn with_m_derives_bounds() {
        let c = HnswConfig::with_m(8);
        assert_eq!(c.m_max0, 16);
        assert_eq!(c.max_links(0), 16);
        assert_eq!(c.max_links(1), 8);
        assert_eq!(c.max_links(5), 8);
    }

    #[test]
    fn builders_chain() {
        let c = HnswConfig::with_m(4)
            .seed(9)
            .ef_construction(50)
            .entry_beam(2);
        assert_eq!(c.seed, 9);
        assert_eq!(c.ef_construction, 50);
        assert_eq!(c.entry_beam, 2);
    }

    #[test]
    fn entry_beam_defaults_to_four() {
        assert_eq!(HnswConfig::default().entry_beam, 4);
    }

    #[test]
    #[should_panic]
    fn zero_entry_beam_rejected() {
        let _ = HnswConfig::with_m(4).entry_beam(0);
    }

    #[test]
    #[should_panic]
    fn tiny_m_rejected() {
        let _ = HnswConfig::with_m(1);
    }
}
