/root/repo/target/debug/deps/structures-2d567e43c7b84dbf.d: crates/bench/benches/structures.rs Cargo.toml

/root/repo/target/debug/deps/libstructures-2d567e43c7b84dbf.rmeta: crates/bench/benches/structures.rs Cargo.toml

crates/bench/benches/structures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
