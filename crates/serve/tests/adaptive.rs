//! Integration tests for adaptive replication and load-aware routing:
//! the skewed-trace determinism contract (bit-identical reports and
//! metrics at any thread count) and the hot-partition regression (a
//! deliberately hot partition gains a replica and its rejection count
//! drops versus static routing).

use fastann_core::{DistIndex, EngineConfig, RouteConfig, RoutingPolicy, SearchOptions};
use fastann_data::quant::Sq8;
use fastann_data::{synth, VectorSet};
use fastann_hnsw::HnswConfig;
use fastann_obs::Metrics;
use fastann_serve::{ControllerPolicy, Request, ServeConfig, ServeReport, ServeRuntime};

const DIM: usize = 16;
const K: usize = 10;
const SEED: u64 = 77;

fn corpus() -> VectorSet {
    synth::sift_like(2_000, DIM, SEED)
}

/// One core per node and fan-out 1, so replication spreads across
/// otherwise-idle nodes and every probe of the skewed trace lands on the
/// anchor's home partition — the hottest partition is unambiguous.
fn build_index(data: &VectorSet, threads: usize) -> DistIndex {
    DistIndex::build(
        data,
        EngineConfig::new(8, 1)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(SEED))
            .with_route(RouteConfig {
                margin_frac: 0.0,
                max_partitions: 1,
            })
            .with_seed(SEED)
            .with_threads(threads),
    )
}

/// A deliberately skewed trace: every request queries a jittered copy of
/// the same anchor row, at a rate that outruns a single core, so the
/// anchor's home partition is persistently hot.
fn skewed_trace(data: &VectorSet, n: usize) -> Vec<Request> {
    let anchor = data.get(17).to_vec();
    let mut reqs = Vec::with_capacity(n);
    for i in 0..n {
        let mut q = anchor.clone();
        // deterministic per-request jitter (distinct cache keys)
        for (j, x) in q.iter_mut().enumerate() {
            let h = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(j as u64);
            *x += ((h % 1000) as f32 / 1000.0 - 0.5) * 0.05;
        }
        reqs.push(Request::new(i as u64, i as f64 * 4_000.0, q, K));
    }
    reqs
}

fn serve_cfg(routing: RoutingPolicy) -> ServeConfig {
    // a wide beam makes engine service time dominate the batch cycle, so
    // spreading the hot partition across replicas visibly drains the queue
    let mut cfg = ServeConfig::new(SearchOptions::new(K).with_ef(96).with_routing(routing))
        .with_batch(8, 50_000.0)
        .with_cache_capacity(0)
        .with_controller(
            ControllerPolicy::new()
                .with_window_ns(2e6)
                .with_shares(0.30, 0.05),
        );
    cfg.admission.partition_queue_depth = 8;
    cfg
}

fn run_leg(data: &VectorSet, threads: usize, routing: RoutingPolicy) -> (ServeReport, String) {
    let mut rt = ServeRuntime::new(
        build_index(data, threads),
        Sq8::encode(data),
        serve_cfg(routing),
    );
    let obs = Metrics::new();
    rt.set_metrics(&obs);
    let report = rt.serve_open(skewed_trace(data, 300)).report;
    (report, obs.snapshot().to_prometheus())
}

#[test]
fn skewed_trace_is_bit_identical_across_thread_counts() {
    let data = corpus();
    let adaptive = RoutingPolicy::PowerOfTwo { base: 1, max: 4 };
    let (r1, m1) = run_leg(&data, 1, adaptive);
    let (r2, m2) = run_leg(&data, 2, adaptive);
    let (r4, m4) = run_leg(&data, 4, adaptive);
    assert_eq!(r1, r2, "ServeReport must not depend on the thread count");
    assert_eq!(r1, r4, "ServeReport must not depend on the thread count");
    assert_eq!(r1.fingerprint(), r4.fingerprint(), "full float bits too");
    assert_eq!(
        m1, m2,
        "MetricsSnapshot must not depend on the thread count"
    );
    assert_eq!(
        m1, m4,
        "MetricsSnapshot must not depend on the thread count"
    );
    // the trace must be hot enough for the contract to mean something
    assert!(r1.replica_raises > 0, "the controller must have acted");
}

#[test]
fn hot_partition_gains_replica_and_its_rejections_drop() {
    let data = corpus();
    let hot = build_index(&data, 1).home_partition(data.get(17)) as usize;

    let (fixed, _) = run_leg(&data, 1, RoutingPolicy::Static(1));
    let (adaptive, _) = run_leg(&data, 1, RoutingPolicy::PowerOfTwo { base: 1, max: 4 });

    // the static leg overloads the hot partition's queue and sheds there
    assert!(
        fixed.rejected_hot_partition > 0,
        "the trace must stress the hot partition under static routing"
    );
    assert_eq!(
        fixed.per_partition_rejections.iter().sum::<u64>(),
        fixed.per_partition_rejections[hot],
        "all shedding lands on the hot partition"
    );

    // the controller notices and raises exactly that partition
    assert!(adaptive.replica_raises > 0, "the hot partition was raised");
    assert!(
        adaptive.final_replicas[hot] > 1,
        "the raised partition is the hot one: {:?}",
        adaptive.final_replicas
    );
    assert!(
        adaptive.routing_generation > 0,
        "raises bump the routing generation"
    );
    for (p, &r) in adaptive.final_replicas.iter().enumerate() {
        if p != hot {
            assert_eq!(
                r, 1,
                "cold partitions stay at base: {:?}",
                adaptive.final_replicas
            );
        }
    }

    // and the extra replicas drain the hot queue: fewer rejections
    assert!(
        adaptive.rejected_hot_partition < fixed.rejected_hot_partition,
        "adaptive hot rejections {} must drop below static {}",
        adaptive.rejected_hot_partition,
        fixed.rejected_hot_partition
    );
    assert!(
        adaptive.rejection_rate() < fixed.rejection_rate(),
        "adaptive rejection rate must improve"
    );
}
