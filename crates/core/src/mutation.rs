//! Live index mutation: upserts, deletes, background compaction and
//! dynamic partition splits over a built [`DistIndex`].
//!
//! The paper's engine is build-once; its target regime — web-scale
//! serving — is not. This module adds the LANNS-style maintenance loop on
//! top of the frozen build path:
//!
//! * **Upsert** — the vector is routed by the existing VP skeleton to its
//!   home partition (`max_partitions = 1`, no margin) and appended through
//!   the incremental HNSW insertion path ([`fastann_hnsw::Hnsw::add`]),
//!   which also refreshes the SQ8 codes and the k-center entry set.
//!   Re-upserting an existing global id tombstones the old row first, so
//!   the id moves to wherever its new vector routes.
//! * **Delete** — a tombstone on the owning partition's local row: the
//!   node stays traversable as a graph waypoint but is filtered from every
//!   result ([`fastann_hnsw::Hnsw::remove`]).
//! * **Compaction** — after the batch applies, any partition whose
//!   tombstone ratio exceeds [`MutationRequest::compact_threshold`] is
//!   rebuilt from its surviving rows with the same per-partition seed
//!   derivation the original build used, and charged to virtual time
//!   through the engine's cost model.
//! * **Split** — any partition whose live row count exceeds
//!   [`MutationRequest::split_above`] is split at a deterministically
//!   selected vantage point and median radius; the VP skeleton grows a new
//!   leaf ([`fastann_vptree::PartitionTree::split_leaf`]) and the new
//!   partition id wraps onto the existing cores for dispatch.
//!
//! Every step is sequential over `&mut DistIndex`, so outcomes are
//! bit-identical across `FASTANN_THREADS` by construction; the proptests
//! at the bottom pin that and the rebuild-equivalence contract.
//!
//! A successful batch (one that changed anything) bumps
//! [`DistIndex::mutation_epoch`] exactly once and appends to
//! [`DistIndex::mutation_log`]; `fastann-serve` keys its result cache on
//! that epoch. Neither the engine epoch nor the log is persisted by the
//! `FANNDIST` snapshot format — per-partition tombstones and epochs ride
//! the HNSW v4 blobs instead — and a split index cannot be snapshotted at
//! all (the format fixes one partition per core).

use fastann_data::select::median;
use fastann_data::VectorSet;
use fastann_obs::Metrics;
use fastann_vptree::RouteConfig;

use crate::build::{DistIndex, Partition};
use crate::local::{LocalIndex, LocalIndexKind};
use crate::router::Router;

/// Vantage-point candidates scored when splitting a partition (mirrors the
/// build-time `N_CANDIDATES`).
const SPLIT_CANDIDATES: usize = 16;
/// Rows sampled to score each split vantage candidate.
const SPLIT_SCORE_SAMPLE: usize = 256;

/// One requested change to the index.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Insert `vector`, or replace the vector stored under `global_id`
    /// when one is given and present (the replacement re-routes: the id
    /// lands wherever the *new* vector belongs).
    Upsert {
        /// Existing id to replace, or `None` to mint a fresh id.
        global_id: Option<u32>,
        /// The vector (must match the index dimensionality).
        vector: Vec<f32>,
    },
    /// Tombstone the row holding `global_id`.
    Delete {
        /// The id to remove.
        global_id: u32,
    },
}

impl Mutation {
    /// Metric label for this mutation kind (`"upsert"` / `"delete"`).
    pub fn kind(&self) -> &'static str {
        match self {
            Mutation::Upsert { .. } => "upsert",
            Mutation::Delete { .. } => "delete",
        }
    }
}

/// What happened to one [`Mutation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOutcome {
    /// A fresh row was inserted into partition `part` under `global_id`.
    Inserted {
        /// Id the row is addressable by.
        global_id: u32,
        /// Home partition the router chose.
        part: u32,
    },
    /// `global_id` existed: its old row was tombstoned in `prev_part` and
    /// the new vector inserted into `part`.
    Replaced {
        /// The re-used id.
        global_id: u32,
        /// Partition the old row was tombstoned in.
        prev_part: u32,
        /// Partition the new vector routed to.
        part: u32,
    },
    /// `global_id` was live in partition `part` and is now tombstoned.
    Deleted {
        /// The removed id.
        global_id: u32,
        /// Partition that owned the row.
        part: u32,
    },
    /// `global_id` was not live anywhere; nothing changed.
    NotFound {
        /// The missing id.
        global_id: u32,
    },
}

impl MutationOutcome {
    /// `true` when the outcome changed the index.
    pub fn effective(&self) -> bool {
        !matches!(self, MutationOutcome::NotFound { .. })
    }
}

/// One applied-mutation record: the engine epoch the batch committed at
/// plus the outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// [`DistIndex::mutation_epoch`] after the owning batch committed.
    pub epoch: u64,
    /// What the mutation did.
    pub outcome: MutationOutcome,
}

/// Append-only record of every effective mutation applied to a
/// [`DistIndex`], in application order. In-memory only — rebuild it by
/// replaying your own write stream if you persist and reload.
#[derive(Clone, Debug, Default)]
pub struct MutationLog {
    entries: Vec<LogEntry>,
}

impl MutationLog {
    /// All entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of recorded mutations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries committed strictly after `epoch` — what a cache or replica
    /// that saw `epoch` still has to catch up on.
    pub fn since(&self, epoch: u64) -> &[LogEntry] {
        let start = self.entries.partition_point(|e| e.epoch <= epoch);
        &self.entries[start..]
    }

    pub(crate) fn push(&mut self, entry: LogEntry) {
        self.entries.push(entry);
    }
}

/// One partition rebuild performed by the compaction pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionEvent {
    /// Rebuilt partition.
    pub part: u32,
    /// Tombstoned rows physically dropped by the rebuild.
    pub dropped: usize,
    /// Distance evaluations the rebuild spent.
    pub ndist: u64,
}

/// One dynamic partition split performed after the batch applied.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitEvent {
    /// Partition that was split (keeps the within-radius half).
    pub part: u32,
    /// Newly created partition (the outside half).
    pub new_part: u32,
    /// Rows that moved to `new_part`.
    pub moved: usize,
}

/// Everything one mutation batch did. All fields are deterministic
/// functions of the index state and the batch — bit-identical across
/// `FASTANN_THREADS`.
#[derive(Clone, Debug)]
pub struct MutationReport {
    /// Engine epoch after the batch (unchanged when nothing was
    /// effective).
    pub epoch: u64,
    /// Per-mutation outcome, in batch order.
    pub outcomes: Vec<MutationOutcome>,
    /// Partitions rebuilt by the compaction pass, ascending by id.
    pub compactions: Vec<CompactionEvent>,
    /// Partition splits, ascending by parent id.
    pub splits: Vec<SplitEvent>,
    /// Largest tombstone ratio over all partitions *after* maintenance.
    pub max_tombstone_ratio: f64,
    /// Virtual nanoseconds charged for routing + maintenance rebuilds.
    pub maintenance_ns: f64,
    /// Distance evaluations spent (routing + rebuilds).
    pub ndist: u64,
}

impl MutationReport {
    /// `true` when the batch changed the index (and therefore bumped the
    /// engine epoch).
    pub fn changed(&self) -> bool {
        self.outcomes.iter().any(MutationOutcome::effective)
            || !self.compactions.is_empty()
            || !self.splits.is_empty()
    }
}

/// Builder for applying a batch of mutations — the write-side sibling of
/// [`crate::SearchRequest`].
///
/// ```no_run
/// use fastann_core::{DistIndex, EngineConfig, Mutation, MutationRequest};
/// use fastann_data::synth;
///
/// let data = synth::sift_like(20_000, 64, 1);
/// let mut index = DistIndex::build(&data, EngineConfig::new(16, 4));
/// let report = MutationRequest::new(&mut index)
///     .mutations(vec![
///         Mutation::Upsert { global_id: None, vector: data.get(0).to_vec() },
///         Mutation::Delete { global_id: 7 },
///     ])
///     .compact_threshold(0.3)
///     .run();
/// assert!(report.changed());
/// ```
pub struct MutationRequest<'a> {
    index: &'a mut DistIndex,
    batch: Vec<Mutation>,
    compact_threshold: f64,
    split_above: usize,
    metrics: Option<Metrics>,
}

impl<'a> MutationRequest<'a> {
    /// A mutation batch against `index`. The index must hold HNSW
    /// partitions ([`LocalIndexKind::Hnsw`]); the exact tree and
    /// brute-force kinds are frozen baselines.
    pub fn new(index: &'a mut DistIndex) -> Self {
        Self {
            index,
            batch: Vec::new(),
            compact_threshold: 0.3,
            split_above: usize::MAX,
            metrics: None,
        }
    }

    /// Sets the mutations to apply, in order (builder style).
    pub fn mutations(mut self, batch: Vec<Mutation>) -> Self {
        self.batch = batch;
        self
    }

    /// Appends one mutation (builder style).
    pub fn mutation(mut self, m: Mutation) -> Self {
        self.batch.push(m);
        self
    }

    /// Tombstone ratio above which a partition is compacted (rebuilt from
    /// its live rows) after the batch applies. Default `0.3`; `> 1.0`
    /// disables compaction.
    pub fn compact_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "compaction threshold must be positive");
        self.compact_threshold = threshold;
        self
    }

    /// Live row count above which a partition is split into two
    /// (LANNS-style dynamic sharding). Default `usize::MAX` (off).
    /// Splitting requires the VP-tree router; the flat-pivot baseline
    /// never splits.
    pub fn split_above(mut self, bound: usize) -> Self {
        assert!(bound >= 2, "split bound must be at least 2");
        self.split_above = bound;
        self
    }

    /// Attaches a metrics registry: the run records
    /// `fastann_mutations_total{kind}`, the `fastann_tombstone_ratio`
    /// max-gauge and `fastann_compactions_total` /
    /// `fastann_splits_total`.
    pub fn metrics(mut self, metrics: &Metrics) -> Self {
        self.metrics = Some(metrics.clone());
        self
    }

    /// Applies the batch, then compaction, then splits. Sequential and
    /// deterministic: the same index state and batch produce bit-identical
    /// reports at every `FASTANN_THREADS`.
    ///
    /// # Panics
    /// Panics when a vector's dimensionality mismatches the index, when a
    /// partition kind is immutable, or when the index handle is shared
    /// (e.g. a live [`crate::SearchRequest`] still holds the partitions).
    pub fn run(self) -> MutationReport {
        let MutationRequest {
            index,
            batch,
            compact_threshold,
            split_above,
            metrics,
        } = self;
        let dim = index.dim();
        let metric = index.config.metric;
        let route_cost = index.config.cost.dist_ns(dim);

        let mut outcomes = Vec::with_capacity(batch.len());
        let mut maintenance_ns = 0.0f64;
        let mut ndist_total = 0u64;

        {
            let parts = writable(&mut index.partitions);
            let mut next_gid = parts
                .iter()
                .flat_map(|p| p.global_ids.iter().copied())
                .max()
                .map_or(0, |g| g + 1);

            for m in &batch {
                if let Some(obs) = &metrics {
                    obs.inc("fastann_mutations_total", &[("kind", m.kind())], 1);
                }
                let outcome = match m {
                    Mutation::Delete { global_id } => match find_live(parts, *global_id) {
                        Some((pid, local)) => {
                            let changed = parts[pid]
                                .index
                                .remove(local)
                                .expect("delete requires an HNSW partition");
                            debug_assert!(changed, "find_live returned a live row");
                            MutationOutcome::Deleted {
                                global_id: *global_id,
                                part: parts[pid].id,
                            }
                        }
                        None => MutationOutcome::NotFound {
                            global_id: *global_id,
                        },
                    },
                    Mutation::Upsert { global_id, vector } => {
                        assert_eq!(vector.len(), dim, "upsert dimensionality mismatch");
                        let prev = global_id.and_then(|g| find_live(parts, g));
                        if let Some((pid, local)) = prev {
                            parts[pid]
                                .index
                                .remove(local)
                                .expect("upsert requires an HNSW partition");
                        }
                        let gid = match global_id {
                            Some(g) => {
                                next_gid = next_gid.max(g + 1);
                                *g
                            }
                            None => {
                                let g = next_gid;
                                next_gid += 1;
                                g
                            }
                        };
                        let (route, route_ndist) = index.router.route(
                            vector,
                            &RouteConfig {
                                margin_frac: 0.0,
                                max_partitions: 1,
                            },
                        );
                        ndist_total += route_ndist;
                        maintenance_ns += route_ndist as f64 * route_cost;
                        let home = route[0] as usize;
                        parts[home]
                            .index
                            .insert(vector)
                            .expect("upsert requires an HNSW partition");
                        parts[home].global_ids.push(gid);
                        match prev {
                            Some((pid, _)) => MutationOutcome::Replaced {
                                global_id: gid,
                                prev_part: parts[pid].id,
                                part: parts[home].id,
                            },
                            None => MutationOutcome::Inserted {
                                global_id: gid,
                                part: parts[home].id,
                            },
                        }
                    }
                };
                outcomes.push(outcome);
            }
        }

        // --- background compaction (deterministic virtual-time pass) ---
        let compactions = compact(
            index,
            compact_threshold,
            &mut maintenance_ns,
            &mut ndist_total,
        );
        if let Some(obs) = &metrics {
            obs.inc("fastann_compactions_total", &[], compactions.len() as u64);
        }

        // --- dynamic partition splits ---
        let splits = split(
            index,
            split_above,
            metric,
            &mut maintenance_ns,
            &mut ndist_total,
        );
        if let Some(obs) = &metrics {
            obs.inc("fastann_splits_total", &[], splits.len() as u64);
        }

        let max_tombstone_ratio = index
            .partitions
            .iter()
            .map(|p| p.index.tombstone_ratio())
            .fold(0.0f64, f64::max);
        if let Some(obs) = &metrics {
            obs.gauge_max("fastann_tombstone_ratio", &[], max_tombstone_ratio);
        }

        let changed = outcomes.iter().any(MutationOutcome::effective)
            || !compactions.is_empty()
            || !splits.is_empty();
        if changed {
            index.mutation_epoch += 1;
            index.build_stats.partition_sizes = index
                .partitions
                .iter()
                .map(|p| p.global_ids.len())
                .collect();
            let epoch = index.mutation_epoch;
            for o in outcomes.iter().filter(|o| o.effective()) {
                index.mutation_log.push(LogEntry { epoch, outcome: *o });
            }
        }

        MutationReport {
            epoch: index.mutation_epoch,
            outcomes,
            compactions,
            splits,
            max_tombstone_ratio,
            maintenance_ns,
            ndist: ndist_total,
        }
    }
}

/// Mutable access to the shared partition vector.
///
/// # Panics
/// Panics when another handle still shares the `Arc`.
fn writable(parts: &mut std::sync::Arc<Vec<Partition>>) -> &mut Vec<Partition> {
    std::sync::Arc::get_mut(parts)
        .expect("mutation requires exclusive ownership of the index (drop shared handles first)")
}

/// Locates the live row holding `gid`: `(partition slot, local row id)`.
/// Scans partitions in slot order — each live global id exists at most
/// once by construction.
fn find_live(parts: &[Partition], gid: u32) -> Option<(usize, u32)> {
    for (pid, p) in parts.iter().enumerate() {
        for (local, &g) in p.global_ids.iter().enumerate() {
            if g == gid && p.index.is_live(local as u32) {
                return Some((pid, local as u32));
            }
        }
    }
    None
}

/// The surviving rows of a partition: `(vectors, global ids)`.
fn live_rows(p: &Partition, dim: usize) -> (VectorSet, Vec<u32>) {
    let h = p
        .index
        .as_hnsw()
        .expect("maintenance requires HNSW partitions");
    let mut rows = VectorSet::with_capacity(dim, h.live_len());
    let mut gids = Vec::with_capacity(h.live_len());
    for local in 0..h.len() {
        if h.is_live(local as u32) {
            rows.push(h.vectors().get(local));
            gids.push(p.global_ids[local]);
        }
    }
    (rows, gids)
}

/// Rebuilds every partition whose tombstone ratio exceeds `threshold`
/// from its surviving rows, charging the rebuild to virtual time through
/// the engine cost model. Ascending partition order keeps the pass
/// deterministic.
fn compact(
    index: &mut DistIndex,
    threshold: f64,
    maintenance_ns: &mut f64,
    ndist_total: &mut u64,
) -> Vec<CompactionEvent> {
    let dim = index.dim();
    let metric = index.config.metric;
    let hnsw_cfg = index.config.hnsw;
    let seed = index.config.seed;
    let cost = index.config.cost;
    let parts = writable(&mut index.partitions);
    let mut events = Vec::new();
    for p in parts.iter_mut() {
        if p.index.tombstone_ratio() <= threshold {
            continue;
        }
        let dropped = p.index.len() - p.index.live_len();
        let (rows, gids) = live_rows(p, dim);
        // Same per-partition seed derivation as the original build, so a
        // compaction is exactly the "fresh rebuild of the surviving set"
        // the equivalence contract compares against.
        let rebuilt = LocalIndex::build(
            LocalIndexKind::Hnsw,
            rows,
            metric,
            hnsw_cfg,
            seed ^ ((p.id as u64) << 8),
        );
        let ndist = rebuilt.build_ndist();
        *ndist_total += ndist;
        *maintenance_ns += cost.dists_ns(ndist, dim);
        p.index = rebuilt;
        p.global_ids = gids;
        events.push(CompactionEvent {
            part: p.id,
            dropped,
            ndist,
        });
    }
    events
}

/// Deterministic vantage selection for a split: stride-sampled candidates
/// scored by spread-about-median over a stride-sampled row set (the
/// build-time heuristic, minus the RNG).
fn split_vantage(rows: &VectorSet, metric: fastann_data::Distance) -> (Vec<f32>, u64) {
    let n = rows.len();
    let stride_pick = |count: usize| -> Vec<u32> {
        let take = count.min(n);
        (0..take).map(|i| (i * n / take) as u32).collect()
    };
    let candidates = stride_pick(SPLIT_CANDIDATES);
    let sample = stride_pick(SPLIT_SCORE_SAMPLE);
    let (best, ndist) = fastann_vptree::select_vantage(rows, &candidates, rows, &sample, metric);
    (rows.get(candidates[best] as usize).to_vec(), ndist)
}

/// Splits every partition whose live row count exceeds `bound` at a
/// deterministic vantage point and median radius, growing the VP skeleton
/// by one leaf per split. No-op under the flat-pivot router (its
/// closest-pivot assignment has no ball to split).
fn split(
    index: &mut DistIndex,
    bound: usize,
    metric: fastann_data::Distance,
    maintenance_ns: &mut f64,
    ndist_total: &mut u64,
) -> Vec<SplitEvent> {
    if bound == usize::MAX || !matches!(*index.router, Router::VpTree(_)) {
        return Vec::new();
    }
    let dim = index.dim();
    let hnsw_cfg = index.config.hnsw;
    let seed = index.config.seed;
    let cost = index.config.cost;
    let mut events = Vec::new();
    // Snapshot the partition count: a freshly created half is at most half
    // the parent, so one pass suffices for any bound ≥ 2.
    let snapshot = index.partitions.len();
    for slot in 0..snapshot {
        if index.partitions[slot].index.live_len() <= bound {
            continue;
        }
        let (rows, gids) = live_rows(&index.partitions[slot], dim);
        let (vp, vant_ndist) = split_vantage(&rows, metric);
        let dists: Vec<f32> = rows.iter().map(|r| metric.eval(&vp, r)).collect();
        *ndist_total += vant_ndist + dists.len() as u64;
        *maintenance_ns += cost.dists_ns(vant_ndist + dists.len() as u64, dim);
        let mu = median(&mut dists.clone());
        let mut inside = VectorSet::with_capacity(dim, rows.len());
        let mut inside_gids = Vec::new();
        let mut outside = VectorSet::with_capacity(dim, rows.len());
        let mut outside_gids = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            // `d <= mu` is the router's near-side test — assignment must
            // agree with it or future upserts land on the wrong half
            if dists[i] <= mu {
                inside.push(r);
                inside_gids.push(gids[i]);
            } else {
                outside.push(r);
                outside_gids.push(gids[i]);
            }
        }
        if inside.is_empty() || outside.is_empty() {
            continue; // degenerate radius (duplicate-heavy data): unsplittable
        }
        let old_pid = index.partitions[slot].id;
        let new_pid = index.partitions.len() as u32;
        let left = LocalIndex::build(
            LocalIndexKind::Hnsw,
            inside,
            metric,
            hnsw_cfg,
            seed ^ ((old_pid as u64) << 8),
        );
        let right = LocalIndex::build(
            LocalIndexKind::Hnsw,
            outside,
            metric,
            hnsw_cfg,
            seed ^ ((new_pid as u64) << 8),
        );
        let build_ndist = left.build_ndist() + right.build_ndist();
        *ndist_total += build_ndist;
        *maintenance_ns += cost.dists_ns(build_ndist, dim);
        let moved = outside_gids.len();
        // split() only runs for VP-tree routers (checked by the caller), so
        // the non-VpTree arm is simply never entered
        if let Router::VpTree(tree) = std::sync::Arc::get_mut(&mut index.router)
            .expect("split requires exclusive ownership of the router")
        {
            tree.split_leaf(old_pid, vp, mu, new_pid);
        }
        let parts = writable(&mut index.partitions);
        parts[slot] = Partition {
            id: old_pid,
            global_ids: inside_gids,
            index: left,
        };
        parts.push(Partition {
            id: new_pid,
            global_ids: outside_gids,
            index: right,
        });
        events.push(SplitEvent {
            part: old_pid,
            new_part: new_pid,
            moved,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, SearchOptions};
    use crate::request::SearchRequest;
    use fastann_data::{synth, Neighbor};
    use fastann_hnsw::HnswConfig;

    fn engine_cfg(seed: u64, threads: usize) -> EngineConfig {
        EngineConfig::new(4, 2)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
            .with_seed(seed)
            .with_threads(threads)
    }

    fn small_index(n: usize, seed: u64, threads: usize) -> (VectorSet, DistIndex) {
        let data = synth::sift_like(n, 12, seed);
        let index = DistIndex::build(&data, engine_cfg(seed, threads));
        (data, index)
    }

    fn engine_knn(index: &DistIndex, q: &[f32], k: usize) -> Vec<Neighbor> {
        let mut queries = VectorSet::new(index.dim());
        queries.push(q);
        let report = SearchRequest::new(index, &queries)
            .opts(SearchOptions::new(k))
            .run();
        report.results[0].clone()
    }

    #[test]
    fn upsert_inserts_and_is_immediately_searchable() {
        let (_, mut index) = small_index(600, 5, 1);
        let v = synth::sift_like(1, 12, 999).get(0).to_vec();
        let report = MutationRequest::new(&mut index)
            .mutation(Mutation::Upsert {
                global_id: None,
                vector: v.clone(),
            })
            .run();
        assert_eq!(report.outcomes.len(), 1);
        let MutationOutcome::Inserted { global_id, .. } = report.outcomes[0] else {
            panic!("expected Inserted, got {:?}", report.outcomes[0]);
        };
        assert_eq!(global_id, 600, "fresh ids continue past the build");
        assert_eq!(report.epoch, 1);
        assert_eq!(index.mutation_epoch, 1);
        assert_eq!(index.mutation_log.len(), 1);
        let hits = engine_knn(&index, &v, 1);
        assert_eq!(hits[0].id, 600, "the new row answers its own query");
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn delete_filters_id_from_engine_results() {
        let (data, mut index) = small_index(600, 6, 1);
        let victim = 123u32;
        assert_eq!(
            engine_knn(&index, data.get(victim as usize), 1)[0].id,
            victim
        );
        let report = MutationRequest::new(&mut index)
            .mutation(Mutation::Delete { global_id: victim })
            .run();
        assert!(matches!(
            report.outcomes[0],
            MutationOutcome::Deleted { global_id: 123, .. }
        ));
        let hits = engine_knn(&index, data.get(victim as usize), 10);
        assert!(
            hits.iter().all(|n| n.id != victim),
            "deleted id must never appear"
        );
        // a second delete of the same id is a no-op and keeps the epoch
        let epoch = index.mutation_epoch;
        let report = MutationRequest::new(&mut index)
            .mutation(Mutation::Delete { global_id: victim })
            .run();
        assert!(matches!(
            report.outcomes[0],
            MutationOutcome::NotFound { global_id: 123 }
        ));
        assert!(!report.changed());
        assert_eq!(index.mutation_epoch, epoch, "ineffective batch: no bump");
    }

    #[test]
    fn upsert_existing_id_replaces_and_reroutes() {
        let (data, mut index) = small_index(600, 7, 1);
        let new_v = synth::sift_like(1, 12, 4242).get(0).to_vec();
        let report = MutationRequest::new(&mut index)
            .mutation(Mutation::Upsert {
                global_id: Some(9),
                vector: new_v.clone(),
            })
            .run();
        let MutationOutcome::Replaced { global_id, .. } = report.outcomes[0] else {
            panic!("expected Replaced, got {:?}", report.outcomes[0]);
        };
        assert_eq!(global_id, 9);
        let hits = engine_knn(&index, &new_v, 1);
        assert_eq!(hits[0].id, 9, "the id answers at its new location");
        assert_eq!(hits[0].dist, 0.0);
        let near_old = engine_knn(&index, data.get(9), 10);
        assert!(
            near_old.iter().all(|n| n.id != 9 || n.dist > 0.0),
            "the old row is gone"
        );
    }

    #[test]
    fn compaction_rebuilds_partitions_over_threshold() {
        let (data, mut index) = small_index(600, 8, 1);
        let deletes: Vec<Mutation> = (0..240)
            .map(|g| Mutation::Delete { global_id: g })
            .collect();
        let report = MutationRequest::new(&mut index)
            .mutations(deletes)
            .compact_threshold(0.25)
            .run();
        assert!(
            !report.compactions.is_empty(),
            "40% deletion must push some partition over a 25% threshold"
        );
        for ev in &report.compactions {
            assert!(ev.dropped > 0);
            assert!(ev.ndist > 0, "rebuild work is accounted");
        }
        assert!(report.maintenance_ns > 0.0);
        assert!(
            report.max_tombstone_ratio <= 0.25,
            "post-maintenance ratio {} exceeds the threshold",
            report.max_tombstone_ratio
        );
        // survivors still answer exactly; deleted ids never reappear
        for g in [300u32, 420, 599] {
            let hits = engine_knn(&index, data.get(g as usize), 10);
            assert_eq!(hits[0].id, g);
            assert!(hits.iter().all(|n| n.id >= 240));
        }
        let total: usize = index.partitions.iter().map(|p| p.global_ids.len()).sum();
        assert_eq!(
            index.build_stats.partition_sizes.iter().sum::<usize>(),
            total,
            "partition_sizes tracks maintenance"
        );
    }

    #[test]
    fn split_grows_router_and_keeps_engine_search_exact() {
        let (data, mut index) = small_index(1200, 9, 1);
        let report = MutationRequest::new(&mut index).split_above(200).run();
        assert!(!report.splits.is_empty(), "300-row partitions must split");
        assert_eq!(index.n_partitions(), index.router.n_partitions());
        assert!(index.n_partitions() > 4);
        for ev in &report.splits {
            assert!(ev.moved > 0);
            assert!(ev.new_part >= 4, "new ids extend past the core count");
        }
        // conservation: every global id still lives in exactly one partition
        let mut all: Vec<u32> = index
            .partitions
            .iter()
            .flat_map(|p| p.global_ids.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1200).collect::<Vec<u32>>());
        // dispatch across the grown partition set stays exact for
        // in-dataset queries (exercises the id-wrapping dispatcher path)
        for g in (0..1200u32).step_by(97) {
            let hits = engine_knn(&index, data.get(g as usize), 1);
            assert_eq!(hits[0].id, g, "row {g} lost after split");
        }
        // the epoch moved, so serve caches invalidate
        assert_eq!(index.mutation_epoch, 1);
    }

    #[test]
    fn flat_pivot_router_never_splits() {
        let data = synth::sift_like(600, 12, 11);
        let mut index = DistIndex::build_flat_pivot(&data, engine_cfg(11, 1));
        let report = MutationRequest::new(&mut index).split_above(10).run();
        assert!(report.splits.is_empty());
        assert_eq!(index.n_partitions(), 4);
    }

    #[test]
    fn empty_batch_changes_nothing() {
        let (_, mut index) = small_index(600, 12, 1);
        let report = MutationRequest::new(&mut index).run();
        assert!(!report.changed());
        assert_eq!(report.epoch, 0);
        assert!(report.outcomes.is_empty());
        assert!(index.mutation_log.is_empty());
        assert_eq!(report.max_tombstone_ratio, 0.0);
    }

    #[test]
    fn mutation_log_since_filters_by_epoch() {
        let (_, mut index) = small_index(600, 13, 1);
        for victim in [1u32, 2, 3] {
            MutationRequest::new(&mut index)
                .mutation(Mutation::Delete { global_id: victim })
                .run();
        }
        assert_eq!(index.mutation_log.len(), 3);
        assert_eq!(index.mutation_log.since(0).len(), 3);
        assert_eq!(index.mutation_log.since(2).len(), 1);
        assert_eq!(index.mutation_log.since(3).len(), 0);
    }

    #[test]
    fn metrics_record_mutation_series() {
        let (_, mut index) = small_index(600, 14, 1);
        let metrics = Metrics::new();
        let batch = vec![
            Mutation::Upsert {
                global_id: None,
                vector: synth::sift_like(1, 12, 77).get(0).to_vec(),
            },
            Mutation::Delete { global_id: 5 },
            Mutation::Delete { global_id: 6 },
        ];
        MutationRequest::new(&mut index)
            .mutations(batch)
            .metrics(&metrics)
            .run();
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("fastann_mutations_total", &[("kind", "upsert")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("fastann_mutations_total", &[("kind", "delete")]),
            Some(2)
        );
        assert_eq!(snap.counter("fastann_compactions_total", &[]), Some(0));
        assert!(snap.get("fastann_tombstone_ratio", &[]).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::{EngineConfig, SearchOptions};
    use crate::request::SearchRequest;
    use fastann_data::{ground_truth, synth, Distance, Neighbor};
    use fastann_hnsw::HnswConfig;
    use proptest::prelude::*;

    fn engine_cfg(seed: u64, threads: usize) -> EngineConfig {
        EngineConfig::new(4, 2)
            .with_hnsw(HnswConfig::with_m(8).ef_construction(40).seed(seed))
            .with_seed(seed)
            .with_threads(threads)
    }

    fn engine_knn(index: &DistIndex, q: &[f32], k: usize) -> Vec<Neighbor> {
        let mut queries = VectorSet::new(index.dim());
        queries.push(q);
        SearchRequest::new(index, &queries)
            .opts(SearchOptions::new(k))
            .run()
            .results[0]
            .clone()
    }

    /// Overlap between `got` and the true top-`k` id set, as a fraction.
    fn recall_of(got: &[u32], truth: &[u32]) -> f64 {
        let hits = got.iter().filter(|g| truth.contains(g)).count();
        hits as f64 / truth.len() as f64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn interleaved_mutations_are_thread_invariant_and_rebuild_equivalent(
            seed in 0u64..500,
            ops in proptest::collection::vec((0u8..3, 0u32..10_000), 5..30),
        ) {
            let n0 = 400usize;
            let dim = 8usize;
            let data = synth::sift_like(n0, dim, seed);
            let mut idx1 = DistIndex::build(&data, engine_cfg(seed, 1));
            let mut idx4 = DistIndex::build(&data, engine_cfg(seed, 4));
            // gid → vector mirror of what should survive
            let mut alive: Vec<(u32, Vec<f32>)> = (0..n0)
                .map(|i| (i as u32, data.get(i).to_vec()))
                .collect();
            let mut minted = n0 as u32;

            for (kind, val) in &ops {
                match kind {
                    0 => {
                        let v = synth::sift_like(1, dim, seed ^ (*val as u64) << 3)
                            .get(0)
                            .to_vec();
                        let m = Mutation::Upsert { global_id: None, vector: v.clone() };
                        let r1 = MutationRequest::new(&mut idx1).mutation(m.clone()).run();
                        let r4 = MutationRequest::new(&mut idx4).mutation(m).run();
                        prop_assert_eq!(&r1.outcomes, &r4.outcomes);
                        prop_assert_eq!(
                            r1.outcomes[0],
                            MutationOutcome::Inserted {
                                global_id: minted,
                                part: match r1.outcomes[0] {
                                    MutationOutcome::Inserted { part, .. } => part,
                                    _ => u32::MAX,
                                }
                            }
                        );
                        alive.push((minted, v));
                        minted += 1;
                    }
                    1 => {
                        let gid = *val % minted;
                        let m = Mutation::Delete { global_id: gid };
                        let r1 = MutationRequest::new(&mut idx1).mutation(m.clone()).run();
                        let r4 = MutationRequest::new(&mut idx4).mutation(m).run();
                        prop_assert_eq!(&r1.outcomes, &r4.outcomes);
                        let present = alive.iter().any(|(g, _)| *g == gid);
                        prop_assert_eq!(r1.outcomes[0].effective(), present);
                        alive.retain(|(g, _)| *g != gid);
                    }
                    _ => {
                        let q = synth::sift_like(1, dim, seed ^ (*val as u64) << 7)
                            .get(0)
                            .to_vec();
                        let h1 = engine_knn(&idx1, &q, 10);
                        let h4 = engine_knn(&idx4, &q, 10);
                        prop_assert_eq!(&h1, &h4, "query diverged across thread counts");
                        for hit in &h1 {
                            prop_assert!(
                                alive.iter().any(|(g, _)| *g == hit.id),
                                "dead id {} surfaced", hit.id
                            );
                        }
                    }
                }
                prop_assert_eq!(idx1.mutation_epoch, idx4.mutation_epoch);
            }

            // --- equivalence with a from-scratch rebuild of the survivors ---
            let mut surv = VectorSet::new(dim);
            for (_, v) in &alive {
                surv.push(v);
            }
            if surv.len() < 8 {
                return; // below the DistIndex::build floor
            }
            let fresh = DistIndex::build(&surv, engine_cfg(seed, 1));
            let queries = synth::queries_near(&surv, 15, 0.05, seed ^ 0x77);
            let (mut rec_mut, mut rec_fresh) = (0.0, 0.0);
            for qi in 0..queries.len() {
                let q = queries.get(qi);
                let truth: Vec<u32> = ground_truth::brute_force_one(&surv, q, 10, Distance::L2)
                    .iter()
                    .map(|n| n.id)
                    .collect();
                let got_mut: Vec<u32> = engine_knn(&idx1, q, 10)
                    .iter()
                    .filter_map(|n| alive.iter().position(|(g, _)| *g == n.id))
                    .map(|p| p as u32)
                    .collect();
                let got_fresh: Vec<u32> =
                    engine_knn(&fresh, q, 10).iter().map(|n| n.id).collect();
                rec_mut += recall_of(&got_mut, &truth);
                rec_fresh += recall_of(&got_fresh, &truth);
            }
            rec_mut /= queries.len() as f64;
            rec_fresh /= queries.len() as f64;
            prop_assert!(
                (rec_mut - rec_fresh).abs() <= 0.02 || rec_mut >= rec_fresh,
                "mutated recall {rec_mut:.3} not within 0.02 of rebuild {rec_fresh:.3}"
            );
        }
    }
}
