//! Workspace source lint on the token-stream analysis engine.
//!
//! Twelve rules, run over a lexed token stream ([`crate::lexer`]) with
//! shared per-file structure ([`crate::engine`]) — strings, char
//! literals, raw strings, nested block comments and `#[cfg(test)]`
//! scopes are handled by construction, which closes the textual pass's
//! blind spots (needles inside literals/comments, multi-line
//! signatures). The legacy implementation survives as
//! [`crate::textual`] so the parity regression can prove the port.
//!
//! | rule              | meaning                                                        |
//! |-------------------|----------------------------------------------------------------|
//! | `no-unwrap`       | no bare `unwrap` in non-test library code (`expect` is fine)   |
//! | `no-panic`        | no panicking macro in non-test library code (simulator exempt) |
//! | `wildcard-recv`   | no wildcard-source / untagged receive outside the simulator    |
//! | `tag-registry`    | every `TAG_*` constant and every sent tag is registered        |
//! | `missing-doc`     | every `pub` item of the registered crates has a doc comment    |
//! | `no-thread-spawn` | no direct thread spawning outside the simulator — go through the rayon pool |
//! | `search-batch-variant` | no new `pub fn search_batch*` entry points — one `SearchRequest` builder; only `#[deprecated]` shims may keep the old names |
//! | `quantized-traversal` | HNSW traversal code goes through `QueryDist` dispatch — no direct exact-distance kernels in `crates/hnsw/src` outside the re-rank stage |
//! | `det-map-iter`    | no order-exposing `HashMap`/`HashSet` traversal in contract crates without a `det:sort`/`det:fold` annotation |
//! | `det-wall-clock`  | no `Instant::now`/`SystemTime::now` outside `crates/bench` — reported time is virtual |
//! | `det-thread-id`   | no `thread::current()`/`available_parallelism` in contract crates — thread identity must not feed reported values |
//! | `det-float-accum` | no accumulation inside `par_iter`-family statements — use the chunked map/collect + sequential fold idiom |
//!
//! Test modules (`#[cfg(test)] mod …`), `tests/` and `benches/`
//! directories, and `vendor/` stand-ins are out of scope. Justified
//! violations are suppressed by `crates/check/allowlist.txt`, one
//! `path[:line] rule reason…` triple per line — `path:line` pins the
//! entry to a single line (required practice for the determinism
//! family). An entry that suppresses nothing is *stale* and fails the
//! lint, so the allowlist can only shrink as code is fixed.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::FileCtx;
use crate::lexer;
use crate::rules;

/// Rule identifier: bare `unwrap` in non-test library code.
pub const RULE_UNWRAP: &str = "no-unwrap";
/// Rule identifier: panicking macro in non-test library code.
pub const RULE_PANIC: &str = "no-panic";
/// Rule identifier: wildcard/untagged receive outside the simulator.
pub const RULE_RECV: &str = "wildcard-recv";
/// Rule identifier: unregistered wire tag or non-symbolic send tag.
pub const RULE_TAG: &str = "tag-registry";
/// Rule identifier: undocumented public item.
pub const RULE_DOC: &str = "missing-doc";
/// Rule identifier: direct thread spawning outside the simulator.
pub const RULE_SPAWN: &str = "no-thread-spawn";
/// Rule identifier: a new `search_batch*` public entry point outside the
/// deprecated-shim family.
pub const RULE_SEARCH_BATCH: &str = "search-batch-variant";
/// Rule identifier: direct exact-distance evaluation in HNSW traversal
/// code. Traversal must dispatch through `QueryDist` so the quantized
/// and exact domains stay confined to `Hnsw::d` and the search entry
/// points; the only sanctioned search-time exact-distance consumer is
/// the re-rank stage (allowlisted).
pub const RULE_QUANT: &str = "quantized-traversal";
/// Rule identifier: order-exposing hash-collection traversal in a
/// contract crate without a sort-or-fold annotation.
pub const RULE_DET_MAP_ITER: &str = "det-map-iter";
/// Rule identifier: wall-clock source in a contract crate.
pub const RULE_DET_WALL_CLOCK: &str = "det-wall-clock";
/// Rule identifier: thread-identity leak in a contract crate.
pub const RULE_DET_THREAD_ID: &str = "det-thread-id";
/// Rule identifier: accumulation inside a `par_iter`-family statement,
/// bypassing the chunked order-preserving reduction idiom.
pub const RULE_DET_FLOAT_ACCUM: &str = "det-float-accum";

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// One of the `RULE_*` identifiers.
    pub rule: &'static str,
    /// The offending source line (trimmed) or a description.
    pub text: String,
}

/// One `path[:line] rule reason…` allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// File the entry applies to, relative to the workspace root.
    pub path: String,
    /// Line the entry is pinned to; `None` covers the whole file.
    pub line: Option<usize>,
    /// Rule identifier it suppresses.
    pub rule: String,
    /// Human justification (free text).
    pub reason: String,
}

impl AllowEntry {
    /// `true` when this entry covers the violation.
    fn covers(&self, v: &Violation) -> bool {
        self.path == v.file && self.rule == v.rule && self.line.is_none_or(|l| l == v.line)
    }

    /// Rendering used in reports: `path[:line] rule`.
    fn label(&self) -> String {
        match self.line {
            Some(l) => format!("{}:{} {}", self.path, l, self.rule),
            None => format!("{} {}", self.path, self.rule),
        }
    }
}

/// A finding suppressed by an allowlist entry (kept for the JSON
/// archive, so post-mortems can see what the allowlist is carrying).
#[derive(Clone, Debug)]
pub struct Suppressed {
    /// The suppressed finding.
    pub violation: Violation,
    /// The allowlist entry's justification.
    pub reason: String,
}

/// Outcome of a lint pass over the workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings not covered by the allowlist. Non-empty fails CI.
    pub violations: Vec<Violation>,
    /// Findings suppressed by an allowlist entry.
    pub suppressed: usize,
    /// Suppressed findings with their justifications.
    pub suppressed_details: Vec<Suppressed>,
    /// Allowlist entries that suppressed nothing. Stale entries fail
    /// the lint: the allowlist can only shrink as code is fixed.
    pub unused_allowlist: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// `true` when no violation survived the allowlist and no allowlist
    /// entry is stale.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused_allowlist.is_empty()
    }

    /// Multi-line human rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!("{}:{}: [{}] {}\n", v.file, v.line, v.rule, v.text));
        }
        for e in &self.unused_allowlist {
            out.push_str(&format!(
                "stale allowlist entry (suppresses nothing — delete it): {e}\n"
            ));
        }
        out.push_str(&format!(
            "lint: {} files scanned, {} violations, {} suppressed by allowlist, {} stale allowlist entries\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressed,
            self.unused_allowlist.len()
        ));
        out
    }

    /// Machine-readable rendering: one JSON object with every finding
    /// (surviving and suppressed), for `target/` archiving and
    /// post-mortem diffing.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"violations\": [\n");
        let vs: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}}}",
                    json_str(v.rule),
                    json_str(&v.file),
                    v.line,
                    json_str(&v.text)
                )
            })
            .collect();
        out.push_str(&vs.join(",\n"));
        if !vs.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n  \"suppressed\": [\n");
        let ss: Vec<String> = self
            .suppressed_details
            .iter()
            .map(|s| {
                format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}, \"reason\": {}}}",
                    json_str(s.violation.rule),
                    json_str(&s.violation.file),
                    s.violation.line,
                    json_str(&s.violation.text),
                    json_str(&s.reason)
                )
            })
            .collect();
        out.push_str(&ss.join(",\n"));
        if !ss.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n  \"stale_allowlist\": [");
        let st: Vec<String> = self.unused_allowlist.iter().map(|e| json_str(e)).collect();
        out.push_str(&st.join(", "));
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the required escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Scans `crates/*/src/**/*.rs` and `src/**/*.rs`, skipping `tests/`,
/// `benches/`, `vendor/` and `target/`. The tag registry is parsed
/// textually from `crates/core/src/tags.rs`; the allowlist from
/// `crates/check/allowlist.txt` (both optional — missing files simply
/// disable the corresponding mechanism).
pub fn run(root: &Path) -> io::Result<LintReport> {
    let files = workspace_files(root)?;
    let tag_table = parse_tag_table(&root.join("crates/core/src/tags.rs"))?;
    let allowlist = parse_allowlist(&root.join("crates/check/allowlist.txt"))?;

    let mut all = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let content = fs::read_to_string(path)?;
        all.extend(lint_source(&rel, &content, &tag_table));
    }

    let mut used = vec![false; allowlist.len()];
    let mut report = LintReport {
        files_scanned: files.len(),
        ..LintReport::default()
    };
    for v in all {
        match allowlist.iter().position(|e| e.covers(&v)) {
            Some(i) => {
                used[i] = true;
                report.suppressed += 1;
                report.suppressed_details.push(Suppressed {
                    violation: v,
                    reason: allowlist[i].reason.clone(),
                });
            }
            None => report.violations.push(v),
        }
    }
    for (e, used) in allowlist.iter().zip(used) {
        if !used {
            report.unused_allowlist.push(e.label());
        }
    }
    Ok(report)
}

/// Lints one file's source with the token engine; returns raw findings
/// (no allowlist applied). This is the entry point the fixture corpus
/// tests drive directly.
pub fn lint_source(rel: &str, content: &str, tag_table: &[(String, u64)]) -> Vec<Violation> {
    let toks = lexer::lex(content);
    let ctx = FileCtx::new(rel, content, &toks, tag_table);
    let mut out = Vec::new();
    rules::run_all(&ctx, &mut out);
    out
}

/// Raw engine findings over the whole workspace, no allowlist applied.
/// Used by the parity regression against the textual reference pass.
pub fn raw_findings(root: &Path) -> io::Result<Vec<Violation>> {
    let files = workspace_files(root)?;
    let tag_table = parse_tag_table(&root.join("crates/core/src/tags.rs"))?;
    let mut all = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let content = fs::read_to_string(path)?;
        all.extend(lint_source(&rel, &content, &tag_table));
    }
    Ok(all)
}

/// The `.rs` files the lint scans, sorted: `crates/*/src/**` and
/// `src/**`, skipping `tests/`, `benches/`, `vendor/`, `target/`.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "vendor" | "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative rendering of `path`, forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses `(name, value)` pairs out of the tag-table source. Relies on
/// the "one field per line" convention documented on `TAG_TABLE`.
pub fn parse_tag_table(path: &Path) -> io::Result<Vec<(String, u64)>> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let content = fs::read_to_string(path)?;
    let mut pairs = Vec::new();
    let mut cur_name: Option<String> = None;
    for line in content.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("name: \"") {
            if let Some(end) = rest.find('"') {
                cur_name = Some(rest[..end].to_string());
            }
        } else if let Some(rest) = t.strip_prefix("value: ") {
            let num = rest.trim_end_matches(',').trim();
            if let (Some(name), Ok(value)) = (cur_name.take(), num.parse::<u64>()) {
                pairs.push((name, value));
            }
        }
    }
    Ok(pairs)
}

/// Parses the allowlist: one `path[:line] rule reason…` entry per line;
/// `#` comments and blank lines are skipped.
pub fn parse_allowlist(path: &Path) -> io::Result<Vec<AllowEntry>> {
    if !path.is_file() {
        return Ok(Vec::new());
    }
    let content = fs::read_to_string(path)?;
    let mut entries = Vec::new();
    for line in content.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut parts = t.splitn(3, char::is_whitespace);
        if let (Some(path_spec), Some(rule)) = (parts.next(), parts.next()) {
            // `path:line` pins the entry to one line; `.rs` paths always
            // end with a suffix, so a trailing `:<digits>` is unambiguous
            let (path, line) = match path_spec.rsplit_once(':') {
                Some((p, l)) if l.chars().all(|c| c.is_ascii_digit()) && !l.is_empty() => {
                    (p, l.parse::<usize>().ok())
                }
                _ => (path_spec, None),
            };
            entries.push(AllowEntry {
                path: path.to_string(),
                line,
                rule: rule.to_string(),
                reason: parts.next().unwrap_or("").trim().to_string(),
            });
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, src: &str) -> Vec<Violation> {
        let table = vec![("TAG_GOOD".to_string(), 7u64)];
        lint_source(rel, src, &table)
    }

    #[test]
    fn flags_unwrap_outside_tests() {
        let src = "fn f() {\n    let x = g().unwrap();\n}\n";
        let v = lint_str("crates/data/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_UNWRAP);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn ignores_test_modules_comments_and_strings() {
        let src = "\
// a comment mentioning x.unwrap() and rank.recv(None, None)
fn g() -> String {
    let s = \"docs may say panic!(never) or a.unwrap() safely\";
    s.to_string()
}
#[cfg(test)]
mod tests {
    fn f() {
        let x = g().unwrap();
        panic!(\"in tests this is fine\");
    }
}
";
        assert!(lint_str("crates/data/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_panics_except_in_mpisim() {
        let src = "fn f() {\n    panic!(\"boom\");\n    unreachable!();\n}\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == RULE_PANIC));
        assert!(lint_str("crates/mpisim/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_wildcard_and_untagged_receives() {
        let src = "fn f(rank: &mut Rank) {\n    let a = rank.recv(None, Some(3));\n    let b = rank.recv(Some(1), None);\n    let c = rank.recv(Some(1), Some(3));\n    let d = rank.try_recv(None, None);\n}\n";
        let v = lint_str("crates/kdtree/src/x.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == RULE_RECV));
    }

    #[test]
    fn recv_rule_sees_across_wrapped_lines() {
        // the textual pass only looked at one line; the engine matches
        // the whole argument span
        let src = "fn f(rank: &mut Rank) {\n    let a = rank.recv(\n        None,\n        Some(3),\n    );\n}\n";
        let v = lint_str("crates/kdtree/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_RECV);
    }

    #[test]
    fn flags_direct_thread_spawns_except_in_mpisim() {
        let src = "fn f() {\n    let h = std::thread::spawn(|| {});\n    let b = std::thread::Builder::new();\n    scope.spawn_scoped(s, || {});\n}\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == RULE_SPAWN));
        // the simulator's rank scheduler is the legitimate spawner
        assert!(lint_str("crates/mpisim/src/x.rs", src).is_empty());
        // pool-mediated parallelism does not trip the rule
        let good = "fn f() {\n    rayon::with_num_threads(4, || xs.par_iter().for_each(g));\n}\n";
        assert!(lint_str("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn flags_unregistered_tag_constants() {
        let good = "const TAG_GOOD: u64 = 7;\n";
        assert!(lint_str("crates/kdtree/src/x.rs", good).is_empty());
        let wrong_value = "const TAG_GOOD: u64 = 8;\n";
        assert_eq!(
            lint_str("crates/kdtree/src/x.rs", wrong_value)[0].rule,
            RULE_TAG
        );
        let unknown = "pub const TAG_ROGUE: u64 = 9;\n";
        assert_eq!(
            lint_str("crates/kdtree/src/x.rs", unknown)[0].rule,
            RULE_TAG
        );
    }

    #[test]
    fn flags_non_symbolic_send_tags() {
        let bad = "fn f(r: &mut Rank) {\n    r.send_bytes(0, 42, payload);\n}\n";
        let v = lint_str("crates/core/src/x.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_TAG);
        let good = "fn f(r: &mut Rank) {\n    r.send_bytes(0, TAG_GOOD, payload);\n    r.send_bytes(0, rtag, payload);\n}\n";
        assert!(lint_str("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn flags_undocumented_pub_items_in_registered_crates_only() {
        let src = "pub fn naked() {}\n\n/// Documented.\npub fn clothed() {}\n\npub use other::thing;\npub(crate) fn internal() {}\n";
        // vptree and kdtree joined the registry with the token engine
        for dir in [
            "crates/core/src",
            "crates/mpisim/src",
            "crates/serve/src",
            "crates/obs/src",
            "crates/data/src",
            "crates/hnsw/src",
            "crates/vptree/src",
            "crates/kdtree/src",
        ] {
            let v = lint_str(&format!("{dir}/x.rs"), src);
            assert_eq!(v.len(), 1, "{dir}: {v:?}");
            assert_eq!(v[0].rule, RULE_DOC);
            assert_eq!(v[0].line, 1);
        }
        // other crates are not under the doc rule
        assert!(lint_str("crates/check/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_rule_handles_multiline_attributes() {
        // wrapped attribute between the doc and the item — the textual
        // pass's line heuristic could not see past this
        let src = "/// Documented.\n#[deprecated(\n    note = \"old\",\n)]\npub fn old_one() {}\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_new_search_batch_variants_but_not_deprecated_shims() {
        let fresh =
            "/// Documented, but still a new variant.\npub fn search_batch_faster(q: &Q) -> R {}\n";
        let v = lint_str("crates/core/src/x.rs", fresh);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_SEARCH_BATCH);
        // the deprecation attribute marks a shim
        let shim = "/// Old entry point.\n#[deprecated(note = \"use the builder\")]\npub fn search_batch(q: &Q) -> R {}\n";
        assert!(lint_str("crates/core/src/x.rs", shim).is_empty());
        // mentions in comments are fine
        let bench = "// docs may mention pub fn search_batch\n";
        assert!(lint_str("crates/bench/src/x.rs", bench).is_empty());
    }

    #[test]
    fn flags_exact_kernels_in_hnsw_but_not_elsewhere() {
        let src = "fn f(a: &[f32], b: &[f32]) -> f32 {\n    kernels::squared_l2(a, b)\n}\n";
        let v = lint_str("crates/hnsw/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_QUANT);
        assert_eq!(v[0].line, 2);
        // the same call is fine outside the HNSW crate and in comments
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
        let doc = "// re-ranking uses squared_l2(..)\n";
        assert!(lint_str("crates/hnsw/src/x.rs", doc).is_empty());
    }

    #[test]
    fn flags_metric_eval_inside_traversal_spans_only() {
        let src = "impl Hnsw {\n    fn search_layer(\n        &self,\n        q: &QueryDist<'_>,\n    ) -> Vec<Neighbor> {\n        let d = self.dist.eval(q, v);\n        d\n    }\n\n    fn link_back(&self) {\n        let d = self.dist.eval(a, b);\n    }\n}\n";
        let v = lint_str("crates/hnsw/src/x.rs", src);
        assert_eq!(v.len(), 1, "construction-time evals stay legal: {v:?}");
        assert_eq!(v[0].rule, RULE_QUANT);
        assert_eq!(v[0].line, 6);
        // traversal fns that stick to QueryDist dispatch are clean
        let good = "impl Hnsw {\n    fn search_layer(&self, q: &QueryDist<'_>) -> Vec<Neighbor> {\n        let d = self.d(q, id, scratch);\n        d\n    }\n}\n";
        assert!(lint_str("crates/hnsw/src/x.rs", good).is_empty());
    }

    #[test]
    fn doc_rule_sees_through_attributes() {
        let src = "/// Documented.\n#[derive(Clone)]\n#[repr(C)]\npub struct S;\n";
        assert!(lint_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn det_map_iter_flags_unannotated_hash_traversal() {
        let src = "\
fn f() {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1);
    for s in seen {
        use_it(s);
    }
}
";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DET_MAP_ITER);
        assert_eq!(v[0].line, 4);
        // the same traversal with a det:fold annotation is sanctioned
        let annotated = src.replace(
            "for s in seen {",
            "// det:fold — commutative: each element lands in its own slot\n    for s in seen {",
        );
        assert!(lint_str("crates/core/src/x.rs", &annotated).is_empty());
        // contract scope: the check crate itself is exempt
        assert!(lint_str("crates/check/src/x.rs", src).is_empty());
    }

    #[test]
    fn det_map_iter_flags_methods_and_fields() {
        let src = "\
struct S {
    map: HashMap<u64, usize>,
}
impl S {
    fn g(&self) -> Vec<u64> {
        self.map.keys().copied().collect()
    }
}
";
        let v = lint_str("crates/serve/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DET_MAP_ITER);
        // lookups and size probes stay clean
        let good = "\
struct S {
    map: HashMap<u64, usize>,
}
impl S {
    fn g(&self) -> usize {
        self.map.get(&1).copied().unwrap_or(0) + self.map.len()
    }
}
";
        assert!(lint_str("crates/serve/src/x.rs", good).is_empty());
    }

    #[test]
    fn det_wall_clock_flags_contract_crates_only() {
        let src = "fn f() -> u128 {\n    let t0 = std::time::Instant::now();\n    t0.elapsed().as_nanos()\n}\n";
        let v = lint_str("crates/obs/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DET_WALL_CLOCK);
        assert_eq!(v[0].line, 2);
        // the bench crate measures the real host by design
        assert!(lint_str("crates/bench/src/bin/perf.rs", src).is_empty());
    }

    #[test]
    fn det_thread_id_flags_identity_leaks() {
        let src = "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, usize::from)\n}\n";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DET_THREAD_ID);
        let src2 = "fn g() {\n    let id = std::thread::current().id();\n}\n";
        let v2 = lint_str("crates/core/src/x.rs", src2);
        assert_eq!(v2.len(), 1, "{v2:?}");
        assert_eq!(v2[0].rule, RULE_DET_THREAD_ID);
    }

    #[test]
    fn det_float_accum_flags_par_side_reduction() {
        let src = "\
fn f(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    xs.par_iter().for_each(|x| {
        acc += x;
    });
    acc
}
";
        let v = lint_str("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DET_FLOAT_ACCUM);
        // the chunked idiom — par map/collect, sequential fold — is clean
        let good = "\
fn f(xs: &[f32]) -> f32 {
    let parts: Vec<f32> = xs.par_iter().map(|x| x * 2.0).collect();
    let mut acc = 0.0f32;
    for p in parts {
        acc += p;
    }
    acc
}
";
        assert!(lint_str("crates/core/src/x.rs", good).is_empty());
        // par-side sum() bypasses the idiom even without a captured var
        let sum = "fn f(xs: &[f32]) -> f32 {\n    xs.par_iter().sum::<f32>()\n}\n";
        let v = lint_str("crates/core/src/x.rs", sum);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RULE_DET_FLOAT_ACCUM);
    }

    #[test]
    fn allowlist_supports_file_and_line_granularity() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join(format!("fastann-check-lint-{}", std::process::id()));
        let src_dir = dir.join("crates/x/src");
        fs::create_dir_all(&src_dir).expect("temp tree is creatable");
        fs::create_dir_all(dir.join("crates/check")).expect("temp tree is creatable");
        let mut f = fs::File::create(src_dir.join("lib.rs")).expect("temp file is creatable");
        writeln!(f, "fn f() {{\n    g().unwrap();\n    h().unwrap();\n}}").expect("write succeeds");
        // file-granular entry covers both findings
        fs::write(
            dir.join("crates/check/allowlist.txt"),
            "crates/x/src/lib.rs no-unwrap temp fixture\n",
        )
        .expect("allowlist is writable");
        let report = run(&dir).expect("lint runs");
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.suppressed, 2);
        // line-granular entry covers exactly its line
        fs::write(
            dir.join("crates/check/allowlist.txt"),
            "crates/x/src/lib.rs:2 no-unwrap only the first one\n",
        )
        .expect("allowlist is writable");
        let report = run(&dir).expect("lint runs");
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_allowlist_entries_fail_the_lint() {
        use std::io::Write as _;
        let dir = std::env::temp_dir().join(format!("fastann-check-stale-{}", std::process::id()));
        let src_dir = dir.join("crates/x/src");
        fs::create_dir_all(&src_dir).expect("temp tree is creatable");
        fs::create_dir_all(dir.join("crates/check")).expect("temp tree is creatable");
        let mut f = fs::File::create(src_dir.join("lib.rs")).expect("temp file is creatable");
        writeln!(f, "fn f() {{}}").expect("write succeeds");
        fs::write(
            dir.join("crates/check/allowlist.txt"),
            "crates/x/src/lib.rs no-panic stale entry\n",
        )
        .expect("allowlist is writable");
        let report = run(&dir).expect("lint runs");
        assert!(!report.is_clean(), "a stale entry must fail the lint");
        assert!(report.violations.is_empty());
        assert_eq!(
            report.unused_allowlist,
            vec!["crates/x/src/lib.rs no-panic".to_string()]
        );
        assert!(report.render().contains("stale allowlist entry"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_rendering_escapes_and_lists_findings() {
        let report = LintReport {
            violations: vec![Violation {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: RULE_UNWRAP,
                text: "g(\"quote\\\").unwrap();".to_string(),
            }],
            suppressed: 1,
            suppressed_details: vec![Suppressed {
                violation: Violation {
                    file: "crates/y/src/lib.rs".to_string(),
                    line: 9,
                    rule: RULE_PANIC,
                    text: "panic!(\"boom\")".to_string(),
                },
                reason: "fatal by design".to_string(),
            }],
            unused_allowlist: vec![],
            files_scanned: 2,
        };
        let json = report.render_json();
        assert!(json.contains("\"files_scanned\": 2"), "{json}");
        assert!(json.contains("\\\"quote\\\\\\\""), "{json}");
        assert!(json.contains("\"reason\": \"fatal by design\""), "{json}");
        assert!(json.contains("\"stale_allowlist\": []"), "{json}");
    }
}
