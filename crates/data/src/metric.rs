//! Distance metrics over dense `f32` vectors.
//!
//! The paper operates in general metric spaces (the VP tree is
//! metric-agnostic) and evaluates with the L2 norm. [`Distance`] is a small
//! enum dispatched with `match` — cheap, `Copy`, and trivially sendable
//! across the simulated cluster, unlike a boxed trait object.
//!
//! The inner loops live in [`crate::kernels`] — chunked 8-lane scalar
//! loops that LLVM reliably auto-vectorises in release builds, shared with
//! the SQ8 asymmetric path in [`crate::quant`]; this is the portable
//! equivalent of the SIMD-optimised bucket scans in PANDA. This module
//! re-exports the f32 kernels under their historical names so existing
//! callers keep compiling.

pub use crate::kernels::{chebyshev, dot, l1, squared_l2};

/// A distance (or dissimilarity) function between two equal-length vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Euclidean distance (the paper's evaluation metric).
    L2,
    /// Squared Euclidean distance. Not a metric (triangle inequality fails)
    /// but order-equivalent to [`Distance::L2`]; useful for pure ranking.
    SquaredL2,
    /// Manhattan distance.
    L1,
    /// Chebyshev / L-infinity distance.
    Chebyshev,
    /// Cosine *distance*, `1 - cos(a, b)`. A dissimilarity, not a metric;
    /// accepted by the graph indexes but rejected by the metric trees.
    Cosine,
    /// Negative inner product, `-<a, b>`. Dissimilarity for MIPS workloads.
    NegativeDot,
}

impl Distance {
    /// Evaluates the distance between `a` and `b`.
    ///
    /// # Panics
    /// Panics if the slices have different lengths — in release builds
    /// too. A mismatch is always a caller bug (a query of the wrong
    /// dimensionality), and silently scoring the common prefix returns an
    /// ordering over *different geometry* per metric, which is far harder
    /// to debug than the panic.
    #[inline]
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "distance between different dimensions");
        match self {
            Distance::L2 => squared_l2(a, b).sqrt(),
            Distance::SquaredL2 => squared_l2(a, b),
            Distance::L1 => l1(a, b),
            Distance::Chebyshev => chebyshev(a, b),
            Distance::Cosine => cosine(a, b),
            Distance::NegativeDot => -dot(a, b),
        }
    }

    /// `true` when the function satisfies the metric axioms (identity,
    /// symmetry, triangle inequality) required by VP- and KD-tree pruning.
    pub fn is_metric(self) -> bool {
        matches!(self, Distance::L2 | Distance::L1 | Distance::Chebyshev)
    }

    /// Human-readable name, used in reports and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            Distance::L2 => "L2",
            Distance::SquaredL2 => "squared-L2",
            Distance::L1 => "L1",
            Distance::Chebyshev => "Linf",
            Distance::Cosine => "cosine",
            Distance::NegativeDot => "neg-dot",
        }
    }
}

/// Cosine distance, `1 - a·b / (|a||b|)`.
///
/// A zero vector has no direction, so its angle to anything is undefined;
/// we pin the distance to `1.0` (maximal indifference — the value an
/// orthogonal pair gets) rather than the `0.0` an earlier version
/// returned, which made the zero vector a spurious nearest neighbour of
/// *every* query. Zero-vs-zero is also `1.0` by the same rule.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let ab = dot(a, b);
    let aa = dot(a, a);
    let bb = dot(b, b);
    if aa == 0.0 || bb == 0.0 {
        return 1.0;
    }
    1.0 - ab / (aa.sqrt() * bb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f32; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
    const B: [f32; 5] = [5.0, 4.0, 3.0, 2.0, 1.0];

    #[test]
    fn l2_matches_manual() {
        // diffs: -4,-2,0,2,4 -> squares 16+4+0+4+16 = 40
        assert!((Distance::SquaredL2.eval(&A, &B) - 40.0).abs() < 1e-6);
        assert!((Distance::L2.eval(&A, &B) - 40.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn l1_and_chebyshev() {
        assert!((Distance::L1.eval(&A, &B) - 12.0).abs() < 1e-6);
        assert!((Distance::Chebyshev.eval(&A, &B) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn dot_and_cosine() {
        // a·b = 5+8+9+8+5 = 35
        assert!((dot(&A, &B) - 35.0).abs() < 1e-6);
        assert!((Distance::NegativeDot.eval(&A, &B) + 35.0).abs() < 1e-6);
        // cosine of identical vectors is 0 distance
        assert!(Distance::Cosine.eval(&A, &A).abs() < 1e-6);
        // orthogonal vectors -> distance 1
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        assert!((Distance::Cosine.eval(&x, &y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_maximally_distant() {
        // a zero vector has no direction: it must not come out as the
        // nearest neighbour of everything (the 0.0 an earlier version
        // returned); it sits at the orthogonal-pair distance instead
        let z = [0.0, 0.0];
        assert_eq!(Distance::Cosine.eval(&z, &A[..2]), 1.0);
        assert_eq!(Distance::Cosine.eval(&A[..2], &z), 1.0);
        assert_eq!(Distance::Cosine.eval(&z, &z), 1.0);
        // and a parallel non-zero pair is still strictly closer
        let w = [2.0, 4.0];
        assert!(Distance::Cosine.eval(&A[..2], &w) < Distance::Cosine.eval(&A[..2], &z));
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn squared_l2_rejects_dimension_mismatch() {
        // regression: this used to silently score the 2-long prefix in
        // release builds; the assert must fire in *every* profile
        let _ = squared_l2(&A[..2], &A);
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn dot_rejects_dimension_mismatch() {
        let _ = dot(&A, &A[..3]);
    }

    #[test]
    #[should_panic(expected = "different dimensions")]
    fn eval_rejects_dimension_mismatch_in_release() {
        // Distance::eval promotes the old debug_assert to a real assert
        let _ = Distance::L2.eval(&A[..4], &A);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for d in [
            Distance::L2,
            Distance::SquaredL2,
            Distance::L1,
            Distance::Chebyshev,
        ] {
            assert_eq!(d.eval(&A, &A), 0.0, "{}", d.name());
        }
    }

    #[test]
    fn symmetry() {
        for d in [
            Distance::L2,
            Distance::L1,
            Distance::Chebyshev,
            Distance::Cosine,
        ] {
            assert!((d.eval(&A, &B) - d.eval(&B, &A)).abs() < 1e-6);
        }
    }

    #[test]
    fn metric_flags() {
        assert!(Distance::L2.is_metric());
        assert!(Distance::L1.is_metric());
        assert!(Distance::Chebyshev.is_metric());
        assert!(!Distance::SquaredL2.is_metric());
        assert!(!Distance::Cosine.is_metric());
        assert!(!Distance::NegativeDot.is_metric());
    }

    #[test]
    fn chunked_kernels_handle_remainder_lengths() {
        // length 7 exercises the remainder loop
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..7).map(|i| (i * 2) as f32).collect();
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((squared_l2(&a, &b) - expect).abs() < 1e-5);
        let expect_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expect_dot).abs() < 1e-4);
    }

    #[test]
    fn names_are_distinct() {
        let all = [
            Distance::L2,
            Distance::SquaredL2,
            Distance::L1,
            Distance::Chebyshev,
            Distance::Cosine,
            Distance::NegativeDot,
        ];
        let mut names: Vec<_> = all.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
