//! fastann-serve — the online serving runtime.
//!
//! The other crates answer "how fast can one batch of queries run?";
//! this crate answers "what happens when queries arrive one at a time,
//! from many tenants, with deadlines, against a system that is sometimes
//! busy?". It layers three serving mechanisms over the distributed
//! engine ([`fastann_core::SearchRequest`]) without touching the engine's
//! wire protocol:
//!
//! * **Micro-batching** ([`BatchPolicy`]) — arrivals coalesce into one
//!   engine batch until a size or wait bound trips, trading a bounded
//!   per-request wait for batch throughput.
//! * **Admission control** ([`AdmissionPolicy`]) — per-tenant token
//!   buckets ([`TokenBucket`]), a global queue-depth bound, and a
//!   per-partition queue-depth bound (overload on one hot partition
//!   sheds on that partition's queue) refuse load with typed
//!   [`Rejection`]s, and a deadline-feasibility check refuses requests
//!   that could not be answered in time anyway. Deadlines of admitted
//!   requests propagate into the engine's per-probe timeout.
//! * **Adaptive replication** ([`ReplicaController`]) — under an
//!   adaptive [`fastann_core::RoutingPolicy`], a controller watches the
//!   engine's per-partition service-time metrics over a sliding
//!   virtual-time window and raises or decays partition replica counts
//!   ([`fastann_core::ReplicaMap`]) between batches, bounded by the
//!   policy maximum and per-node memory accounting.
//! * **Result caching** ([`ResultCache`]) — an LRU keyed by quantized
//!   query bytes serves exact repeats without the engine, with epoch
//!   invalidation so an index rebuild never leaks stale answers.
//!
//! Everything runs in the simulator's virtual time
//! ([`fastann_mpisim::VClock`] / [`fastann_mpisim::EventQueue`]): a run
//! is a discrete-event simulation whose [`ServeReport`] is bit-identical
//! for the same seed and configuration at any
//! [`fastann_core::EngineConfig::threads`] setting.

#![forbid(unsafe_code)]

mod admission;
mod cache;
mod config;
mod controller;
mod report;
mod request;
mod runtime;

pub use admission::TokenBucket;
pub use cache::{CacheStats, ResultCache};
pub use config::{AdmissionPolicy, BatchPolicy, ServeConfig};
pub use controller::{ControllerAction, ControllerPolicy, ReplicaController};
pub use report::ServeReport;
pub use request::{Completion, Outcome, Rejection, Request};
pub use runtime::{ClosedLoopSpec, ClosedRequest, ServeRun, ServeRuntime};
