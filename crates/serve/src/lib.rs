//! fastann-serve — the online serving runtime.
//!
//! The other crates answer "how fast can one batch of queries run?";
//! this crate answers "what happens when queries arrive one at a time,
//! from many tenants, with deadlines, against a system that is sometimes
//! busy?". It layers three serving mechanisms over the distributed
//! engine ([`fastann_core::search_batch`]) without touching the engine's
//! wire protocol:
//!
//! * **Micro-batching** ([`BatchPolicy`]) — arrivals coalesce into one
//!   engine batch until a size or wait bound trips, trading a bounded
//!   per-request wait for batch throughput.
//! * **Admission control** ([`AdmissionPolicy`]) — per-tenant token
//!   buckets ([`TokenBucket`]) and a global queue-depth bound shed load
//!   with typed [`Rejection`]s, and a deadline-feasibility check refuses
//!   requests that could not be answered in time anyway. Deadlines of
//!   admitted requests propagate into the engine's per-probe timeout.
//! * **Result caching** ([`ResultCache`]) — an LRU keyed by quantized
//!   query bytes serves exact repeats without the engine, with epoch
//!   invalidation so an index rebuild never leaks stale answers.
//!
//! Everything runs in the simulator's virtual time
//! ([`fastann_mpisim::VClock`] / [`fastann_mpisim::EventQueue`]): a run
//! is a discrete-event simulation whose [`ServeReport`] is bit-identical
//! for the same seed and configuration at any
//! [`fastann_core::EngineConfig::threads`] setting.

#![forbid(unsafe_code)]

mod admission;
mod cache;
mod config;
mod report;
mod request;
mod runtime;

pub use admission::TokenBucket;
pub use cache::{CacheStats, ResultCache};
pub use config::{AdmissionPolicy, BatchPolicy, ServeConfig};
pub use report::ServeReport;
pub use request::{Completion, Outcome, Rejection, Request};
pub use runtime::{ClosedLoopSpec, ClosedRequest, ServeRun, ServeRuntime};
