/root/repo/target/debug/deps/fastann_bench-e60bd3e1191fc803.d: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

/root/repo/target/debug/deps/fastann_bench-e60bd3e1191fc803: crates/bench/src/lib.rs crates/bench/src/datasets.rs crates/bench/src/experiments.rs crates/bench/src/fmt.rs

crates/bench/src/lib.rs:
crates/bench/src/datasets.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fmt.rs:
