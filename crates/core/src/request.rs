//! The unified batch-query entry point.
//!
//! [`SearchRequest`] replaced the historical `search_batch*` free
//! functions (now removed) with one builder, so every combination of
//! fault plan, execution trace, metrics registry and replica snapshot
//! runs through a single instrumented dispatch path:
//!
//! ```
//! use fastann_core::{DistIndex, EngineConfig, SearchRequest, SearchOptions};
//! use fastann_data::synth;
//! use fastann_obs::Metrics;
//!
//! let data = synth::sift_like(600, 8, 1);
//! let index = DistIndex::build(&data, EngineConfig::new(4, 2));
//! let queries = synth::queries_near(&data, 4, 0.02, 2);
//! let metrics = Metrics::new();
//! let report = SearchRequest::new(&index, &queries)
//!     .opts(SearchOptions::new(5))
//!     .metrics(&metrics)
//!     .run();
//! assert_eq!(report.results.len(), 4);
//! assert!(metrics.snapshot().counter("fastann_engine_queries_total", &[]) == Some(4));
//! ```

use fastann_data::VectorSet;
use fastann_mpisim::{FaultPlan, Trace};
use fastann_obs::Metrics;

use crate::build::DistIndex;
use crate::config::SearchOptions;
use crate::engine;
use crate::routing::ReplicaMap;
use crate::stats::QueryReport;

/// A batch search being assembled: index and queries are mandatory,
/// everything else is optional and defaults off. [`SearchRequest::run`]
/// executes on the simulated cluster and returns the merged
/// [`QueryReport`].
///
/// With no fault plan (or a vacuous one) the batch takes the fault-free
/// path; a non-vacuous plan takes the fault-tolerant chaos path with
/// timeouts, retries and replica failover. Attaching a [`Trace`] records
/// Gantt spans; attaching a [`Metrics`] registry records the full
/// instrumented query path (router fan-out, per-stage spans, local-search
/// work, worker service times, merge ops, chaos recovery counters) —
/// snapshots are bit-identical across thread counts and schedules.
#[derive(Clone, Copy)]
pub struct SearchRequest<'a> {
    index: &'a DistIndex,
    queries: &'a VectorSet,
    opts: SearchOptions,
    replicas: Option<&'a ReplicaMap>,
    plan: Option<&'a FaultPlan>,
    trace: Option<&'a Trace>,
    metrics: Option<&'a Metrics>,
}

impl<'a> SearchRequest<'a> {
    /// A request for `queries` against `index` with default
    /// [`SearchOptions`] and nothing attached.
    pub fn new(index: &'a DistIndex, queries: &'a VectorSet) -> Self {
        Self {
            index,
            queries,
            opts: SearchOptions::default(),
            replicas: None,
            plan: None,
            trace: None,
            metrics: None,
        }
    }

    /// Sets the search options (k, ef, transport, routing policy, fault
    /// knobs).
    pub fn opts(mut self, opts: SearchOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Dispatches this batch with an explicit per-partition replica
    /// snapshot — the adaptive controller's [`ReplicaMap`] view. The map
    /// must cover every partition, and every count must fit within the
    /// routing policy's `max`. Absent, every partition holds the policy's
    /// base replica count.
    pub fn replicas(mut self, map: &'a ReplicaMap) -> Self {
        self.replicas = Some(map);
        self
    }

    /// Runs under the given seeded fault plan (the fault-tolerant path,
    /// unless the plan is vacuous — [`FaultPlan::is_vacuous`] — which
    /// provably takes the fault-free path, costs included).
    pub fn chaos(mut self, plan: &'a FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Like [`SearchRequest::chaos`] but optional at the call site —
    /// `None` means fault-free. Layered runtimes (the `fastann-serve`
    /// micro-batcher) thread their configured `Option<&FaultPlan>`
    /// straight through.
    pub fn plan(mut self, plan: Option<&'a FaultPlan>) -> Self {
        self.plan = plan;
        self
    }

    /// Records a virtual-time execution trace: per-query compute spans on
    /// the worker rows, dispatch/collect/recovery phases on the master
    /// row. Render with [`Trace::render`].
    pub fn trace(mut self, trace: &'a Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Records metrics into `metrics` (counters, gauges, histograms —
    /// see the `fastann-obs` crate). The registry is shared by the
    /// simulated ranks' real threads; its snapshot is bit-identical
    /// across `FASTANN_THREADS` / [`crate::EngineConfig::threads`]
    /// settings for the same seeded run.
    pub fn metrics(mut self, metrics: &'a Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Executes the batch on the simulated cluster.
    ///
    /// # Panics
    /// Panics on dimension mismatch or empty query set.
    pub fn run(self) -> QueryReport {
        engine::dispatch(
            self.index,
            self.queries,
            &self.opts,
            self.replicas.map(|m| m.counts()),
            self.plan,
            self.trace,
            self.metrics,
        )
    }
}
