fn drain(world: &World, src: usize) -> Vec<u8> {
    // the None rides on a later line: a token-stream match the old
    // line lint could not see
    let (_tag, bytes) = world.recv(
        Some(src),
        None,
    );
    bytes
}
