/root/repo/target/debug/deps/fastann_mpisim-b74d6fd7b371134e.d: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libfastann_mpisim-b74d6fd7b371134e.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/cluster.rs crates/mpisim/src/comm.rs crates/mpisim/src/cost.rs crates/mpisim/src/fault.rs crates/mpisim/src/net.rs crates/mpisim/src/rank.rs crates/mpisim/src/rma.rs crates/mpisim/src/trace.rs crates/mpisim/src/vthreads.rs crates/mpisim/src/wire.rs Cargo.toml

crates/mpisim/src/lib.rs:
crates/mpisim/src/cluster.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/cost.rs:
crates/mpisim/src/fault.rs:
crates/mpisim/src/net.rs:
crates/mpisim/src/rank.rs:
crates/mpisim/src/rma.rs:
crates/mpisim/src/trace.rs:
crates/mpisim/src/vthreads.rs:
crates/mpisim/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
