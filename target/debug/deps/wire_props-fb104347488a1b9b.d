/root/repo/target/debug/deps/wire_props-fb104347488a1b9b.d: crates/mpisim/tests/wire_props.rs Cargo.toml

/root/repo/target/debug/deps/libwire_props-fb104347488a1b9b.rmeta: crates/mpisim/tests/wire_props.rs Cargo.toml

crates/mpisim/tests/wire_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
