//! Exact vantage-point tree with bucket leaves.

use fastann_data::{Distance, Neighbor, TopK, VectorSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::vantage::select_vantage;

/// Construction parameters for [`VpTree`].
#[derive(Clone, Copy, Debug)]
pub struct VpTreeConfig {
    /// Maximum points in a leaf bucket.
    pub bucket_size: usize,
    /// Vantage-point candidates sampled per node (the paper samples 100).
    pub candidate_sample: usize,
    /// Data points sampled to score each candidate.
    pub spread_sample: usize,
    /// RNG seed; construction is deterministic given the seed.
    pub seed: u64,
}

impl Default for VpTreeConfig {
    fn default() -> Self {
        Self {
            bucket_size: 32,
            candidate_sample: 16,
            spread_sample: 64,
            seed: 0,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Inner {
        /// Row id (into the original data) of the vantage point.
        vp: u32,
        /// Median distance: the left child holds points within `mu` of `vp`.
        mu: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        /// Range into the permuted `ids` array.
        start: u32,
        end: u32,
    },
}

/// Per-search accounting for the exact VP-tree search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VpSearchStats {
    /// Distance evaluations performed.
    pub ndist: u64,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Leaves scanned.
    pub leaves_visited: u64,
}

/// An exact metric k-NN index: binary tree where each inner node splits
/// space by the median distance to a vantage point.
pub struct VpTree {
    dist: Distance,
    data: VectorSet,
    ids: Vec<u32>,
    nodes: Vec<Node>,
    root: u32,
    config: VpTreeConfig,
    build_ndist: u64,
}

impl VpTree {
    /// Builds a tree over `data` with the given metric.
    ///
    /// # Panics
    /// Panics if `data` is empty or the metric is not a true metric
    /// (pruning relies on the triangle inequality).
    pub fn build(data: VectorSet, dist: Distance, config: VpTreeConfig) -> Self {
        assert!(!data.is_empty(), "cannot build a VP tree over an empty set");
        assert!(
            dist.is_metric(),
            "VP-tree pruning requires a true metric, got {}",
            dist.name()
        );
        assert!(config.bucket_size >= 1, "bucket size must be at least 1");
        let mut ids: Vec<u32> = (0..data.len() as u32).collect();
        let mut nodes = Vec::new();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n = ids.len();
        let mut build_ndist = 0u64;
        let root = build_rec(
            &data,
            dist,
            &config,
            &mut ids,
            0,
            n,
            &mut nodes,
            &mut rng,
            &mut build_ndist,
        );
        Self {
            dist,
            data,
            ids,
            nodes,
            root,
            config,
            build_ndist,
        }
    }

    /// Distance evaluations spent constructing the tree (vantage scoring
    /// plus the per-node distance pass), used for virtual-time charging.
    pub fn build_ndist(&self) -> u64 {
        self.build_ndist
    }

    /// Approximate resident bytes (vectors + nodes + permutation).
    pub fn approx_bytes(&self) -> usize {
        self.data.as_flat().len() * 4 + self.nodes.len() * 24 + self.ids.len() * 4
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// `true` if the tree indexes no points (never true post-build).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The metric the tree was built with.
    pub fn distance(&self) -> Distance {
        self.dist
    }

    /// The construction configuration.
    pub fn config(&self) -> &VpTreeConfig {
        &self.config
    }

    /// Tree depth (longest root-to-leaf path, in edges).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], n: u32) -> usize {
            match &nodes[n as usize] {
                Node::Leaf { .. } => 0,
                Node::Inner { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        rec(&self.nodes, self.root)
    }

    /// Validates the structural invariants of the tree:
    ///
    /// * `ids` is a permutation of `0..n` (every point indexed exactly
    ///   once);
    /// * the node ranges partition `ids` exactly — each position belongs to
    ///   exactly one leaf range or is the vantage-point slot of exactly one
    ///   inner node, and every stored node is part of the tree;
    /// * every leaf holds at most `bucket_size` points (the degenerate
    ///   empty right leaf produced by all-ties splits is allowed);
    /// * both children of an inner node are non-trivial where required:
    ///   the left subtree always holds at least one point;
    /// * metric invariants: every point in the left subtree of an inner
    ///   node is within `mu` of its vantage point, every point in the right
    ///   subtree is at distance `>= mu` (ties may go right because the
    ///   split clamps to keep both sides non-empty).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if self.ids.len() != n {
            return Err(format!("ids length {} != point count {n}", self.ids.len()));
        }
        let mut seen = vec![false; n];
        for &id in &self.ids {
            if (id as usize) >= n {
                return Err(format!("ids holds out-of-range row {id}"));
            }
            if seen[id as usize] {
                return Err(format!("row {id} appears twice in ids"));
            }
            seen[id as usize] = true;
        }
        let mut visited = vec![false; self.nodes.len()];
        self.validate_rec(self.root, 0, n, &mut visited)?;
        if let Some(orphan) = visited.iter().position(|&v| !v) {
            return Err(format!("node {orphan} is not part of the tree"));
        }
        Ok(())
    }

    /// Number of `ids` positions covered by the subtree at `node`
    /// (including inner-node vantage slots).
    fn subtree_span(&self, node: u32) -> usize {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => (*end - *start) as usize,
            Node::Inner { left, right, .. } => {
                1 + self.subtree_span(*left) + self.subtree_span(*right)
            }
        }
    }

    fn validate_rec(
        &self,
        node: u32,
        start: usize,
        end: usize,
        visited: &mut [bool],
    ) -> Result<(), String> {
        if (node as usize) >= self.nodes.len() {
            return Err(format!("node index {node} out of range"));
        }
        if visited[node as usize] {
            return Err(format!("node {node} reached twice (shared or cyclic)"));
        }
        visited[node as usize] = true;
        match &self.nodes[node as usize] {
            Node::Leaf { start: s, end: e } => {
                if (*s as usize, *e as usize) != (start, end) {
                    return Err(format!(
                        "leaf {node} covers [{s}, {e}) but its slot is [{start}, {end})"
                    ));
                }
                if end - start > self.config.bucket_size {
                    return Err(format!(
                        "leaf {node} holds {} points, bucket bound is {}",
                        end - start,
                        self.config.bucket_size
                    ));
                }
                Ok(())
            }
            Node::Inner {
                vp,
                mu,
                left,
                right,
            } => {
                if end <= start {
                    return Err(format!("inner node {node} covers empty range"));
                }
                if self.ids[end - 1] != *vp {
                    return Err(format!(
                        "inner node {node}: vantage point {vp} is not at its slot \
                         (ids[{}] = {})",
                        end - 1,
                        self.ids[end - 1]
                    ));
                }
                let left_len = self.subtree_span(*left);
                if left_len == 0 {
                    return Err(format!("inner node {node} has an empty left subtree"));
                }
                let split = start + left_len;
                if split > end - 1 {
                    return Err(format!(
                        "inner node {node}: children overflow its range \
                         (left spans {left_len} of {})",
                        end - 1 - start
                    ));
                }
                let vpv = self.data.get(*vp as usize);
                for &id in &self.ids[start..split] {
                    let d = self.dist.eval(vpv, self.data.get(id as usize));
                    if d > *mu {
                        return Err(format!(
                            "inner node {node}: left point {id} at distance {d} \
                             outside radius mu = {mu}"
                        ));
                    }
                }
                for &id in &self.ids[split..end - 1] {
                    let d = self.dist.eval(vpv, self.data.get(id as usize));
                    if d < *mu {
                        return Err(format!(
                            "inner node {node}: right point {id} at distance {d} \
                             inside radius mu = {mu}"
                        ));
                    }
                }
                self.validate_rec(*left, start, split, visited)?;
                self.validate_rec(*right, split, end - 1, visited)
            }
        }
    }

    /// Exact k-nearest-neighbour search.
    pub fn knn(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, VpSearchStats) {
        assert!(k > 0, "k must be positive");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        let mut top = TopK::new(k);
        let mut stats = VpSearchStats::default();
        self.search_rec(self.root, q, &mut top, &mut stats);
        (top.into_sorted(), stats)
    }

    /// Exact range search: every indexed point within `radius` of `q`,
    /// sorted by ascending distance. The same µ-boundary pruning as k-NN,
    /// with a fixed ball instead of a shrinking one.
    pub fn range(&self, q: &[f32], radius: f32) -> (Vec<Neighbor>, VpSearchStats) {
        assert!(radius >= 0.0, "radius must be non-negative");
        assert_eq!(q.len(), self.data.dim(), "query dimension mismatch");
        let mut out = Vec::new();
        let mut stats = VpSearchStats::default();
        self.range_rec(self.root, q, radius, &mut out, &mut stats);
        out.sort_unstable();
        (out, stats)
    }

    fn range_rec(
        &self,
        node: u32,
        q: &[f32],
        radius: f32,
        out: &mut Vec<Neighbor>,
        stats: &mut VpSearchStats,
    ) {
        stats.nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                stats.leaves_visited += 1;
                for &id in &self.ids[*start as usize..*end as usize] {
                    stats.ndist += 1;
                    let d = self.dist.eval(q, self.data.get(id as usize));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
            Node::Inner {
                vp,
                mu,
                left,
                right,
            } => {
                stats.ndist += 1;
                let d = self.dist.eval(q, self.data.get(*vp as usize));
                if d <= radius {
                    out.push(Neighbor::new(*vp, d));
                }
                if d - radius <= *mu {
                    self.range_rec(*left, q, radius, out, stats);
                }
                if d + radius > *mu {
                    self.range_rec(*right, q, radius, out, stats);
                }
            }
        }
    }

    fn search_rec(&self, node: u32, q: &[f32], top: &mut TopK, stats: &mut VpSearchStats) {
        stats.nodes_visited += 1;
        match &self.nodes[node as usize] {
            Node::Leaf { start, end } => {
                stats.leaves_visited += 1;
                for &id in &self.ids[*start as usize..*end as usize] {
                    stats.ndist += 1;
                    top.push(Neighbor::new(
                        id,
                        self.dist.eval(q, self.data.get(id as usize)),
                    ));
                }
            }
            Node::Inner {
                vp,
                mu,
                left,
                right,
            } => {
                stats.ndist += 1;
                let d = self.dist.eval(q, self.data.get(*vp as usize));
                top.push(Neighbor::new(*vp, d));
                // Search the containing side first so the prune radius
                // tightens before the far side is considered.
                let (near, far) = if d < *mu {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search_rec(near, q, top, stats);
                // The far subspace can contain a neighbour only if the query
                // ball of radius tau crosses the mu boundary.
                let tau = top.prune_radius();
                if (d - *mu).abs() <= tau {
                    self.search_rec(far, q, top, stats);
                }
            }
        }
    }
}

impl std::fmt::Debug for VpTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VpTree")
            .field("len", &self.len())
            .field("depth", &self.depth())
            .field("bucket_size", &self.config.bucket_size)
            .finish()
    }
}

/// Recursive construction over `ids[start..end]`; returns the node index.
#[allow(clippy::too_many_arguments)]
fn build_rec(
    data: &VectorSet,
    dist: Distance,
    config: &VpTreeConfig,
    ids: &mut [u32],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
    rng: &mut SmallRng,
    build_ndist: &mut u64,
) -> u32 {
    let n = end - start;
    if n <= config.bucket_size {
        nodes.push(Node::Leaf {
            start: start as u32,
            end: end as u32,
        });
        return (nodes.len() - 1) as u32;
    }

    // --- vantage point selection (second-moment heuristic) ---
    let slice = &ids[start..end];
    let n_cand = config.candidate_sample.min(n).max(1);
    let n_sample = config.spread_sample.min(n).max(1);
    let candidates: Vec<u32> = slice.choose_multiple(rng, n_cand).copied().collect();
    let sample: Vec<u32> = slice.choose_multiple(rng, n_sample).copied().collect();
    let (best, sel_ndist) = select_vantage(data, &candidates, data, &sample, dist);
    *build_ndist += sel_ndist;
    let vp = candidates[best];

    // Move vp out of the range (it lives at the inner node).
    let slice = &mut ids[start..end];
    let vp_pos = slice.iter().position(|&x| x == vp).expect("vp is in range");
    slice.swap(vp_pos, n - 1);
    let rest = n - 1;

    // --- median split by distance to vp ---
    let vpv = data.get(vp as usize).to_vec();
    *build_ndist += rest as u64;
    let mut dists: Vec<f32> = slice[..rest]
        .iter()
        .map(|&i| dist.eval(&vpv, data.get(i as usize)))
        .collect();
    let mut order: Vec<usize> = (0..rest).collect();
    order.sort_unstable_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    let permuted: Vec<u32> = order.iter().map(|&o| slice[o]).collect();
    slice[..rest].copy_from_slice(&permuted);
    dists.sort_unstable_by(f32::total_cmp);
    let mid = (rest - 1) / 2;
    let mu = dists[mid];
    // left = indices with d <= mu. Because of ties, find the last position
    // with d <= mu to keep the split deterministic.
    let left_len = dists
        .partition_point(|&d| d <= mu)
        .max(1)
        .min(rest.saturating_sub(1))
        .max(1);

    let node_idx = nodes.len();
    nodes.push(Node::Leaf { start: 0, end: 0 }); // placeholder, patched below

    let left = build_rec(
        data,
        dist,
        config,
        ids,
        start,
        start + left_len,
        nodes,
        rng,
        build_ndist,
    );
    let right = if left_len < rest {
        build_rec(
            data,
            dist,
            config,
            ids,
            start + left_len,
            start + rest,
            nodes,
            rng,
            build_ndist,
        )
    } else {
        // all remaining points tied at mu: degenerate right side is an
        // empty leaf
        nodes.push(Node::Leaf {
            start: (start + rest) as u32,
            end: (start + rest) as u32,
        });
        (nodes.len() - 1) as u32
    };
    nodes[node_idx] = Node::Inner {
        vp,
        mu,
        left,
        right,
    };
    node_idx as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastann_data::{ground_truth, synth};

    fn build_small(n: usize, dim: usize, seed: u64) -> (VectorSet, VpTree) {
        let data = synth::sift_like(n, dim, seed);
        let tree = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
        (data, tree)
    }

    #[test]
    fn knn_is_exact() {
        let (data, tree) = build_small(1000, 12, 1);
        let queries = synth::queries_near(&data, 25, 0.05, 2);
        let gt = ground_truth::brute_force(&data, &queries, 10, Distance::L2);
        for (qi, truth) in gt.iter().enumerate() {
            let (res, _) = tree.knn(queries.get(qi), 10);
            assert_eq!(&res, truth, "query {qi} differs from brute force");
        }
    }

    #[test]
    fn knn_exact_under_l1() {
        let data = synth::sift_like(500, 8, 3);
        let tree = VpTree::build(data.clone(), Distance::L1, VpTreeConfig::default());
        let queries = synth::queries_near(&data, 10, 0.05, 4);
        let gt = ground_truth::brute_force(&data, &queries, 5, Distance::L1);
        for (qi, truth) in gt.iter().enumerate() {
            let (res, _) = tree.knn(queries.get(qi), 5);
            assert_eq!(&res, truth, "L1 query {qi}");
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let (data, tree) = build_small(4000, 8, 5);
        let (_, stats) = tree.knn(data.get(0), 1);
        assert!(
            stats.ndist < 4000,
            "search should prune; evaluated {} of 4000",
            stats.ndist
        );
    }

    #[test]
    fn deeper_pruning_for_smaller_k() {
        let (data, tree) = build_small(4000, 8, 6);
        let (_, s1) = tree.knn(data.get(1), 1);
        let (_, s50) = tree.knn(data.get(1), 50);
        assert!(
            s1.ndist <= s50.ndist,
            "k=1 {} vs k=50 {}",
            s1.ndist,
            s50.ndist
        );
    }

    #[test]
    fn single_point_tree() {
        let mut data = VectorSet::new(2);
        data.push(&[3.0, 4.0]);
        let tree = VpTree::build(data, Distance::L2, VpTreeConfig::default());
        let (r, _) = tree.knn(&[0.0, 0.0], 5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, 0);
        assert!((r[0].dist - 5.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_points_handled() {
        let mut data = VectorSet::new(2);
        for _ in 0..100 {
            data.push(&[1.0, 1.0]);
        }
        let tree = VpTree::build(
            data,
            Distance::L2,
            VpTreeConfig {
                bucket_size: 4,
                ..Default::default()
            },
        );
        let (r, _) = tree.knn(&[1.0, 1.0], 10);
        assert_eq!(r.len(), 10);
        assert!(r.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn bucket_size_one_works() {
        let data = synth::sift_like(64, 4, 7);
        let tree = VpTree::build(
            data.clone(),
            Distance::L2,
            VpTreeConfig {
                bucket_size: 1,
                ..Default::default()
            },
        );
        let gt = ground_truth::brute_force(&data, &data, 3, Distance::L2);
        for (i, expected) in gt.iter().enumerate().take(8) {
            let (res, _) = tree.knn(data.get(i), 3);
            assert_eq!(&res, expected);
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let (_, tree) = build_small(4096, 8, 8);
        // ~4096/32 = 128 leaves -> ideal depth 7; allow slack for imbalance
        assert!(tree.depth() <= 20, "depth {} too large", tree.depth());
    }

    #[test]
    #[should_panic]
    fn empty_build_panics() {
        let _ = VpTree::build(VectorSet::new(3), Distance::L2, VpTreeConfig::default());
    }

    #[test]
    #[should_panic]
    fn non_metric_rejected() {
        let data = synth::sift_like(10, 4, 9);
        let _ = VpTree::build(data, Distance::Cosine, VpTreeConfig::default());
    }

    #[test]
    fn range_matches_linear_scan() {
        let data = synth::sift_like(1200, 8, 20);
        let tree = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
        let queries = synth::queries_near(&data, 10, 0.05, 21);
        for qi in 0..queries.len() {
            let q = queries.get(qi);
            // pick a radius that captures a nontrivial set
            let radius = {
                let mut ds: Vec<f32> = data.iter().map(|r| Distance::L2.eval(q, r)).collect();
                fastann_data::select::select_nth(&mut ds, 25)
            };
            let (got, stats) = tree.range(q, radius);
            let mut want: Vec<_> = data
                .iter()
                .enumerate()
                .filter_map(|(i, r)| {
                    let d = Distance::L2.eval(q, r);
                    (d <= radius).then(|| fastann_data::Neighbor::new(i as u32, d))
                })
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "range query {qi} differs from scan");
            assert!(stats.ndist <= 1200 + tree.nodes.len() as u64);
        }
    }

    #[test]
    fn zero_radius_range_finds_exact_duplicates() {
        let data = synth::sift_like(300, 6, 22);
        let tree = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
        let (hits, _) = tree.range(data.get(5), 0.0);
        assert!(hits.iter().any(|n| n.id == 5));
        assert!(hits.iter().all(|n| n.dist == 0.0));
    }

    #[test]
    fn huge_radius_returns_everything() {
        let data = synth::sift_like(200, 4, 23);
        let tree = VpTree::build(data.clone(), Distance::L2, VpTreeConfig::default());
        let (hits, _) = tree.range(data.get(0), f32::MAX);
        assert_eq!(hits.len(), 200);
    }

    #[test]
    fn validator_accepts_built_trees() {
        let (_, tree) = build_small(1500, 8, 24);
        tree.validate().expect("default build is valid");
        let data = synth::sift_like(300, 6, 25);
        let small_buckets = VpTree::build(
            data,
            Distance::L2,
            VpTreeConfig {
                bucket_size: 1,
                ..Default::default()
            },
        );
        small_buckets
            .validate()
            .expect("bucket_size 1 build is valid");
        // all-ties data exercises the degenerate empty right leaf
        let mut ties = VectorSet::new(2);
        for _ in 0..50 {
            ties.push(&[2.0, 2.0]);
        }
        let tied = VpTree::build(
            ties,
            Distance::L2,
            VpTreeConfig {
                bucket_size: 4,
                ..Default::default()
            },
        );
        tied.validate().expect("all-ties build is valid");
    }

    #[test]
    fn validator_rejects_corrupted_mu() {
        let (_, mut tree) = build_small(600, 8, 26);
        let root = tree.root as usize;
        if let Node::Inner { mu, .. } = &mut tree.nodes[root] {
            *mu *= 0.25; // left subtree now sticks out of the ball
        } else {
            panic!("600-point tree must have an inner root");
        }
        let err = tree.validate().expect_err("mu corruption must be caught");
        assert!(err.contains("outside radius"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_duplicated_point() {
        let (_, mut tree) = build_small(400, 8, 27);
        tree.ids[0] = tree.ids[1];
        let err = tree.validate().expect_err("duplicate must be caught");
        assert!(err.contains("appears twice"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_corrupted_leaf_range() {
        let (_, mut tree) = build_small(500, 8, 28);
        let leaf = tree
            .nodes
            .iter()
            .position(|n| matches!(n, Node::Leaf { start, end } if end > start))
            .expect("tree has a non-empty leaf");
        if let Node::Leaf { end, .. } = &mut tree.nodes[leaf] {
            *end -= 1; // a point now belongs to no leaf
        }
        // the shrunken span misaligns every later range, so the validator
        // may surface this as a slot mismatch or as a metric violation —
        // either way it must not pass
        let _ = tree
            .validate()
            .expect_err("range corruption must be caught");
    }

    #[test]
    fn stats_populate() {
        let (data, tree) = build_small(512, 8, 10);
        let (_, stats) = tree.knn(data.get(0), 5);
        assert!(stats.ndist > 0);
        assert!(stats.nodes_visited > 0);
        assert!(stats.leaves_visited > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fastann_data::ground_truth;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vp_knn_always_matches_brute_force(
            seed in 0u64..1000,
            n in 10usize..300,
            k in 1usize..10,
            bucket in 1usize..40,
        ) {
            let data = fastann_data::synth::sift_like(n, 6, seed);
            let tree = VpTree::build(
                data.clone(),
                Distance::L2,
                VpTreeConfig { bucket_size: bucket, seed, ..Default::default() },
            );
            let q = fastann_data::synth::sift_like(3, 6, seed ^ 0xabc);
            for qi in 0..3 {
                let (res, _) = tree.knn(q.get(qi), k);
                let truth = ground_truth::brute_force_one(&data, q.get(qi), k, Distance::L2);
                prop_assert_eq!(&res, &truth);
            }
        }
    }
}
