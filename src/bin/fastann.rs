//! `fastann` — command-line front end for the distributed ANN library.
//!
//! ```text
//! fastann build  <base.fvecs> <index.idx> [--cores N] [--per-node T] [--m M]
//!                [--efc N] [--seed S]
//! fastann search <index.idx> <queries.fvecs> <out.ivecs> [--k K] [--ef N]
//!                [--replication R] [--two-sided]
//! fastann gt     <base.fvecs> <queries.fvecs> <out.ivecs> [--k K]
//! fastann eval   <approx.ivecs> <truth.ivecs> [--k K]
//! fastann stats  <base.fvecs> [--sample N]
//! ```
//!
//! Vectors travel in the TEXMEX `.fvecs` format, neighbour lists in
//! `.ivecs` — the formats the paper's corpora ship in.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use fastann::core::{DistIndex, EngineConfig, RoutingPolicy, SearchOptions, SearchRequest};
use fastann::data::{dataset_stats, ground_truth, io, Distance, Neighbor};
use fastann::hnsw::HnswConfig;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if matches!(it.peek(), Some(v) if !v.starts_with("--")) {
                    it.next().expect("peeked").clone()
                } else {
                    "true".to_string() // boolean flag
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} wants an integer, got '{v}'")),
        }
    }

    fn bool_flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn pos(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {what}"))
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "-h" {
        eprint!("{}", USAGE);
        return ExitCode::from(2);
    }
    let cmd = raw[0].clone();
    let args = match Args::parse(&raw[1..]) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let result = match cmd.as_str() {
        "build" => cmd_build(&args),
        "search" => cmd_search(&args),
        "gt" => cmd_gt(&args),
        "eval" => cmd_eval(&args),
        "stats" => cmd_stats(&args),
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("fastann: {msg}");
    ExitCode::FAILURE
}

const USAGE: &str = "\
usage:
  fastann build  <base.fvecs> <index.idx> [--cores N] [--per-node T] [--m M] [--efc N] [--seed S]
  fastann search <index.idx> <queries.fvecs> <out.ivecs> [--k K] [--ef N] [--replication R] [--two-sided]
  fastann gt     <base.fvecs> <queries.fvecs> <out.ivecs> [--k K]
  fastann eval   <approx.ivecs> <truth.ivecs> [--k K]
  fastann stats  <base.fvecs> [--sample N]
";

fn cmd_build(args: &Args) -> Result<(), String> {
    let base = args.pos(0, "base .fvecs file")?;
    let out = args.pos(1, "output index path")?;
    let cores = args.usize_flag("cores", 16)?;
    let per_node = args.usize_flag("per-node", 4)?;
    let m = args.usize_flag("m", 16)?;
    let efc = args.usize_flag("efc", 100)?;
    let seed = args.usize_flag("seed", 0)? as u64;

    let data = io::read_fvecs(base, None).map_err(|e| e.to_string())?;
    eprintln!("loaded {} x {}d vectors", data.len(), data.dim());
    let cfg = EngineConfig::new(cores, per_node)
        .with_hnsw(HnswConfig::with_m(m).ef_construction(efc).seed(seed))
        .with_seed(seed);
    let t0 = std::time::Instant::now();
    let index = DistIndex::build(&data, cfg);
    index.save(out).map_err(|e| e.to_string())?;
    eprintln!(
        "built {} partitions in {:.1}s wall ({:.1} virtual ms) -> {}",
        index.n_partitions(),
        t0.elapsed().as_secs_f64(),
        index.build_stats.total_ns / 1e6,
        out
    );
    Ok(())
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let idx_path = args.pos(0, "index file")?;
    let q_path = args.pos(1, "query .fvecs file")?;
    let out = args.pos(2, "output .ivecs path")?;
    let k = args.usize_flag("k", 10)?;
    let ef = args.usize_flag("ef", 4 * k.max(8))?;
    let replication = args.usize_flag("replication", 1)?;

    let index = DistIndex::load(idx_path).map_err(|e| e.to_string())?;
    let queries = io::read_fvecs(q_path, None).map_err(|e| e.to_string())?;
    let opts = SearchOptions::new(k)
        .with_ef(ef)
        .with_routing(RoutingPolicy::Static(replication))
        .with_one_sided(!args.bool_flag("two-sided"));
    let report = SearchRequest::new(&index, &queries).opts(opts).run();
    let lists: Vec<Vec<u32>> = report
        .results
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    let mut f = std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| e.to_string())?);
    io::write_ivecs_to(&mut f, &lists).map_err(|e| e.to_string())?;
    eprintln!(
        "{} queries in {:.2} virtual ms ({:.0} q/s, fan-out {:.2}) -> {}",
        queries.len(),
        report.total_ns / 1e6,
        report.throughput_qps(),
        report.mean_fanout,
        out
    );
    Ok(())
}

fn cmd_gt(args: &Args) -> Result<(), String> {
    let base = args.pos(0, "base .fvecs file")?;
    let q_path = args.pos(1, "query .fvecs file")?;
    let out = args.pos(2, "output .ivecs path")?;
    let k = args.usize_flag("k", 10)?;
    let data = io::read_fvecs(base, None).map_err(|e| e.to_string())?;
    let queries = io::read_fvecs(q_path, None).map_err(|e| e.to_string())?;
    let gt = ground_truth::brute_force(&data, &queries, k, Distance::L2);
    let lists: Vec<Vec<u32>> = gt
        .iter()
        .map(|r| r.iter().map(|n| n.id).collect())
        .collect();
    let mut f = std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| e.to_string())?);
    io::write_ivecs_to(&mut f, &lists).map_err(|e| e.to_string())?;
    eprintln!("exact {k}-NN for {} queries -> {}", queries.len(), out);
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let approx_path = args.pos(0, "approx .ivecs file")?;
    let truth_path = args.pos(1, "truth .ivecs file")?;
    let k = args.usize_flag("k", 10)?;
    let approx = io::read_ivecs(approx_path, None).map_err(|e| e.to_string())?;
    let truth = io::read_ivecs(truth_path, None).map_err(|e| e.to_string())?;
    if approx.len() != truth.len() {
        return Err(format!(
            "query counts differ: {} vs {}",
            approx.len(),
            truth.len()
        ));
    }
    // adapt id lists to the recall helper's neighbour form
    let as_neighbors = |lists: &[Vec<u32>]| -> Vec<Vec<Neighbor>> {
        lists
            .iter()
            .map(|l| {
                l.iter()
                    .enumerate()
                    .map(|(i, &id)| Neighbor::new(id, i as f32))
                    .collect()
            })
            .collect()
    };
    let recall = ground_truth::recall_at_k(&as_neighbors(&approx), &as_neighbors(&truth), k);
    println!(
        "recall@{k}: mean {:.4}, min {:.4} over {} queries",
        recall.mean, recall.min, recall.n_queries
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let base = args.pos(0, "base .fvecs file")?;
    let sample = args.usize_flag("sample", 200)?;
    let data = io::read_fvecs(base, None).map_err(|e| e.to_string())?;
    let s = dataset_stats(&data, Distance::L2, sample, 0);
    println!("points          {}", data.len());
    println!("ambient dim     {}", s.dim);
    println!("intrinsic dim   {:.1}", s.intrinsic_dim);
    println!("mean NN dist    {:.3}", s.mean_nn);
    println!("mean pair dist  {:.3}", s.mean_pair);
    println!(
        "NN contrast     {:.3}  (1.0 = no structure, near 0 = highly clustered)",
        s.contrast
    );
    Ok(())
}
