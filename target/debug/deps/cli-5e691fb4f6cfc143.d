/root/repo/target/debug/deps/cli-5e691fb4f6cfc143.d: tests/cli.rs

/root/repo/target/debug/deps/cli-5e691fb4f6cfc143: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_fastann=/root/repo/target/debug/fastann
