/root/repo/target/release/deps/fastann-6b5c07d998c996fa.d: src/lib.rs

/root/repo/target/release/deps/libfastann-6b5c07d998c996fa.rlib: src/lib.rs

/root/repo/target/release/deps/libfastann-6b5c07d998c996fa.rmeta: src/lib.rs

src/lib.rs:
