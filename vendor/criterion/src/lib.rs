//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the benchmark API subset it uses. Each registered benchmark
//! body runs **once** per invocation and a single coarse wall-clock
//! timing is printed — enough for `cargo bench` to compile, run and
//! smoke-test every benchmark, with none of criterion's statistics,
//! warm-up or plotting. Swap back to upstream criterion for real
//! measurements; call sites need no changes.

use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group (subset of
/// `criterion::BenchmarkId`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new<P: std::fmt::Display>(name: &str, param: P) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(param: P) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs a benchmark body (subset of `criterion::Bencher`).
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Times one execution of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// A named set of benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for call-site compatibility; a single run needs no sample
    /// count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; output is printed per benchmark).
    pub fn finish(self) {}
}

/// Benchmark registry and runner (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    let ms = b.elapsed_ns as f64 / 1e6;
    println!("bench {id:<48} {ms:>10.3} ms (single run)");
}

/// Declares a group of benchmark functions (subset of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point (subset of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run_bodies() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("a", |b| b.iter(|| runs += 1));
            g.bench_with_input(BenchmarkId::new("b", 42), &7u32, |b, &x| {
                b.iter(|| runs += x)
            });
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 9);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 128).to_string(), "f/128");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn macro_group_invocable() {
        demo_group();
    }
}
