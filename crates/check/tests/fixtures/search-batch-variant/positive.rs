/// A new routing variant of the retired family: documented, but not a
/// deprecated shim, so it must be flagged.
pub fn search_batch_turbo(queries: &[Query]) -> Vec<Hit> {
    let _ = queries;
    Vec::new()
}
