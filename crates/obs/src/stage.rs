//! The unified stage vocabulary: one name per instrumented segment of
//! the query path, shared by the metrics registry and the
//! `fastann_mpisim` trace so a Gantt span and a histogram series always
//! agree on what a stage is called.

/// A named segment of the query path. [`Stage::label`] is the canonical
/// string: the engine passes it to `Trace::record` and the metrics layer
/// uses it as the `stage` label of the `fastann_span_ns` histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Master-side VP-tree routing and query dispatch.
    Route,
    /// Master-side wait for worker results (two-sided drain or one-sided
    /// window poll; also each chaos-path drain round).
    Collect,
    /// Worker-side local index search for one partition probe.
    LocalSearch,
    /// Chaos path: a probe declared lost after its timeout expired.
    Timeout,
    /// Chaos path: a timed-out probe re-sent to the same owner core.
    Retry,
    /// Chaos path: a timed-out probe re-sent to the next replica.
    Failover,
    /// Serving runtime: admission-control decision for one arrival.
    Admission,
    /// Serving runtime: result-cache lookup for one arrival.
    CacheLookup,
    /// Serving runtime: a micro-batch dispatched through the engine.
    BatchFlush,
}

impl Stage {
    /// The canonical label, used both as a trace span label and as the
    /// `stage` label value on span metrics.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Route => "route+dispatch",
            Stage::Collect => "collect results",
            Stage::LocalSearch => "hnsw search",
            Stage::Timeout => "timeout",
            Stage::Retry => "retry",
            Stage::Failover => "failover",
            Stage::Admission => "admission",
            Stage::CacheLookup => "cache lookup",
            Stage::BatchFlush => "batch flush",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let all = [
            Stage::Route,
            Stage::Collect,
            Stage::LocalSearch,
            Stage::Timeout,
            Stage::Retry,
            Stage::Failover,
            Stage::Admission,
            Stage::CacheLookup,
            Stage::BatchFlush,
        ];
        let mut labels: Vec<&str> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len(), "stage labels must not collide");
    }
}
