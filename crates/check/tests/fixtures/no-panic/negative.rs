//! Talks about panic! in prose and strings without ever invoking it.

fn guard(x: u32) -> Result<(), String> {
    if x > 3 {
        return Err(format!("would panic!(…) in the bad old days: {x}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        panic!("assert-like failure");
    }
}
