//! Compute cost model: pricing distance evaluations in virtual nanoseconds.

/// Prices the dominant compute operation of the workload — one distance
/// evaluation between `dim`-dimensional vectors — in virtual nanoseconds.
///
/// The default is an analytic model (deterministic across hosts and runs):
/// roughly four lanes of fused multiply-subtract per cycle at 2.5 GHz, the
/// clock of the paper's Haswell cores, plus a fixed call overhead.
/// [`CostModel::calibrate`] measures the real kernel on the current host
/// instead, for users who want virtual times grounded in their machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed per-evaluation overhead (call, loop setup), ns.
    pub base_ns: f64,
    /// Per-dimension cost, ns.
    pub per_dim_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // ~0.1 ns/dim ≈ 4 f32 lanes/cycle @ 2.5 GHz with load pressure.
        Self {
            base_ns: 8.0,
            per_dim_ns: 0.1,
        }
    }
}

impl CostModel {
    /// Virtual cost of a single distance evaluation.
    #[inline]
    pub fn dist_ns(&self, dim: usize) -> f64 {
        self.base_ns + self.per_dim_ns * dim as f64
    }

    /// Virtual cost of `n` evaluations.
    #[inline]
    pub fn dists_ns(&self, n: u64, dim: usize) -> f64 {
        self.dist_ns(dim) * n as f64
    }

    /// Measures the real L2 kernel on this host and returns a model fitted
    /// to it. Non-deterministic across hosts by design; tests and the
    /// default experiment harness use [`CostModel::default`].
    pub fn calibrate(dim: usize) -> Self {
        use std::time::Instant;
        let n = 4096usize;
        let a: Vec<f32> = (0..dim).map(|i| i as f32 * 0.37).collect();
        let b: Vec<f32> = (0..dim).map(|i| i as f32 * 0.11 + 1.0).collect();
        let start = Instant::now();
        let mut acc = 0f32;
        for _ in 0..n {
            acc += fastann_kernel_l2(&a, &b);
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(acc);
        let per_eval = elapsed / n as f64;
        // Split measured cost into a small base and a per-dim slope.
        let base = 8.0f64.min(per_eval * 0.2);
        Self {
            base_ns: base,
            per_dim_ns: ((per_eval - base) / dim as f64).max(0.01),
        }
    }
}

/// Minimal local copy of the squared-L2 kernel so calibration does not pull
/// in a dependency cycle with `fastann-data`.
fn fastann_kernel_l2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_dim() {
        let m = CostModel::default();
        assert!(m.dist_ns(128) > m.dist_ns(16));
        assert_eq!(m.dists_ns(10, 128), 10.0 * m.dist_ns(128));
        assert_eq!(m.dists_ns(0, 128), 0.0);
    }

    #[test]
    fn default_in_plausible_range() {
        let m = CostModel::default();
        let c = m.dist_ns(128);
        assert!(
            c > 5.0 && c < 1000.0,
            "128-dim eval cost {c} ns implausible"
        );
    }

    #[test]
    fn calibrate_returns_positive_model() {
        let m = CostModel::calibrate(64);
        assert!(m.base_ns >= 0.0);
        assert!(m.per_dim_ns > 0.0);
    }
}
