//! Property tests for the SQ8 quantizer (satellite of the quantized-first
//! traversal PR): round-trip error bounds, the analytic error bound of the
//! asymmetric distance, and degenerate-input robustness. Everything runs
//! on the vendored deterministic proptest, so failures reproduce exactly.

use fastann_data::kernels;
use fastann_data::quant::Sq8;
use fastann_data::VectorSet;
use proptest::prelude::*;

/// Builds a `VectorSet` of dimension `dim` from a flat value pool,
/// truncated to whole rows; pads to one row if the pool is too short so
/// `Sq8::encode`'s non-empty precondition always holds.
fn set_from_pool(dim: usize, pool: &[f32]) -> VectorSet {
    let mut data = VectorSet::new(dim);
    let rows = pool.len() / dim;
    if rows == 0 {
        let mut row = vec![0.0f32; dim];
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = pool.get(i).copied().unwrap_or(0.0);
        }
        data.push(&row);
        return data;
    }
    for r in 0..rows {
        data.push(&pool[r * dim..(r + 1) * dim]);
    }
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step(
        dim in 1usize..9,
        pool in proptest::collection::vec(-100.0f32..100.0, 1..257),
    ) {
        let data = set_from_pool(dim, &pool);
        let sq = Sq8::encode(&data);
        for i in 0..data.len() {
            let orig = data.get(i);
            let dec = sq.decode(i);
            for d in 0..dim {
                // scale/2 per dimension, with rounding slack: the grid
                // cell containing x is at most step/2 away from it
                prop_assert!(
                    (orig[d] - dec[d]).abs() <= sq.step()[d] * 0.51,
                    "row {} dim {}: {} decoded to {} (step {})",
                    i, d, orig[d], dec[d], sq.step()[d]
                );
            }
        }
    }

    #[test]
    fn asym_distance_within_analytic_bound_of_exact(
        dim in 1usize..9,
        pool in proptest::collection::vec(-50.0f32..50.0, 8..257),
        qpool in proptest::collection::vec(-75.0f32..75.0, 8..16),
    ) {
        let data = set_from_pool(dim, &pool);
        let sq = Sq8::encode(&data);
        let q: Vec<f32> = (0..dim).map(|d| qpool[d % qpool.len()]).collect();
        let prep = sq.prepare_query(&q);
        // worst-case decode displacement: ||x - decode(x)|| <= E with
        // E^2 = sum_d (step_d/2)^2 (each dim off by at most half a step)
        let e: f32 = sq
            .step()
            .iter()
            .map(|s| (s * 0.51) * (s * 0.51))
            .sum::<f32>()
            .sqrt();
        for i in 0..data.len() {
            let exact = kernels::squared_l2(&q, data.get(i));
            let asym = sq.asym_l2(&prep, i);
            // |dist(q,x) - dist(q,x̂)| <= E  =>  asym ∈ [(r-E)^2, (r+E)^2]
            let r = exact.sqrt();
            let hi = (r + e) * (r + e);
            let lo = (r - e).max(0.0).powi(2);
            let slack = 1e-3 * (1.0 + hi);
            prop_assert!(
                asym >= lo - slack && asym <= hi + slack,
                "row {}: asym {} outside [{}, {}] (exact {}, E {})",
                i, asym, lo, hi, exact, e
            );
        }
    }

    #[test]
    fn degenerate_inputs_stay_finite(
        dim in 1usize..7,
        value in -1000.0f32..1000.0,
        rows in 1usize..5,
    ) {
        // constant data: zero range in every dimension pins the step at
        // f32::MIN_POSITIVE -- nothing may panic or go non-finite
        let mut data = VectorSet::new(dim);
        let row = vec![value; dim];
        for _ in 0..rows {
            data.push(&row);
        }
        let sq = Sq8::encode(&data);
        prop_assert_eq!(sq.len(), rows);
        let dec = sq.decode(rows - 1);
        for (d, &x) in dec.iter().enumerate() {
            prop_assert!(x.is_finite());
            prop_assert!((x - value).abs() <= sq.step()[d] * 0.51 + value.abs() * 1e-6);
        }
        // on-grid query and an off-grid query both stay finite
        let prep = sq.prepare_query(&row);
        let d0 = sq.asym_l2(&prep, 0);
        prop_assert!(d0.is_finite() && d0 >= 0.0);
        let off: Vec<f32> = row.iter().map(|v| v + 1.0).collect();
        let far = sq.prepare_query(&off);
        prop_assert!(sq.asym_l2(&far, 0).is_finite());
    }

    #[test]
    fn single_point_sets_encode_and_search(
        dim in 1usize..9,
        pool in proptest::collection::vec(-100.0f32..100.0, 1..9),
    ) {
        let mut data = VectorSet::new(dim);
        let row: Vec<f32> = (0..dim).map(|d| pool[d % pool.len()]).collect();
        data.push(&row);
        let sq = Sq8::encode(&data);
        let prep = sq.prepare_query(&row);
        let d = sq.asym_l2(&prep, 0);
        prop_assert!(d.is_finite() && d >= 0.0);
        // the only point is its own nearest neighbour at ~zero distance
        let e: f32 = sq.step().iter().map(|s| s * s).sum::<f32>();
        prop_assert!(d <= e + 1e-3, "self-distance {} exceeds grid error {}", d, e);
    }

    #[test]
    fn encode_query_matches_stored_codes_on_training_rows(
        dim in 1usize..9,
        pool in proptest::collection::vec(-100.0f32..100.0, 8..129),
    ) {
        let data = set_from_pool(dim, &pool);
        let sq = Sq8::encode(&data);
        // the lossy cache key is the same grid the codes used: encoding a
        // training row must reproduce that row's stored codes
        for i in 0..data.len() {
            let key = sq.encode_query(data.get(i));
            prop_assert_eq!(&key[..], &sq.codes()[i * dim..(i + 1) * dim]);
        }
    }
}
