/// Deprecated shim over the `SearchRequest` builder — allowed to stay.
#[deprecated(note = "use SearchRequest::new(...).run()")]
pub fn search_batch(queries: &[Query]) -> Vec<Hit> {
    let _ = queries;
    Vec::new()
}

/// Not part of the `search_batch*` family at all.
pub fn search_one(query: &Query) -> Option<Hit> {
    let _ = query;
    None
}
